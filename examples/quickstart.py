#!/usr/bin/env python
"""Quickstart: simulate a 16-core CMP with and without Reactive Circuits.

Builds the paper's baseline chip (Table 2/4), runs the canneal-like
workload on it, then enables complete Reactive Circuits with eliminated
acknowledgements (the paper's headline configuration) and compares
network latency, execution time, and network energy.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, Variant, build_system, workload_by_name
from repro.circuits.outcomes import outcome_fractions
from repro.power.energy import network_energy

WORKLOAD = "canneal"
INSTRUCTIONS = 2_000
WARMUP = 500


def run(variant: Variant):
    config = SystemConfig(n_cores=16).with_variant(variant)
    system = build_system(config, workload_by_name(WORKLOAD))
    system.warmup(WARMUP)
    start = system.sim.cycle
    finish = system.run_instructions(INSTRUCTIONS)
    cycles = finish - start
    energy = network_energy(config, system.stats, cycles)
    return system, cycles, energy


def main() -> None:
    print(f"workload: {WORKLOAD}, 16 cores, "
          f"{INSTRUCTIONS} instructions/core after warmup\n")

    base, base_cycles, base_energy = run(Variant.BASELINE)
    circ, circ_cycles, circ_energy = run(Variant.COMPLETE_NOACK)

    def row(label, system, cycles, energy):
        s = system.stats
        print(f"{label:18s} exec={cycles:7d} cycles   "
              f"reply latency={s.mean('lat.net.crep'):5.1f} cycles   "
              f"network energy={energy.total:10.0f}")

    row("baseline", base, base_cycles, base_energy)
    row("complete+NoAck", circ, circ_cycles, circ_energy)

    print()
    print(f"speedup:           {base_cycles / circ_cycles:>6.3f}x")
    print(f"energy reduction:  {100 * (1 - circ_energy.total / base_energy.total):>5.1f}%")
    print()
    print("reply outcomes with Reactive Circuits:")
    for outcome, fraction in outcome_fractions(circ.stats).items():
        if fraction:
            print(f"  {outcome.value:14s} {100 * fraction:5.1f}%")


if __name__ == "__main__":
    main()
