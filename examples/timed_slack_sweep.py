#!/usr/bin/env python
"""Design-space sweep: how much slack should a timed circuit reserve?

Section 4.7 of the paper introduces timed reservations with slack, delay
and postponement; Figure 6 shows the resulting trade-off: too little slack
and any request delay kills the circuit, too much and reservations start
conflicting with each other.  This example sweeps the slack-per-hop knob
on a contended workload and prints the reply-outcome distribution and
speedup for each point.

Run:  python examples/timed_slack_sweep.py
"""

from repro import build_system, workload_by_name
from repro.circuits.outcomes import outcome_fractions
from repro.sim.config import CircuitConfig, CircuitMode, SystemConfig

WORKLOAD = "fluidanimate"
INSTRUCTIONS = 1_500
WARMUP = 400


def run(circuit: CircuitConfig):
    config = SystemConfig(n_cores=16).with_circuit(circuit)
    system = build_system(config, workload_by_name(WORKLOAD))
    system.warmup(WARMUP)
    start = system.sim.cycle
    cycles = system.run_instructions(INSTRUCTIONS) - start
    return system, cycles


def main() -> None:
    baseline, base_cycles = run(CircuitConfig())
    print(f"workload {WORKLOAD}: baseline executes in {base_cycles} cycles\n")
    print(f"{'config':18s} {'speedup':>8s} {'on_circuit':>11s} "
          f"{'undone':>7s} {'failed':>7s} {'eliminated':>11s}")

    sweeps = [("untimed", CircuitConfig(mode=CircuitMode.COMPLETE,
                                        no_ack=True))]
    for slack in (0, 1, 2, 4, 8):
        sweeps.append((
            f"timed slack={slack}",
            CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True, timed=True,
                          slack_per_hop=slack),
        ))
    for slack in (1, 2):
        sweeps.append((
            f"slack+delay={slack}",
            CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True, timed=True,
                          slack_per_hop=slack, allow_delay=True),
        ))
    for post in (1, 2):
        sweeps.append((
            f"postponed={post}",
            CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True, timed=True,
                          postponed=True, postpone_per_hop=post),
        ))

    for label, circuit in sweeps:
        system, cycles = run(circuit)
        outcomes = {o.value: f for o, f in
                    outcome_fractions(system.stats).items()}
        print(f"{label:18s} {base_cycles / cycles:8.3f} "
              f"{100 * outcomes['on_circuit']:10.1f}% "
              f"{100 * outcomes['undone']:6.1f}% "
              f"{100 * outcomes['failed']:6.1f}% "
              f"{100 * outcomes['eliminated']:10.1f}%")


if __name__ == "__main__":
    main()
