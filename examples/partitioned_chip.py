#!/usr/bin/env python
"""Partitioned 64-core chip: the paper's scalability answer.

Section 5.5 observes that building complete circuits gets harder as chips
grow (longer paths, more conflicts), and argues that future many-cores
will be space-partitioned anyway (Tilera Multicore Hardwall), letting
Reactive Circuits "be used independently inside each partition".

This example runs the same four applications on a 64-core chip twice:

* monolithically (one 64-core coherence domain), and
* partitioned into four 4x4 quadrants with isolated address spaces,

and compares how often replies successfully ride circuits.  Partitioning
restores the shorter paths and lower conflict rates of a 16-core chip.

Run:  python examples/partitioned_chip.py     (a few minutes, 64 cores)
"""

from repro import SystemConfig, Variant, build_system, workload_by_name
from repro.cpu.workloads import WorkloadProfile
from repro.noc.topology import Mesh
from repro.partition import build_partitioned_system, quadrants

APPS = ["blackscholes", "fluidanimate", "water_spatial", "swaptions"]
INSTRUCTIONS = 800
WARMUP = 200
VARIANT = Variant.COMPLETE_NOACK


def circuit_success(system) -> float:
    s = system.stats
    on = s.counter("circuit.outcome.on_circuit")
    total = s.counter("circuit.replies_total")
    return on / total if total else 0.0


def run_monolithic():
    """All 64 cores in one coherence domain, one application per group of
    16 cores (addresses interleave over all 64 banks)."""
    from random import Random

    from repro.cpu.trace import AccessStream
    from repro.system import CmpSystem

    config = SystemConfig(n_cores=64).with_variant(VARIANT)
    rng = Random(7)
    streams = [
        AccessStream(workload_by_name(APPS[core // 16]).params, core, 64,
                     Random(rng.getrandbits(64)))
        for core in range(64)
    ]
    system = CmpSystem(config, streams=streams)
    system.warmup(WARMUP)
    system.run_instructions(INSTRUCTIONS)
    return system


def run_partitioned():
    config = SystemConfig(n_cores=64).with_variant(VARIANT)
    parts = quadrants(Mesh(8), [workload_by_name(a) for a in APPS])
    system = build_partitioned_system(config, parts)
    system.warmup(WARMUP)
    system.run_instructions(INSTRUCTIONS)
    return system


def main() -> None:
    print("same four applications on a 64-core chip, "
          f"{VARIANT.value} circuits\n")
    mono = run_monolithic()
    part = run_partitioned()
    print(f"{'configuration':24s} {'circuit success':>16s} "
          f"{'avg reply latency':>18s}")
    for label, system in (("monolithic 64-core", mono),
                          ("4 x 16-core partitions", part)):
        print(f"{label:24s} {100 * circuit_success(system):13.1f}%  "
              f"{system.stats.mean('lat.net.crep'):15.1f} cyc")
    print("\npartitioning shortens paths and removes cross-application")
    print("conflicts, recovering the 16-core chip's circuit success rate")
    print("(the paper's section-5.5 argument).")


if __name__ == "__main__":
    main()
