#!/usr/bin/env python
"""Multiprogrammed throughput: a SPEC-style mix on a 16-core chip.

The paper evaluates both parallel applications and multiprogrammed
workloads (one independent application per core).  This example runs the
mix, reports per-core progress (IPC) with and without Reactive Circuits,
and shows that cores running memory-bound applications benefit the most
from the reply circuits.

Run:  python examples/multiprogrammed_mix.py
"""

from repro import SystemConfig, Variant, build_system, workload_by_name

INSTRUCTIONS = 1_500
WARMUP = 400


def run(variant: Variant):
    config = SystemConfig(n_cores=16, seed=2).with_variant(variant)
    system = build_system(config, workload_by_name("mix"))
    system.warmup(WARMUP)
    start = system.sim.cycle
    finishes = {}
    for core in system.cores:
        core.set_target(INSTRUCTIONS)
    system.sim.run_until(lambda: all(c.done for c in system.cores),
                         max_cycles=20_000_000)
    for core in system.cores:
        finishes[core.node] = core.finish_cycle - start
    return system, finishes


def main() -> None:
    base, base_fin = run(Variant.BASELINE)
    circ, circ_fin = run(Variant.SLACKDELAY1_NOACK)

    print("per-core execution time for the multiprogrammed mix "
          f"({INSTRUCTIONS} instructions/core)\n")
    print(f"{'core':>4s} {'baseline':>10s} {'circuits':>10s} {'gain':>7s}")
    gains = []
    for node in sorted(base_fin):
        b, c = base_fin[node], circ_fin[node]
        gain = 100 * (b - c) / b
        gains.append(gain)
        print(f"{node:4d} {b:10d} {c:10d} {gain:+6.1f}%")

    total_b = max(base_fin.values())
    total_c = max(circ_fin.values())
    print(f"\nchip-level speedup (last core to finish): "
          f"{total_b / total_c:.3f}x")
    print(f"average per-core gain: {sum(gains) / len(gains):+.1f}%")


if __name__ == "__main__":
    main()
