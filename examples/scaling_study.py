#!/usr/bin/env python
"""Scaling study: does Reactive Circuits survive bigger chips?

The paper observes (sections 5.2/5.5) that complete circuits become harder
to build as chips grow - longer paths mean more routers where two
reservations can collide - and proposes timed reservations (and, further
out, chip partitioning) to keep the mechanism effective.

This example measures circuit success and reply latency on meshes from 16
to 144 cores using the raw traffic driver, comparing untimed complete
circuits against timed circuits with slack+delay.

Run:  python examples/scaling_study.py
"""

from repro.harness.sweeps import mesh_scaling_sweep, render_sweep
from repro.sim.config import Variant

SIDES = (4, 6, 8, 10, 12)  # 16 .. 144 cores


def main() -> None:
    print("circuit construction vs. chip size "
          "(uniform request-reply traffic, 6 req/kcycle/node)\n")
    for variant in (Variant.COMPLETE_NOACK, Variant.SLACKDELAY1_NOACK):
        points = mesh_scaling_sweep(SIDES, variant)
        print(render_sweep(points, variant.value))
        print()
    print("untimed complete circuits hold resources from reservation to")
    print("use, so success decays quickly with path length; timed slots")
    print("only block their window and scale much further (section 5.5).")


if __name__ == "__main__":
    main()
