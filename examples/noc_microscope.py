#!/usr/bin/env python
"""NoC microscope: watch one request-reply transaction hop by hop.

Drives the network substrate directly (no cores, no coherence protocol)
with a single request from corner to corner of a 4x4 mesh and prints the
reply's end-to-end latency under every Reactive Circuits variant, next to
the analytic expectation: packet-switched replies pay ~5 cycles/hop, and
circuit replies pay 2 cycles/hop plus tail streaming.

Run:  python examples/noc_microscope.py
"""

from repro.noc.flit import Message
from repro.noc.network import Network
from repro.sim.config import SystemConfig, Variant

SRC, DEST = 0, 15  # opposite corners of the 4x4 mesh: 6 hops
TURNAROUND = 7  # the destination answers after an L2-hit-like delay


def run_one(variant: Variant):
    config = SystemConfig(n_cores=16).with_variant(variant)
    net = Network(config)
    done = {}
    timers = []

    def deliver(msg: Message, cycle: int) -> None:
        if msg.vn == 0:
            reply = Message(msg.dest, msg.src, 1, 5, "L2_REPLY")
            reply.circuit_eligible = True
            reply.circuit_key = msg.circuit_key
            timers.append((cycle + TURNAROUND, reply))
        else:
            done[msg.uid] = msg

    for node in range(16):
        net.set_deliver(node, deliver)

    request = Message(SRC, DEST, 0, 1, "REQUEST")
    request.builds_circuit = True
    request.circuit_key = (SRC, 0x40, request.uid)
    request.reply_flits = 5
    request.expected_turnaround = TURNAROUND
    net.inject(request, 0)

    for cycle in range(1, 600):
        for item in [t for t in timers if t[0] == cycle]:
            timers.remove(item)
            net.inject(item[1], cycle)
        net.tick(cycle)
        if done:
            reply = next(iter(done.values()))
            return reply
    raise RuntimeError("reply never arrived")


def main() -> None:
    hops = 6
    print(f"one transaction {SRC} -> {DEST} ({hops} hops) and back\n")
    print(f"{'variant':22s} {'reply net latency':>18s} {'queue':>6s} "
          f"{'outcome':>12s}")
    for variant in (
        Variant.BASELINE,
        Variant.FRAGMENTED,
        Variant.COMPLETE,
        Variant.TIMED_NOACK,
        Variant.SLACKDELAY1_NOACK,
        Variant.POSTPONED1_NOACK,
        Variant.IDEAL,
    ):
        reply = run_one(variant)
        outcome = reply.outcome or "-"
        print(f"{variant.value:22s} {reply.network_latency:14d} cyc "
              f"{reply.queueing_latency:6d} {outcome:>12s}")
    print()
    print("expected: packet reply = 2 + 6x5 + 3 (tail-less pipeline) + 2")
    print("          circuit reply = 2 + 6x2 + 2 + 4 (tail) = 20 cycles")
    print("          postponed waits postpone_per_hop x hops before leaving")


if __name__ == "__main__":
    main()
