"""Setup shim for environments without the ``wheel`` package installed.

``pip install -e .`` uses pyproject.toml on modern toolchains; this shim
lets ``python setup.py develop`` work in fully offline environments.
"""

from setuptools import setup

setup()
