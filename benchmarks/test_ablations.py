"""Ablation benches for the design choices DESIGN.md calls out."""

from repro import build_system, workload_by_name
from repro.harness.experiment import scale
from repro.sim.config import CircuitConfig, CircuitMode, SystemConfig, Variant


def _run(circuit: CircuitConfig, cores: int, workload: str,
         instrs: int = 1200, warm: int = 300):
    factor = scale()
    config = SystemConfig(n_cores=cores, seed=1).with_circuit(circuit)
    system = build_system(config, workload_by_name(workload))
    system.warmup(max(100, int(warm * factor)))
    start = system.sim.cycle
    cycles = system.run_instructions(max(200, int(instrs * factor))) - start
    return system, cycles


def test_ablation_circuits_per_input(benchmark, cores):
    """Justify the paper's choice of 5 circuits per input port: going from
    1 to 5 entries recovers failed reservations; beyond that the returns
    vanish (Table 5: the 5th entry serves only ~6 % of reservations)."""

    def sweep():
        results = {}
        for capacity in (1, 2, 5, 8):
            circuit = CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True,
                                    max_circuits_per_input=capacity)
            system, cycles = _run(circuit, cores, "canneal")
            s = system.stats
            total = (s.counter("circuit.reservations")
                     + s.counter("circuit.reservation_failed"))
            fail = s.counter("circuit.reservation_failed") / max(1, total)
            results[capacity] = (fail, cycles)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for capacity, (fail, cycles) in results.items():
        print(f"  capacity {capacity}: failed reservations "
              f"{100 * fail:5.1f}%  exec {cycles} cycles")
    assert results[1][0] > results[5][0]  # more storage, fewer failures
    assert results[5][0] - results[8][0] < results[1][0] - results[5][0]


def test_ablation_undo_on_l2_miss(benchmark, cores):
    """Section 4.4: the paper keeps circuits built across L2 misses because
    undoing them measured worse.  Undoing must produce 'undone' replies and
    must not beat keep-built."""

    def sweep():
        keep, keep_cycles = _run(
            CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True),
            cores, "fft")
        undo, undo_cycles = _run(
            CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True,
                          undo_on_l2_miss=True),
            cores, "fft")
        return (keep, keep_cycles), (undo, undo_cycles)

    (keep, keep_cycles), (undo, undo_cycles) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print(f"\n  keep-built: {keep_cycles} cycles; undo-on-miss: "
          f"{undo_cycles} cycles")
    assert undo.stats.counter("circuit.origin_cancelled") > 0
    assert (undo.stats.counter("circuit.outcome.undone")
            >= keep.stats.counter("circuit.outcome.undone"))
    # keep-built is at least as fast (the paper's finding), within noise
    assert keep_cycles <= undo_cycles * 1.05


def test_ablation_simulator_throughput(benchmark, cores):
    """Raw simulator speed: cycles per second on the headline config."""
    config = SystemConfig(n_cores=cores).with_variant(Variant.COMPLETE_NOACK)
    system = build_system(config, workload_by_name("canneal"))
    system.functional_prewarm()

    def run_chunk():
        system.run_cycles(2_000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1)
    assert system.sim.cycle >= 6_000
