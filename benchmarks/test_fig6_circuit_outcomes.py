"""Figure 6: reply outcome breakdown for every circuit-building variant.

Paper shape: complete circuits build more successful circuits than
fragmented (5 vs 2 per input); NoAck eliminates 20-30 % of replies;
basic timed circuits fail/undo more than untimed; slack recovers
circuits; the ideal bound tops everything.
"""

from repro.harness import figures, render


def test_fig6_circuit_outcomes(benchmark, cores, workloads):
    data = benchmark.pedantic(
        figures.figure6, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_figure6(data))

    frag = data["Fragmented"]
    complete = data["Complete"]
    noack = data["Complete_NoAck"]
    timed = data["Timed_NoAck"]
    slackdelay = data["SlackDelay1_NoAck"]
    ideal = data["Ideal"]

    # both reservation schemes build a substantial share of circuits
    # (the paper's complete-vs-fragmented gap depends on how hard the
    # 2-circuits-per-input cap binds, see EXPERIMENTS.md)
    assert complete["on_circuit"] > 0.20
    assert frag["on_circuit"] > 0.20
    # eliminating ACKs removes a significant slice of replies
    assert noack["eliminated"] > 0.10
    assert complete["eliminated"] == 0.0
    # basic timed reservations undo circuits (cache-delay window misses)
    assert timed["undone"] >= complete["undone"]
    # slack+delay recovers circuits relative to basic timed
    assert slackdelay["on_circuit"] >= timed["on_circuit"] - 0.02
    # the ideal bound uses a circuit for every eligible reply
    assert ideal["failed"] == 0.0
    assert ideal["on_circuit"] >= max(
        v["on_circuit"] for k, v in data.items() if k != "Ideal"
    ) - 1e-9
    # every bar's fractions are a probability distribution
    for variant, outcomes in data.items():
        assert abs(sum(outcomes.values()) - 1.0) < 1e-6, variant
