"""Table 5: ordinal distribution of circuit reservations per input port.

Paper (Complete+NoAck, 64 cores): 1st 48 %, 2nd 24 %, 3rd 7 %, 4th 6 %,
5th 6 %, failed 9 % - reserving the first circuit at a port is far more
common than the fifth, yet all five entries are used.
"""

from repro.harness import render, tables


def test_table5_reservation_ordinals(benchmark, cores, workloads):
    measured = benchmark.pedantic(
        tables.table5, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_table5(measured, tables.TABLE5_PAPER))

    # monotonically decreasing ordinal usage (1st most common)
    assert measured[1] > measured[2] > measured[3]
    assert measured[1] > 30
    # the deeper entries still see use (the paper's argument for 5)
    assert measured[4] + measured[5] > 0
    # some reservations fail, but not most
    assert 0 <= measured["failed"] < 40
