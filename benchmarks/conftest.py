"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
asserts its qualitative shape (who wins, orderings, signs).  Default sizes
are laptop-friendly; environment variables scale them up for full
reproduction runs:

    REPRO_BENCH_CORES=64   chip size for the sweeps (default 16)
    REPRO_SCALE=4          longer simulations (multiplies instruction quanta)
    REPRO_FULL=1           all 22 workloads instead of the 3-workload subset
    REPRO_CACHE=path.json  reuse simulation results across processes
"""

from __future__ import annotations

import os

import pytest


def bench_cores() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "16"))


def bench_workloads() -> list:
    from repro.harness.experiment import default_workloads

    if os.environ.get("REPRO_FULL", "0") not in ("0", "", "false"):
        return default_workloads(full=True)
    return ["canneal", "fluidanimate", "water_spatial"]


@pytest.fixture
def cores() -> int:
    return bench_cores()


@pytest.fixture
def workloads() -> list:
    return bench_workloads()
