"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
asserts its qualitative shape (who wins, orderings, signs).  Default sizes
are laptop-friendly; environment variables scale them up for full
reproduction runs:

    REPRO_BENCH_CORES=64   chip size for the sweeps (default 16)
    REPRO_SCALE=4          longer simulations (multiplies instruction quanta)
    REPRO_FULL=1           all 22 workloads instead of the 3-workload subset
    REPRO_CACHE=path.json  reuse simulation results across processes
                           (crash-safe: concurrent writers merge entries)
    REPRO_JOBS=4           precompute the whole benchmark matrix across
                           worker processes before the benchmarks run
                           (0 = one worker per CPU core)
"""

from __future__ import annotations

import os

import pytest


def bench_cores() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "16"))


def bench_workloads() -> list:
    from repro.harness.experiment import default_workloads, env_flag

    if env_flag("REPRO_FULL"):
        return default_workloads(full=True)
    return ["canneal", "fluidanimate", "water_spatial"]


@pytest.fixture
def cores() -> int:
    return bench_cores()


@pytest.fixture
def workloads() -> list:
    return bench_workloads()


@pytest.fixture(scope="session", autouse=True)
def parallel_prefetch():
    """With REPRO_JOBS set, warm the memo for the whole benchmark matrix.

    The specs the table/figure benchmarks need are all independent, so
    they are computed across worker processes once up front; each
    benchmark then assembles its numbers from memo hits.  Results are
    bit-identical to serial execution (same specs, same seeds).
    """
    from repro.harness import figures, parallel
    from repro.harness.experiment import RunSpec
    from repro.sim.config import Variant

    jobs = parallel.resolve_jobs()
    if jobs <= 1:
        yield
        return
    variants = [Variant.BASELINE]
    for group in (figures.FIG6_VARIANTS, figures.FIG7_VARIANTS,
                  figures.FIG8_VARIANTS, figures.FIG9_VARIANTS,
                  [Variant.COMPLETE_NOACK, Variant.SLACKDELAY1_NOACK]):
        for variant in group:
            if variant not in variants:
                variants.append(variant)
    specs = [
        RunSpec(bench_cores(), variant, workload)
        for variant in variants
        for workload in bench_workloads()
    ]
    parallel.run_specs(specs, jobs=jobs)
    yield
