"""Partitioning ablation (paper section 5.5 / conclusions).

"In a partitioned system, Reactive Circuits could be used independently
inside each partition, thus eliminating concerns about the need to scale
to a larger number of cores."

We run the same application mix on a 64-core chip monolithically and as
four Hardwall-style 16-core partitions, and verify partitioning recovers
a higher circuit success rate (shorter paths, fewer conflicts).
"""

from random import Random

from repro.cpu.trace import AccessStream
from repro.cpu.workloads import workload_by_name
from repro.harness.experiment import scale
from repro.noc.topology import Mesh
from repro.partition import build_partitioned_system, quadrants
from repro.sim.config import SystemConfig, Variant
from repro.system import CmpSystem

APPS = ["blackscholes", "fluidanimate", "water_spatial", "swaptions"]


def _success(system) -> float:
    s = system.stats
    total = s.counter("circuit.replies_total")
    return s.counter("circuit.outcome.on_circuit") / max(1, total)


def _quanta():
    factor = scale()
    return max(100, int(250 * factor)), max(300, int(900 * factor))


def _monolithic():
    config = SystemConfig(n_cores=64).with_variant(Variant.COMPLETE_NOACK)
    rng = Random(7)
    streams = [
        AccessStream(workload_by_name(APPS[core // 16]).params, core, 64,
                     Random(rng.getrandbits(64)))
        for core in range(64)
    ]
    system = CmpSystem(config, streams=streams)
    warm, measure = _quanta()
    system.warmup(warm)
    system.run_instructions(measure)
    return system


def _partitioned():
    config = SystemConfig(n_cores=64).with_variant(Variant.COMPLETE_NOACK)
    parts = quadrants(Mesh(8), [workload_by_name(a) for a in APPS])
    system = build_partitioned_system(config, parts)
    warm, measure = _quanta()
    system.warmup(warm)
    system.run_instructions(measure)
    return system


def test_ablation_partitioning(benchmark):
    def sweep():
        return _monolithic(), _partitioned()

    mono, part = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mono_rate, part_rate = _success(mono), _success(part)
    print(f"\n  monolithic 64-core: circuit success {100 * mono_rate:5.1f}%")
    print(f"  4x16 partitions:    circuit success {100 * part_rate:5.1f}%")
    assert part_rate > mono_rate
    # partitioned replies also travel shorter distances on average
    assert (part.stats.mean("lat.net.crep")
            < mono.stats.mean("lat.net.crep"))
