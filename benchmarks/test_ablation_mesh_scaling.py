"""Mesh-size scaling ablation (paper sections 5.2 / 5.5).

"Comparing Figures 6a and 6b, we notice that it is more complicated to
build circuits with a larger chip, making the scalability of the
mechanism a concern.  This is due to the longer paths messages need to
follow and the increased amount of traffic."

We sweep mesh sizes at a fixed per-node injection rate and check that
complete-circuit success decays with chip size, and that timed circuits
decay more slowly (the paper's proposed mitigation).
"""

from repro.harness.sweeps import mesh_scaling_sweep, render_sweep
from repro.sim.config import Variant

SIDES = (4, 6, 8)


def test_ablation_mesh_scaling(benchmark):
    def sweep():
        return {
            Variant.COMPLETE_NOACK: mesh_scaling_sweep(SIDES,
                                                       Variant.COMPLETE_NOACK),
            Variant.SLACKDELAY1_NOACK: mesh_scaling_sweep(
                SIDES, Variant.SLACKDELAY1_NOACK),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for variant, points in results.items():
        print(render_sweep(points, variant.value))

    complete = results[Variant.COMPLETE_NOACK]
    timed = results[Variant.SLACKDELAY1_NOACK]
    # success decays with chip size (the paper's Fig. 6a vs 6b gap)
    assert complete[0].circuit_success > complete[-1].circuit_success
    # timed circuits hold circuits for shorter windows: at the largest
    # chip they must retain at least as much success as untimed
    assert timed[-1].circuit_success >= complete[-1].circuit_success - 0.02
    # latency grows with distance regardless
    assert complete[-1].mean_reply_latency > complete[0].mean_reply_latency
