"""Figure 10: per-application speedup for timed circuits with slack+delay.

Paper (64 cores): half of the applications gain over 4.5 %, several gain
more than 10 %, and at most two applications see a small (<2 %) slowdown.
At benchmark scale we check the qualitative distribution on the sweep
subset: gains dominate, slowdowns are rare and small.
"""

from repro.harness import figures, render


def test_fig10_per_app_speedup(benchmark, cores, workloads):
    data = benchmark.pedantic(
        figures.figure10, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_figure10(data))

    speedups = list(data.values())
    gains = [s for s in speedups if s > 1.0]
    slowdowns = [s for s in speedups if s < 1.0]
    # most applications gain
    assert len(gains) >= len(speedups) / 2
    # any slowdown is small (paper: < 2 %)
    assert all(s > 0.95 for s in slowdowns)
    # the average application benefits
    assert sum(speedups) / len(speedups) > 1.0
