"""Figure 8: network energy normalised to the baseline.

Paper shape: fragmented circuits *increase* energy (extra VC); every
complete-circuit version reduces it; removing acknowledgements helps
further; best savings 15.2 % (16 cores) and 20.8 % (64 cores).
"""

from repro.harness import figures, render


def test_fig8_network_energy(benchmark, cores, workloads):
    data = benchmark.pedantic(
        figures.figure8, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_ratio_figure(data, "energy vs baseline"))

    def energy(variant):
        return data[variant][0]

    assert energy("Baseline") == 1.0
    # fragmented pays for its extra VC
    assert energy("Fragmented") > energy("Complete")
    # complete circuits save energy
    assert energy("Complete") < 1.0
    # eliminating coherence messages helps further
    assert energy("Complete_NoAck") < energy("Complete")
    # the headline configuration lands in the paper's savings ballpark
    assert 0.60 < energy("Complete_NoAck") < 0.97
    # timed variants still save vs baseline
    assert energy("Timed_NoAck") < 1.0
    assert energy("SlackDelay1_NoAck") < 1.0
