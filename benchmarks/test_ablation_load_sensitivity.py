"""Load-sensitivity ablation (paper section 5.5).

"Under very adverse conditions, with heavy traffic loads, conflicts would
be frequent and prevent complete circuits from being built ... timed
circuits reduce the time circuits keep virtual channels occupied, thus
raising the threshold over which the network would be too congested."

We sweep the injection rate of a synthetic request-reply load and verify
both halves: circuit success decays with load, and timed circuits hold a
higher success rate than untimed ones under pressure.
"""

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant

RATES = (2.0, 12.0, 40.0)  # requests per node per kcycle
CYCLES = 6_000


def _success_by_rate(variant: Variant):
    out = {}
    for rate in RATES:
        config = SystemConfig(n_cores=16).with_variant(variant)
        traffic = RequestReplyTraffic(config, rate, seed=7)
        traffic.run(CYCLES)
        traffic.drain()
        out[rate] = traffic.circuit_success_rate()
    return out


def test_ablation_load_sensitivity(benchmark):
    def sweep():
        return {
            Variant.COMPLETE: _success_by_rate(Variant.COMPLETE),
            Variant.TIMED_NOACK: _success_by_rate(Variant.TIMED_NOACK),
            Variant.SLACKDELAY1_NOACK: _success_by_rate(
                Variant.SLACKDELAY1_NOACK),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for variant, by_rate in results.items():
        row = "  ".join(f"{rate:5.0f}/kcyc: {100 * success:5.1f}%"
                        for rate, success in by_rate.items())
        print(f"  {variant.value:22s} {row}")

    complete = results[Variant.COMPLETE]
    timed = results[Variant.TIMED_NOACK]
    # success decays as load grows (untimed circuits hold resources)
    assert complete[RATES[0]] > complete[RATES[-1]]
    # timed reservations raise the congestion threshold: under the heaviest
    # load they keep building more circuits than untimed complete
    assert timed[RATES[-1]] > complete[RATES[-1]]
