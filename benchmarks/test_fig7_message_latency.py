"""Figure 7: message latency by class (requests / circuit-eligible replies
/ other replies) across variants.

Paper shape: circuit variants cut the latency of eligible replies
substantially; request latency is unchanged; removing ACKs drops the
average latency of non-eligible replies dramatically (they are counted
with zero latency); postponed circuits give back part of the win.
"""

from repro.harness import figures, render


def test_fig7_message_latency(benchmark, cores, workloads):
    data = benchmark.pedantic(
        figures.figure7, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_figure7(data))

    def net(variant, cls):
        return data[variant][cls][0]

    # circuits cut eligible-reply network latency vs the baseline
    assert net("Complete", "crep") < net("Baseline", "crep")
    assert net("SlackDelay1_NoAck", "crep") < net("Baseline", "crep")
    assert net("Ideal", "crep") <= net("Complete", "crep") + 1.0
    # requests are untouched by the mechanism
    assert abs(net("Complete", "req") - net("Baseline", "req")) < 6.0
    # eliminated ACKs (zero latency) pull the non-eligible average down
    assert net("Complete_NoAck", "norep") < net("Complete", "norep")
    # fragmented circuits also help, via partial fast paths
    assert net("Fragmented", "crep") < net("Baseline", "crep")
