"""Table 6: router area savings per Reactive Circuits version.

Paper: Fragmented -19.28 % / -18.96 % (16/64 cores), Complete +6.21 % /
+5.77 %, Complete Timed +3.38 % / +1.09 %.
"""

import pytest

from repro.harness import render, tables


def test_table6_router_area(benchmark):
    measured = benchmark.pedantic(tables.table6, rounds=3, iterations=1)
    print()
    print(render.render_table6(measured, tables.TABLE6_PAPER))

    for (label, cores), paper_value in tables.TABLE6_PAPER.items():
        value = measured[(label, cores)]
        # correct sign for every row
        assert value * paper_value > 0, (label, cores)
        # within a few points of the paper's DSENT numbers
        assert value == pytest.approx(paper_value, abs=4.0), (label, cores)

    # orderings: fragmented pays, complete saves most, timers eat savings,
    # and savings shrink with chip size (wider IDs/timers)
    assert measured[("Complete", 16)] > measured[("Complete Timed", 16)] > 0
    assert measured[("Complete", 64)] > measured[("Complete Timed", 64)] > 0
    assert measured[("Fragmented", 16)] < -10
    assert measured[("Complete", 64)] < measured[("Complete", 16)]
    assert measured[("Complete Timed", 64)] < measured[("Complete Timed", 16)]
