"""Figure 9: system speedup per Reactive Circuits version.

Paper shape: modest but consistent gains (3.8-4.8 % for complete+NoAck,
4.4-6.0 % for slack+delay), NoAck versions beat their with-ACK
counterparts, and the ideal reservation is the ceiling.
"""

from repro.harness import figures, render


def test_fig9_speedup(benchmark, cores, workloads):
    data = benchmark.pedantic(
        figures.figure9, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_ratio_figure(data, "speedup"))

    def speedup(variant):
        return data[variant][0]

    # every circuit variant helps on average
    for variant, (mean, _err) in data.items():
        assert mean > 0.98, variant
    # gains are modest (lightly loaded network), not 2x fantasies
    assert speedup("Complete_NoAck") < 1.30
    assert speedup("Complete_NoAck") > 1.0
    # the ideal construction is the ceiling (within noise)
    ceiling = speedup("Ideal")
    for variant, (mean, _err) in data.items():
        if variant != "Ideal":
            assert mean <= ceiling + 0.03, variant
