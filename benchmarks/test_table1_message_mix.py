"""Table 1: percentage of messages by type on the baseline network.

Paper (64 cores): requests 47.0 %, replies 53.0 %; within replies
L2_Replies 22.6 %, L1_DATA_ACK 23.0 %, L2_WB_ACK 4.7 %, L1_INV_ACK 1.1 %,
MEMORY 0.9 %, L1_TO_L1 0.7 %.
"""

from repro.coherence.messages import Kind
from repro.harness import render, tables


def test_table1_message_mix(benchmark, cores, workloads):
    measured = benchmark.pedantic(
        tables.table1, args=(workloads, cores), rounds=1, iterations=1
    )
    print()
    print(render.render_table1(measured, tables.TABLE1_PAPER))

    # Shape checks (the paper's qualitative structure):
    # data replies and their acknowledgements dominate the reply mix,
    assert measured[Kind.L2_REPLY] > 10
    assert measured[Kind.L1_DATA_ACK] > 10
    # ACKs pair with data replies (L2_REPLY + L1_TO_L1)
    acks = measured[Kind.L1_DATA_ACK]
    data = measured[Kind.L2_REPLY] + measured[Kind.L1_TO_L1]
    assert abs(acks - data) < 2.0
    # writeback acks are a clear but minor slice,
    assert 1 < measured[Kind.L2_WB_ACK] < 12
    # invalidations, memory traffic and L1-to-L1 transfers are small.
    assert measured[Kind.L1_INV_ACK] < 6
    assert measured["MEMORY"] < 4
    assert measured[Kind.L1_TO_L1] < 4
    # overall request/reply split is in the paper's ballpark
    assert 30 < measured["requests"] < 55
    assert 45 < measured["replies"] < 70
