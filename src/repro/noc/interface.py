"""Network interface (NI).

Each tile has one NI connecting its core/L1, L2 bank, and (optionally)
memory controller to the router's LOCAL port.  The NI:

* segments messages into flits and injects at most one flit per cycle,
* tracks credits for the router's local input VCs,
* reassembles ejected flits and delivers messages to the protocol layer,
* owns the circuit origination table (paper: "information of the circuit
  is also stored in the network interface where the circuit starts"),
* plans replies with the circuit policy: ride the circuit (possibly waiting
  for a timed slot), scrounge another circuit, or fall back to packets,
* relays scrounger messages onward from their intermediate destination.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.noc.flit import CircuitKey, Message
from repro.noc.link import CreditLink, FlitLink
from repro.sim.stats import Stats


class _ActiveSend:
    """An in-progress message injection (one per VN, plus circuit sends)."""

    __slots__ = ("msg", "flits", "index", "vn", "vc", "circuit", "plan")

    def __init__(self, msg: Message, vn: int, vc: int, circuit: bool) -> None:
        self.msg = msg
        self.flits = msg.flits()
        self.index = 0
        self.vn = vn
        self.vc = vc
        self.circuit = circuit
        self.plan = msg.plan

    @property
    def done(self) -> bool:
        return self.index >= len(self.flits)


class NetworkInterface:
    """Injection/ejection endpoint of one tile.

    This is the optimised hot path: per-flit counters are batched into
    plain ints (drained into the shared :class:`Stats` by a registered
    flusher), link drains are inlined, and per-call ``getattr`` lookups
    are hoisted to construction time.  :class:`ReferenceNetworkInterface`
    preserves the pre-overhaul per-event implementations for A/B runs.
    """

    def __init__(self, node: int, mesh, config, policy, stats: Stats) -> None:
        self.node = node
        self.mesh = mesh
        self.config = config
        self.policy = policy
        self.stats = stats
        #: Hoisted from the per-flit circuit-send path (static per policy).
        self._circuit_credits = getattr(policy, "circuit_credits", False)
        #: injectable_vcs() is static per policy; cache per VN.
        self._inject_vcs = tuple(
            policy.injectable_vcs(vn)
            for vn in range(len(config.noc.vcs_per_vn))
        )
        # Hot counters, batched; see Router._flush_counters for the rules.
        self._c_enqueued = 0
        self._c_injected = 0
        self._c_link = 0
        self._c_delivered_msgs = 0
        self._c_delivered_flits = 0
        #: ``msg.count.<kind>`` key strings, interned on first use.
        self._kind_keys: Dict[str, str] = {}
        stats.add_flusher(self._flush_counters)
        # Channels (wired by the Network).
        self.to_router: Optional[FlitLink] = None
        self.from_router: Optional[FlitLink] = None
        self.credit_in: Optional[CreditLink] = None
        self.credit_out: Optional[CreditLink] = None
        # Credits mirroring the router's LOCAL input VC buffers.
        depth = config.noc.buffer_depth_flits
        bufferless = policy.bufferless_vcs()
        self.credits: List[List[int]] = [
            [0 if (vn, vc) in bufferless else depth for vc in range(count)]
            for vn, count in enumerate(config.noc.vcs_per_vn)
        ]
        # Queues.
        self.req_queue: Deque[Message] = deque()
        self.reply_pending: Deque[Message] = deque()
        self.reply_queue: Deque[Message] = deque()
        self.held: List[Tuple[int, int, Message]] = []
        self._seq = 0
        self.active_circuit: Optional[_ActiveSend] = None
        self.active_packet: Dict[int, Optional[_ActiveSend]] = {0: None, 1: None}
        self._vn_preference = 0
        # Circuit origination state (policy-managed).
        self.origin_table: Dict[CircuitKey, object] = {}
        self._undo_out: List[Tuple[int, CircuitKey]] = []
        # Ejection.
        self._rx_counts: Dict[int, int] = {}
        self.deliver: Optional[Callable[[Message, int], None]] = None
        #: Optional telemetry span recorder (``repro.telemetry``); hooks
        #: are guarded by ``observer is not None`` so detached telemetry
        #: costs one attribute test per event site.
        self.observer = None
        #: Flits/credits in flight toward this NI (link watcher).
        self.incoming = 0
        #: Set by the simulator kernel; links and the protocol layer poke
        #: it so a sleeping NI wakes exactly when new work materialises.
        self.kernel_wake = None

    def _flush_counters(self) -> None:
        counters = self.stats.counters
        if self._c_enqueued:
            counters["noc.msgs_enqueued"] += self._c_enqueued
            self._c_enqueued = 0
        if self._c_injected:
            counters["noc.flits_injected"] += self._c_injected
            self._c_injected = 0
        if self._c_link:
            counters["noc.link_flits"] += self._c_link
            self._c_link = 0
        if self._c_delivered_msgs:
            counters["noc.msgs_delivered"] += self._c_delivered_msgs
            self._c_delivered_msgs = 0
        if self._c_delivered_flits:
            counters["noc.flits_delivered"] += self._c_delivered_flits
            self._c_delivered_flits = 0

    # ------------------------------------------------------------------
    # Protocol-facing API.
    # ------------------------------------------------------------------
    def enqueue(self, msg: Message, cycle: int) -> None:
        """Hand a message to the NI (injectable from the next cycle on)."""
        msg.enqueued_cycle = cycle
        self._c_enqueued += 1
        if self.observer is not None:
            self.observer.ni_enqueue(self, msg, cycle)
        if msg.vn == 0:
            self.req_queue.append(msg)
        else:
            self.reply_pending.append(msg)
        if self.kernel_wake is not None:
            # Injectable (and plannable) from the next cycle on.
            self.kernel_wake(cycle + 1)

    def cancel_circuit(self, key: CircuitKey, cycle: int) -> bool:
        """Protocol decided a reserved circuit will never be used (4.4).

        Returns True when a built circuit actually existed and was undone
        (the protocol marks the replacement reply as "undone" for Fig. 6).
        """
        return self.policy.cancel_origin(self, key, cycle)

    def send_undo(self, key: CircuitKey, cycle: int) -> None:
        """Queue an undo notice toward the circuit's destination.

        Sent one cycle later so an undo can never overtake (or tie with)
        circuit flits already in flight on the same path.
        """
        self._undo_out.append((cycle + 1, key))
        if self.kernel_wake is not None:
            self.kernel_wake(cycle + 1)

    def rx_partial_flits(self) -> int:
        """Flits of partially reassembled messages (exact-census probe)."""
        return sum(self._rx_counts.values())

    def pending_work(self) -> int:
        """Messages queued or mid-injection (used for drain detection)."""
        total = len(self.req_queue) + len(self.reply_pending)
        total += len(self.reply_queue) + len(self.held)
        total += len(self._rx_counts) + len(self._undo_out)
        if self.to_router is not None:
            total += self.to_router.in_flight()
        if self.active_circuit is not None:
            total += 1
        total += sum(1 for act in self.active_packet.values() if act is not None)
        return total

    # ------------------------------------------------------------------
    # Tick.
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Plain ``Clocked`` entry point (always-tick mode, direct tests)."""
        self.tick_wake(cycle)

    def tick_wake(self, cycle: int) -> Optional[int]:
        """One NI cycle with the link drains and the sleep decision
        (``next_wake``'s body) inlined - the kernel's fused tick+sleep
        protocol, see ``_Slot.tick_wake``.  The reference NI keeps the
        method-per-stage pipeline; A/B tests hold the two bit-identical.
        """
        active_packet = self.active_packet
        # Inlined _has_work() (this guard runs once per awake cycle).
        # On this exact state next_wake returns None (sleep until poked).
        if not (
            self.incoming
            or self.req_queue
            or self.reply_pending
            or self.reply_queue
            or self.held
            or self._undo_out
            or self.active_circuit is not None
            or active_packet[0] is not None
            or active_packet[1] is not None
        ):
            return None
        if self.incoming:
            removed = 0
            # Inlined credit drain.
            link = self.credit_in
            if link is not None:
                queue = link._queue
                if queue and queue[0][0] <= cycle:
                    credits = self.credits
                    while queue and queue[0][0] <= cycle:
                        credit = queue.popleft()[1]
                        removed += 1
                        vn = credit.vn
                        if vn is not None:
                            credits[vn][credit.vc] += 1
            # Inlined ejection drain.
            link = self.from_router
            if link is not None:
                queue = link._queue
                if queue and queue[0][0] <= cycle:
                    rx_counts = self._rx_counts
                    while queue and queue[0][0] <= cycle:
                        flit = queue.popleft()[1]
                        removed += 1
                        msg = flit.msg
                        got = rx_counts.get(msg.uid, 0) + 1
                        if got == msg.n_flits:
                            rx_counts.pop(msg.uid, None)
                            self._finish(msg, cycle)
                        else:
                            rx_counts[msg.uid] = got
            if removed:
                self.incoming -= removed
        if self._undo_out:
            self._flush_undo(cycle)
        if self.reply_pending:
            self._plan_replies(cycle)
        if (
            self.active_circuit is not None
            or self.held
            or self.req_queue
            or self.reply_queue
            or active_packet[0] is not None
            or active_packet[1] is not None
        ):
            self._inject_one_flit(cycle)
        # -- fused sleep decision (next_wake's body, same order) -----------
        if (
            self.req_queue
            or self.reply_pending
            or self.reply_queue
            or self.active_circuit is not None
            or active_packet[0] is not None
            or active_packet[1] is not None
        ):
            return cycle + 1
        due: Optional[int] = None
        if self.incoming:
            for link in (self.from_router, self.credit_in):
                if link is not None and link._queue:
                    arrival = link._queue[0][0]
                    if due is None or arrival < due:
                        due = arrival
        if self.held and (due is None or self.held[0][0] < due):
            due = self.held[0][0]
        if self._undo_out:
            undo_due = min(entry[0] for entry in self._undo_out)
            if due is None or undo_due < due:
                due = undo_due
        return due

    def _has_work(self) -> bool:
        return bool(
            self.incoming
            or self.req_queue
            or self.reply_pending
            or self.reply_queue
            or self.held
            or self._undo_out
            or self.active_circuit is not None
            or self.active_packet[0] is not None
            or self.active_packet[1] is not None
        )

    def next_wake(self, cycle: int) -> Optional[int]:
        """Report the next cycle this NI could possibly act.

        Queued messages and active sends need a tick every cycle.  All
        other NI work is future-dated with an exactly-known due cycle -
        ``incoming`` traffic still on the wire (link queue heads), held
        circuit replies (timed windows) and queued undo notices - so
        with only those pending, the NI sleeps until the earliest one.
        """
        if (
            self.req_queue
            or self.reply_pending
            or self.reply_queue
            or self.active_circuit is not None
            or self.active_packet[0] is not None
            or self.active_packet[1] is not None
        ):
            return cycle + 1
        due: Optional[int] = None
        if self.incoming:
            for link in (self.from_router, self.credit_in):
                if link is not None and link._queue:
                    arrival = link._queue[0][0]
                    if due is None or arrival < due:
                        due = arrival
        if self.held and (due is None or self.held[0][0] < due):
            due = self.held[0][0]
        if self._undo_out:
            undo_due = min(entry[0] for entry in self._undo_out)
            if due is None or undo_due < due:
                due = undo_due
        return due

    def _flush_undo(self, cycle: int) -> None:
        if not self._undo_out:
            return
        keep: List[Tuple[int, CircuitKey]] = []
        for due, key in self._undo_out:
            if due <= cycle:
                self.credit_out.send_undo(key, cycle)
                self.stats.bump("circuit.undo_hops")
            else:
                keep.append((due, key))
        self._undo_out = keep

    def _plan_replies(self, cycle: int) -> None:
        while self.reply_pending and self.reply_pending[0].enqueued_cycle < cycle:
            msg = self.reply_pending.popleft()
            plan = self.policy.plan_reply(self, msg, cycle)
            msg.plan = plan
            if self.observer is not None:
                self.observer.ni_plan(self, msg, plan, cycle)
            if plan.kind == "circuit":
                heapq.heappush(
                    self.held, (max(plan.release, cycle), self._seq, msg)
                )
                self._seq += 1
            else:
                self.reply_queue.append(msg)

    # -- injection ---------------------------------------------------------
    def _inject_one_flit(self, cycle: int) -> None:
        if self.active_circuit is not None:
            self._advance_circuit(cycle)
            return
        if self._start_circuit(cycle):
            return
        # Inlined packet advance for both VNs (per-cycle injection hot path).
        first = self._vn_preference
        active_packet = self.active_packet
        credits = self.credits
        for vn in (first, 1 - first):
            act = active_packet[vn]
            if act is None:
                act = self._start_packet(vn, cycle)
                if act is None:
                    continue
            row = credits[act.vn]
            avc = act.vc
            if row[avc] <= 0:
                continue
            flit = act.flits[act.index]
            flit.dst_vc = avc
            act.index += 1
            row[avc] -= 1
            # Inlined FlitLink.send (per-flit injection hot path).
            link = self.to_router
            due = cycle + 1 + link.latency
            link._queue.append((due, flit))
            watcher = link.watcher
            if watcher is not None:
                watcher.incoming += 1
                wake = watcher.kernel_wake
                if wake is not None:
                    wake(due)
            self._c_injected += 1
            self._c_link += 1
            if act.done:
                active_packet[vn] = None
            self._vn_preference = 1 - vn
            return

    def _start_circuit(self, cycle: int) -> bool:
        while self.held and self.held[0][0] <= cycle:
            _release, _seq, msg = heapq.heappop(self.held)
            plan = msg.plan
            if not self.policy.validate_send(self, msg, cycle):
                # Timed window can no longer be met: undo, go packet-switched.
                self.stats.bump("circuit.window_missed_late")
                plan.kind = "packet"
                plan.outcome = "undone"
                msg.uses_circuit = False
                self.reply_queue.append(msg)
                continue
            self.policy.record_outcome(self, msg, plan, cycle)
            msg.injected_cycle = cycle
            msg.queue_acc += cycle - msg.enqueued_cycle
            if self.observer is not None:
                self.observer.ni_inject(self, msg, cycle, circuit=True)
            act = _ActiveSend(msg, 1, plan.dst_vc, circuit=True)
            for flit in act.flits:
                flit.on_circuit = True
            self.active_circuit = act
            self._advance_circuit(cycle)
            return True
        return False

    def _advance_circuit(self, cycle: int) -> None:
        act = self.active_circuit
        assert act is not None
        if self._circuit_credits:
            if self.credits[1][act.vc] <= 0:
                return
            self.credits[1][act.vc] -= 1
        flit = act.flits[act.index]
        flit.dst_vc = act.vc
        act.index += 1
        # Inlined FlitLink.send (per-flit injection hot path).
        link = self.to_router
        due = cycle + 1 + link.latency
        link._queue.append((due, flit))
        watcher = link.watcher
        if watcher is not None:
            watcher.incoming += 1
            wake = watcher.kernel_wake
            if wake is not None:
                wake(due)
        self._c_injected += 1
        self._c_link += 1
        if act.done:
            self.active_circuit = None
            if act.plan is not None and act.plan.is_scrounger:
                self.policy.on_scrounger_sent(self, act.plan, cycle)

    def _start_packet(self, vn: int, cycle: int) -> Optional[_ActiveSend]:
        queue = self.req_queue if vn == 0 else self.reply_queue
        if not queue or queue[0].enqueued_cycle >= cycle:
            return None
        vc = self._pick_vc(vn)
        if vc is None:
            return None
        msg = queue.popleft()
        msg.injected_cycle = cycle
        msg.queue_acc += cycle - msg.enqueued_cycle
        if vn == 0 and msg.builds_circuit:
            self.policy.on_request_injected(self, msg, cycle)
        if vn == 1:
            plan = msg.plan
            if plan is not None:
                self.policy.record_outcome(self, msg, plan, cycle)
        if self.observer is not None:
            self.observer.ni_inject(self, msg, cycle, circuit=False)
        act = _ActiveSend(msg, vn, vc, circuit=False)
        self.active_packet[vn] = act
        return act

    def _pick_vc(self, vn: int) -> Optional[int]:
        credits = self.credits[vn]
        for vc in self._inject_vcs[vn]:
            if credits[vc] > 0:
                return vc
        return None

    # -- ejection ------------------------------------------------------------
    def _finish(self, msg: Message, cycle: int) -> None:
        msg.net_acc += cycle - msg.injected_cycle
        if msg.final_dest is not None and msg.final_dest != self.node:
            # Scrounger intermediate hop: re-inject toward the real target.
            self.stats.bump("circuit.scrounger_relays")
            # These flits left the network without being delivered; the
            # flit-conservation invariant needs them accounted separately.
            self.stats.bump("noc.flits_relayed", msg.n_flits)
            msg.src = self.node
            msg.dest = msg.final_dest
            msg.final_dest = None
            msg.ride_key = None
            msg.uses_circuit = False
            msg.plan = None
            msg.enqueued_cycle = cycle
            if self.observer is not None:
                self.observer.ni_relay(self, msg, cycle)
            self.reply_pending.append(msg)
            return
        cls = self._record_latency(msg)
        if self.observer is not None:
            self.observer.ni_eject(self, msg, cycle, cls)
        if msg.builds_circuit:
            self.policy.on_request_delivered(self, msg, cycle)
        if self.deliver is not None:
            self.deliver(msg, cycle)

    #: Static latency-stat keys, precomputed so the per-message path
    #: builds no f-strings (keys are identical to the formatted ones).
    _LAT_KEYS = {
        "req": ("lat.net.req", "lat.queue.req"),
        "crep": ("lat.net.crep", "lat.queue.crep"),
        "norep": ("lat.net.norep", "lat.queue.norep"),
    }

    def _record_latency(self, msg: Message) -> str:
        if msg.vn == 0:
            cls = "req"
        elif msg.circuit_eligible:
            cls = "crep"
        else:
            cls = "norep"
        net_key, queue_key = self._LAT_KEYS[cls]
        stats = self.stats
        stats.record(net_key, msg.net_acc)
        stats.observe(queue_key, msg.queue_acc)
        kind = msg.kind
        kind_keys = self._kind_keys
        key = kind_keys.get(kind)
        if key is None:
            key = kind_keys[kind] = "msg.count." + kind
        stats.counters[key] += 1
        self._c_delivered_msgs += 1
        self._c_delivered_flits += msg.n_flits
        return cls


class ReferenceNetworkInterface(NetworkInterface):
    """Pre-overhaul NI implementation, kept for A/B equivalence runs.

    Reinstates the per-event ``Stats.bump`` calls, the generator-based
    link drains and the per-send ``getattr`` policy probe that the fast
    path hoists or batches.  Built when ``config.noc.fastpath`` is False.
    """

    #: Opt out of the kernel's fused tick+next_wake protocol: the
    #: reference pipeline keeps the separate tick / next_wake calls.
    tick_wake = None

    def tick(self, cycle: int) -> None:
        """Pre-overhaul tick: one method call per NI stage."""
        if not self._has_work():
            return
        if self.incoming:
            self._pull_credits(cycle)
            self._pull_ejections(cycle)
        if self._undo_out:
            self._flush_undo(cycle)
        if self.reply_pending:
            self._plan_replies(cycle)
        if (
            self.active_circuit is not None
            or self.held
            or self.req_queue
            or self.reply_queue
            or self.active_packet[0] is not None
            or self.active_packet[1] is not None
        ):
            self._inject_one_flit(cycle)

    def enqueue(self, msg: Message, cycle: int) -> None:
        msg.enqueued_cycle = cycle
        self.stats.bump("noc.msgs_enqueued")
        if self.observer is not None:
            self.observer.ni_enqueue(self, msg, cycle)
        if msg.vn == 0:
            self.req_queue.append(msg)
        else:
            self.reply_pending.append(msg)
        if self.kernel_wake is not None:
            # Injectable (and plannable) from the next cycle on.
            self.kernel_wake(cycle + 1)

    def _pull_credits(self, cycle: int) -> None:
        link = self.credit_in
        if link is None or not link._queue or link._queue[0][0] > cycle:
            return
        for credit in link.arrivals(cycle):
            if credit.is_buffer_credit:
                self.credits[credit.vn][credit.vc] += 1

    def _pull_ejections(self, cycle: int) -> None:
        link = self.from_router
        if link is None or not link._queue or link._queue[0][0] > cycle:
            return
        for flit in link.arrivals(cycle):
            msg = flit.msg
            got = self._rx_counts.get(msg.uid, 0) + 1
            if got == msg.n_flits:
                self._rx_counts.pop(msg.uid, None)
                self._finish(msg, cycle)
            else:
                self._rx_counts[msg.uid] = got

    def _advance_circuit(self, cycle: int) -> None:
        act = self.active_circuit
        assert act is not None
        needs_credit = getattr(self.policy, "circuit_credits", False)
        if needs_credit:
            if self.credits[1][act.vc] <= 0:
                return
            self.credits[1][act.vc] -= 1
        flit = act.flits[act.index]
        flit.dst_vc = act.vc
        act.index += 1
        self.to_router.send(flit, cycle)
        self.stats.bump("noc.flits_injected")
        self.stats.bump("noc.link_flits")
        if act.done:
            self.active_circuit = None
            if act.plan is not None and act.plan.is_scrounger:
                self.policy.on_scrounger_sent(self, act.plan, cycle)

    def _inject_one_flit(self, cycle: int) -> None:
        """Pre-overhaul injection: one method call per arbitration step."""
        if self.active_circuit is not None:
            self._advance_circuit(cycle)
            return
        if self._start_circuit(cycle):
            return
        first = self._vn_preference
        for vn in (first, 1 - first):
            if self._advance_packet(vn, cycle):
                self._vn_preference = 1 - vn
                return

    def _advance_packet(self, vn: int, cycle: int) -> bool:
        act = self.active_packet[vn]
        if act is None:
            act = self._start_packet(vn, cycle)
            if act is None:
                return False
        if self.credits[act.vn][act.vc] <= 0:
            return False
        flit = act.flits[act.index]
        flit.dst_vc = act.vc
        act.index += 1
        self.credits[act.vn][act.vc] -= 1
        self.to_router.send(flit, cycle)
        self.stats.bump("noc.flits_injected")
        self.stats.bump("noc.link_flits")
        if act.done:
            self.active_packet[vn] = None
        return True

    def _record_latency(self, msg: Message) -> str:
        if msg.vn == 0:
            cls = "req"
        elif msg.circuit_eligible:
            cls = "crep"
        else:
            cls = "norep"
        self.stats.record(f"lat.net.{cls}", msg.net_acc)
        self.stats.observe(f"lat.queue.{cls}", msg.queue_acc)
        self.stats.bump(f"msg.count.{msg.kind}")
        self.stats.bump("noc.msgs_delivered")
        self.stats.bump("noc.flits_delivered", msg.n_flits)
        return cls
