"""Cycle-level NoC substrate: mesh topology, wormhole routers, interfaces."""

from repro.noc.flit import Flit, Message
from repro.noc.network import Network
from repro.noc.routing import route_xy, route_yx
from repro.noc.topology import LOCAL, Mesh, Port, opposite
from repro.noc.traffic import RequestReplyTraffic

__all__ = [
    "Flit",
    "LOCAL",
    "Mesh",
    "Message",
    "Network",
    "Port",
    "RequestReplyTraffic",
    "opposite",
    "route_xy",
    "route_yx",
]
