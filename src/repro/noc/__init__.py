"""Cycle-level NoC substrate: pluggable topologies, wormhole routers, NIs."""

from repro.noc.flit import Flit, Message
from repro.noc.network import Network
from repro.noc.routing import route_xy, route_yx
from repro.noc.topology import (
    CMesh,
    ConfigError,
    LOCAL,
    Mesh,
    Port,
    TOPOLOGY_CHOICES,
    Topology,
    Torus,
    build_topology,
    make_topology,
    opposite,
    resolve_topology,
)
from repro.noc.traffic import RequestReplyTraffic

__all__ = [
    "CMesh",
    "ConfigError",
    "Flit",
    "LOCAL",
    "Mesh",
    "Message",
    "Network",
    "Port",
    "RequestReplyTraffic",
    "TOPOLOGY_CHOICES",
    "Topology",
    "Torus",
    "build_topology",
    "make_topology",
    "opposite",
    "resolve_topology",
    "route_xy",
    "route_yx",
]
