"""Dimension-order routing.

Requests route XY and replies route YX (section 4.1) so that a request and
its reply traverse exactly the same set of routers, letting the request
reserve the reply's circuit hop by hop.  Both are DOR and each owns a
virtual network, so the combination is deadlock-free.
"""

from __future__ import annotations

from typing import List

from repro.noc.topology import Mesh, Port


def route_xy(mesh: Mesh, here: int, dest: int) -> Port:
    """Next output port under XY DOR (x first, then y)."""
    hx, hy = mesh.coords(here)
    dx, dy = mesh.coords(dest)
    if hx < dx:
        return Port.EAST
    if hx > dx:
        return Port.WEST
    if hy < dy:
        return Port.SOUTH
    if hy > dy:
        return Port.NORTH
    return Port.LOCAL


def route_yx(mesh: Mesh, here: int, dest: int) -> Port:
    """Next output port under YX DOR (y first, then x)."""
    hx, hy = mesh.coords(here)
    dx, dy = mesh.coords(dest)
    if hy < dy:
        return Port.SOUTH
    if hy > dy:
        return Port.NORTH
    if hx < dx:
        return Port.EAST
    if hx > dx:
        return Port.WEST
    return Port.LOCAL


def route_for_vn(mesh: Mesh, vn: int, here: int, dest: int,
                 request_xy: bool = True) -> Port:
    """Route by virtual network: requests and replies use opposite DOR.

    The default orientation is the paper's (requests XY, replies YX); the
    mechanism works with either assignment as long as the two VNs use
    opposite dimension orders, so a request and its reply traverse the
    same routers (section 4.2: "any deterministic routing").
    """
    if (vn == 0) == request_xy:
        return route_xy(mesh, here, dest)
    return route_yx(mesh, here, dest)


def path_routers(mesh: Mesh, vn: int, src: int, dest: int,
                 request_xy: bool = True) -> List[int]:
    """Ordered list of routers a message traverses, endpoints included."""
    path = [src]
    here = src
    while here != dest:
        port = route_for_vn(mesh, vn, here, dest, request_xy)
        here = mesh.neighbor(here, port)
        path.append(here)
    return path
