"""Routing functions and their compiled next-hop tables.

Requests route XY and replies route YX (section 4.1) so that a request
and its reply traverse exactly the same set of routers, letting the
request reserve the reply's circuit hop by hop.  Both are DOR and each
owns a virtual network, so the combination is deadlock-free.

:class:`RoutingFunction` is the abstraction behind that: its contract is
the paper's invariant (section 4.2 "any deterministic routing") - for
every (src, dst) pair it yields one deterministic path, and the paired
reply function's path visits the same routers in reverse order.  The
concrete implementation is :class:`DimensionOrderRouting`, parameterised
by topology and dimension order; on a torus it picks the shorter way
round each dimension, breaking exact ties toward +direction from the
lower coordinate so the reversed route retraces the same routers.

Routing is a pure function of the (static) topology, so the whole
function space is compiled once into dense next-hop tables
(``table[router][dest_node] -> port``) that both router pipelines index
in their route-compute stage.  Table entries are plain ints following
the topology's port convention (ports >= ``local_base`` eject).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.topology import Port, Topology

# Axis step -> port, per the mesh embedding (EAST = +x, SOUTH = +y).
_X_PORTS = {1: int(Port.EAST), -1: int(Port.WEST)}
_Y_PORTS = {1: int(Port.SOUTH), -1: int(Port.NORTH)}


def _axis_dir(here: int, dest: int, size: int, wraps: bool) -> int:
    """Step direction (+1/-1/0) along one dimension.

    Without wraparound this is the sign of the difference.  With
    wraparound the shorter way round wins; an exact tie (``size/2``
    apart) goes +direction iff ``here < dest``, which makes the
    reverse route (where the tie reads the opposite way) retrace the
    identical routers - the property the circuit mechanism needs.
    """
    if here == dest:
        return 0
    if not wraps:
        return 1 if here < dest else -1
    fwd = (dest - here) % size
    back = (here - dest) % size
    if fwd < back:
        return 1
    if back < fwd:
        return -1
    return 1 if here < dest else -1


class RoutingFunction:
    """A deterministic next-hop function over one topology.

    Contract (the paper's invariant): ``next_port(router, dest)`` is a
    pure function of its arguments; following it from any router reaches
    ``dest``'s router in at most ``topology.diameter`` hops without
    revisiting a router; and the paired reply function (the opposite
    dimension order here) routes ``dest -> src`` through the same
    routers in reverse.  Implementations return plain int ports; at the
    destination router they return the destination node's local port.
    """

    def __init__(self, topo: Topology) -> None:
        self.topo = topo

    def next_port(self, router: int, dest: int) -> int:
        """Output port at ``router`` for a packet headed to node ``dest``."""
        raise NotImplementedError


class DimensionOrderRouting(RoutingFunction):
    """DOR over the topology's grid embedding (XY when ``xy`` else YX)."""

    def __init__(self, topo: Topology, xy: bool) -> None:
        super().__init__(topo)
        self.xy = xy

    def next_port(self, router: int, dest: int) -> int:
        topo = self.topo
        dest_router = topo.router_of(dest)
        if router == dest_router:
            return int(topo.local_port(dest))
        width, height = topo.grid_shape
        hx, hy = topo.coords(router)
        dx, dy = topo.coords(dest_router)
        if self.xy:
            step = _axis_dir(hx, dx, width, topo.wraps)
            if step:
                return _X_PORTS[step]
            return _Y_PORTS[_axis_dir(hy, dy, height, topo.wraps)]
        step = _axis_dir(hy, dy, height, topo.wraps)
        if step:
            return _Y_PORTS[step]
        return _X_PORTS[_axis_dir(hx, dx, width, topo.wraps)]


def route_xy(mesh: Topology, here: int, dest: int) -> Port:
    """Next output port under XY DOR (x first, then y).

    Compatibility wrapper over :class:`DimensionOrderRouting` for the
    mesh-family topologies whose ports all fit the :class:`Port` enum.
    """
    return Port(DimensionOrderRouting(mesh, True).next_port(here, dest))


def route_yx(mesh: Topology, here: int, dest: int) -> Port:
    """Next output port under YX DOR (y first, then x)."""
    return Port(DimensionOrderRouting(mesh, False).next_port(here, dest))


def route_for_vn(mesh: Topology, vn: int, here: int, dest: int,
                 request_xy: bool = True) -> int:
    """Route by virtual network: requests and replies use opposite DOR.

    The default orientation is the paper's (requests XY, replies YX); the
    mechanism works with either assignment as long as the two VNs use
    opposite dimension orders, so a request and its reply traverse the
    same routers (section 4.2: "any deterministic routing").  ``here``
    is a router id; the return value is a plain int port.
    """
    req_table, rep_table = route_tables(mesh, request_xy)
    table = req_table if vn == 0 else rep_table
    return table[here][dest]


def build_route_table(mesh: Topology, xy: bool) -> Tuple[Tuple[int, ...], ...]:
    """Dense DOR next-hop table: ``table[router][dest_node] -> port``.

    Routing is a pure function of the (static) topology, so the whole
    function space is enumerable once at construction; the router's hot
    route-compute stage then degenerates to one indexed load.
    """
    fn = DimensionOrderRouting(mesh, xy)
    return tuple(
        tuple(int(fn.next_port(here, dest)) for dest in range(mesh.n_nodes))
        for here in range(mesh.n_routers)
    )


def route_tables(mesh: Topology, request_xy: bool = True
                 ) -> Tuple[Tuple[Tuple[int, ...], ...],
                            Tuple[Tuple[int, ...], ...]]:
    """``(request table, reply table)`` for a topology, cached on it.

    The two tables are the XY and YX tables assigned per the DOR
    orientation (``request_xy``), exactly as :func:`route_for_vn` picks
    them.  Tables are memoised on the topology object so every router of
    a network shares one pair.
    """
    cache = getattr(mesh, "_route_table_cache", None)
    if cache is None:
        cache = {}
        mesh._route_table_cache = cache
    xy = cache.get(True)
    if xy is None:
        xy = cache[True] = build_route_table(mesh, True)
    yx = cache.get(False)
    if yx is None:
        yx = cache[False] = build_route_table(mesh, False)
    return (xy, yx) if request_xy else (yx, xy)


def path_routers(mesh: Topology, vn: int, src: int, dest: int,
                 request_xy: bool = True) -> List[int]:
    """Ordered list of routers a message traverses, endpoints included.

    ``src``/``dest`` are node ids; the path runs from ``src``'s router
    to ``dest``'s router (for router == node topologies these coincide
    with the nodes themselves).
    """
    here = mesh.router_of(src)
    last = mesh.router_of(dest)
    local_base = mesh.local_base
    path = [here]
    while here != last:
        port = route_for_vn(mesh, vn, here, dest, request_xy)
        if port >= local_base:  # pragma: no cover - contract violation
            raise AssertionError(
                f"route ejects at router {here} before reaching node {dest}")
        here = mesh.neighbor(here, port)
        path.append(here)
    return path
