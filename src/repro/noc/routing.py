"""Dimension-order routing.

Requests route XY and replies route YX (section 4.1) so that a request and
its reply traverse exactly the same set of routers, letting the request
reserve the reply's circuit hop by hop.  Both are DOR and each owns a
virtual network, so the combination is deadlock-free.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.topology import Mesh, Port


def route_xy(mesh: Mesh, here: int, dest: int) -> Port:
    """Next output port under XY DOR (x first, then y)."""
    hx, hy = mesh.coords(here)
    dx, dy = mesh.coords(dest)
    if hx < dx:
        return Port.EAST
    if hx > dx:
        return Port.WEST
    if hy < dy:
        return Port.SOUTH
    if hy > dy:
        return Port.NORTH
    return Port.LOCAL


def route_yx(mesh: Mesh, here: int, dest: int) -> Port:
    """Next output port under YX DOR (y first, then x)."""
    hx, hy = mesh.coords(here)
    dx, dy = mesh.coords(dest)
    if hy < dy:
        return Port.SOUTH
    if hy > dy:
        return Port.NORTH
    if hx < dx:
        return Port.EAST
    if hx > dx:
        return Port.WEST
    return Port.LOCAL


def route_for_vn(mesh: Mesh, vn: int, here: int, dest: int,
                 request_xy: bool = True) -> Port:
    """Route by virtual network: requests and replies use opposite DOR.

    The default orientation is the paper's (requests XY, replies YX); the
    mechanism works with either assignment as long as the two VNs use
    opposite dimension orders, so a request and its reply traverse the
    same routers (section 4.2: "any deterministic routing").
    """
    if (vn == 0) == request_xy:
        return route_xy(mesh, here, dest)
    return route_yx(mesh, here, dest)


def build_route_table(mesh: Mesh, xy: bool) -> Tuple[Tuple[Port, ...], ...]:
    """Dense DOR next-hop table: ``table[here][dest] -> Port``.

    Routing is a pure function of the (static) mesh, so the whole
    function space is enumerable once at construction; the router's hot
    route-compute stage then degenerates to one indexed load.
    """
    fn = route_xy if xy else route_yx
    return tuple(
        tuple(fn(mesh, here, dest) for dest in range(mesh.n_nodes))
        for here in range(mesh.n_nodes)
    )


def route_tables(mesh: Mesh, request_xy: bool = True
                 ) -> Tuple[Tuple[Tuple[Port, ...], ...],
                            Tuple[Tuple[Port, ...], ...]]:
    """``(request table, reply table)`` for a mesh, cached on the mesh.

    The two tables are the XY and YX tables assigned per the DOR
    orientation (``request_xy``), exactly as :func:`route_for_vn` picks
    them.  Tables are memoised on the mesh object so every router of a
    network shares one pair.
    """
    cache = getattr(mesh, "_route_table_cache", None)
    if cache is None:
        cache = {}
        mesh._route_table_cache = cache
    xy = cache.get(True)
    if xy is None:
        xy = cache[True] = build_route_table(mesh, True)
    yx = cache.get(False)
    if yx is None:
        yx = cache[False] = build_route_table(mesh, False)
    return (xy, yx) if request_xy else (yx, xy)


def path_routers(mesh: Mesh, vn: int, src: int, dest: int,
                 request_xy: bool = True) -> List[int]:
    """Ordered list of routers a message traverses, endpoints included."""
    path = [src]
    here = src
    while here != dest:
        port = route_for_vn(mesh, vn, here, dest, request_xy)
        here = mesh.neighbor(here, port)
        path.append(here)
    return path
