"""Round-robin arbiters and the two-phase separable VC/switch allocators.

The baseline router (paper Table 4) uses round-robin two-phase allocators:
phase 1 arbitrates among a unit's own candidates, phase 2 arbitrates among
phase-1 winners competing for the same resource.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


class RoundRobinArbiter:
    """Classic rotating-priority arbiter over opaque candidate ids."""

    def __init__(self) -> None:
        self._last: Optional[Hashable] = None

    def pick(self, candidates: Sequence[T]) -> Optional[T]:
        """Grant one candidate, rotating priority after each grant."""
        if not candidates:
            return None
        if self._last is not None and self._last in candidates:
            start = (list(candidates).index(self._last) + 1) % len(candidates)
        elif self._last is not None:
            # Keep rotating fairness even when the previous winner is absent:
            # start from the first candidate "after" it in submission order.
            start = 0
        else:
            start = 0
        ordered = list(candidates[start:]) + list(candidates[:start])
        winner = ordered[0]
        self._last = winner
        return winner


class ArbiterPool:
    """Lazy map of resource id -> RoundRobinArbiter."""

    def __init__(self) -> None:
        self._arbiters: Dict[Hashable, RoundRobinArbiter] = {}

    def pick(self, resource: Hashable, candidates: Sequence[T]) -> Optional[T]:
        arbiter = self._arbiters.get(resource)
        if arbiter is None:
            arbiter = self._arbiters[resource] = RoundRobinArbiter()
        return arbiter.pick(candidates)


def two_phase_allocate(
    requests: Dict[Hashable, List[Hashable]],
    phase1: ArbiterPool,
    phase2: ArbiterPool,
) -> Dict[Hashable, Hashable]:
    """Generic separable allocation.

    ``requests`` maps each requester to the resources it can use.  Phase 1:
    each requester picks one resource (round-robin over its options).
    Phase 2: each resource picks one requester.  Returns
    ``{requester: resource}`` for the winners.
    """
    # Phase 1 - requester-side arbitration among acceptable resources.
    proposals: Dict[Hashable, List[Hashable]] = {}
    for requester, resources in requests.items():
        choice = phase1.pick(requester, resources)
        if choice is not None:
            proposals.setdefault(choice, []).append(requester)
    # Phase 2 - resource-side arbitration among proposers.
    grants: Dict[Hashable, Hashable] = {}
    for resource, requesters in proposals.items():
        winner = phase2.pick(resource, requesters)
        if winner is not None:
            grants[winner] = resource
    return grants
