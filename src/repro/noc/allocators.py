"""Round-robin arbiters and the two-phase separable VC/switch allocators.

The baseline router (paper Table 4) uses round-robin two-phase allocators:
phase 1 arbitrates among a unit's own candidates, phase 2 arbitrates among
phase-1 winners competing for the same resource.

Two implementations live here.  :class:`RoundRobinArbiter` and
:func:`two_phase_allocate` are the optimised hot-path versions (index
rotation, no per-arbitration list copies, single-requester bypass).
:class:`ReferenceRoundRobinArbiter` and
:func:`reference_two_phase_allocate` preserve the pre-overhaul
implementations verbatim; the reference router pipeline uses them so A/B
tests can prove the fast paths grant-for-grant identical.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Type, TypeVar

T = TypeVar("T")


class RoundRobinArbiter:
    """Classic rotating-priority arbiter over opaque candidate ids.

    Decision-identical to :class:`ReferenceRoundRobinArbiter` (the A/B
    property test in ``tests/test_hotpath_equivalence.py`` pins it), but
    rotates via ``candidates.index`` plus one integer increment instead
    of materialising two list copies per arbitration.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: Optional[Hashable] = None

    def pick(self, candidates: Sequence[T]) -> Optional[T]:
        """Grant one candidate, rotating priority after each grant."""
        n = len(candidates)
        if not n:
            return None
        last = self._last
        if last is None:
            winner = candidates[0]
        else:
            try:
                win = candidates.index(last) + 1
            except ValueError:
                # The previous winner is no longer a candidate, so there is
                # no position to rotate from: priority restarts at the first
                # candidate in submission order (the winner still becomes
                # the new rotation point, keeping future grants fair).
                winner = candidates[0]
            else:
                winner = candidates[0] if win == n else candidates[win]
        self._last = winner
        return winner

    def pick_at(self, candidates: Sequence[T]) -> int:
        """Like :meth:`pick` but return the winner's *index*.

        Callers holding a parallel payload list (the allocation stages)
        avoid a second ``index`` scan.  ``candidates`` must be non-empty.
        """
        last = self._last
        if last is None:
            win = 0
        else:
            try:
                win = candidates.index(last) + 1
            except ValueError:
                win = 0
            else:
                if win == len(candidates):
                    win = 0
        self._last = candidates[win]
        return win


class ReferenceRoundRobinArbiter:
    """Pre-overhaul arbiter, kept verbatim for A/B reference runs."""

    def __init__(self) -> None:
        self._last: Optional[Hashable] = None

    def pick(self, candidates: Sequence[T]) -> Optional[T]:
        """Grant one candidate, rotating priority after each grant."""
        if not candidates:
            return None
        if self._last is not None and self._last in candidates:
            start = (list(candidates).index(self._last) + 1) % len(candidates)
        else:
            # Previous winner absent (or no grant yet): restart priority at
            # the first candidate in submission order.
            start = 0
        ordered = list(candidates[start:]) + list(candidates[:start])
        winner = ordered[0]
        self._last = winner
        return winner


class ArbiterPool:
    """Lazy map of resource id -> arbiter."""

    __slots__ = ("_arbiters", "_factory")

    def __init__(self, factory: Type = RoundRobinArbiter) -> None:
        self._arbiters: Dict[Hashable, object] = {}
        self._factory = factory

    def pick(self, resource: Hashable, candidates: Sequence[T]) -> Optional[T]:
        arbiter = self._arbiters.get(resource)
        if arbiter is None:
            arbiter = self._arbiters[resource] = self._factory()
        return arbiter.pick(candidates)


def two_phase_allocate(
    requests: Dict[Hashable, List[Hashable]],
    phase1: ArbiterPool,
    phase2: ArbiterPool,
) -> Dict[Hashable, Hashable]:
    """Generic separable allocation.

    ``requests`` maps each requester to the resources it can use.  Phase 1:
    each requester picks one resource (round-robin over its options).
    Phase 2: each resource picks one requester.  Returns
    ``{requester: resource}`` for the winners.

    A single requester cannot lose phase 2, so that (uncontended) case
    bypasses the proposal-dict construction entirely; both arbiters still
    advance exactly as the full path would, keeping later contended
    cycles decision-identical.
    """
    if len(requests) == 1:
        (requester, resources), = requests.items()
        choice = phase1.pick(requester, resources)
        if choice is None:
            return {}
        winner = phase2.pick(choice, (requester,))
        return {winner: choice} if winner is not None else {}
    # Phase 1 - requester-side arbitration among acceptable resources.
    proposals: Dict[Hashable, List[Hashable]] = {}
    for requester, resources in requests.items():
        choice = phase1.pick(requester, resources)
        if choice is not None:
            proposals.setdefault(choice, []).append(requester)
    # Phase 2 - resource-side arbitration among proposers.
    grants: Dict[Hashable, Hashable] = {}
    for resource, requesters in proposals.items():
        winner = phase2.pick(resource, requesters)
        if winner is not None:
            grants[winner] = resource
    return grants


def reference_two_phase_allocate(
    requests: Dict[Hashable, List[Hashable]],
    phase1: ArbiterPool,
    phase2: ArbiterPool,
) -> Dict[Hashable, Hashable]:
    """Pre-overhaul allocation (no bypass), kept for A/B reference runs."""
    proposals: Dict[Hashable, List[Hashable]] = {}
    for requester, resources in requests.items():
        choice = phase1.pick(requester, resources)
        if choice is not None:
            proposals.setdefault(choice, []).append(requester)
    grants: Dict[Hashable, Hashable] = {}
    for resource, requesters in proposals.items():
        winner = phase2.pick(resource, requesters)
        if winner is not None:
            grants[winner] = resource
    return grants
