"""Per-virtual-channel state for router input and output units.

Input VCs hold the buffer and the packet's progress through the pipeline
(the paper's G/R/O/C fields); output VCs hold allocation state and the
downstream credit count (G/I/C fields).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Tuple

from repro.noc.flit import Flit


class VcStage(enum.Enum):
    """Global state (G) of an input VC."""

    IDLE = "I"
    VA = "V"  # route computed, waiting for an output VC
    ACTIVE = "A"  # output VC granted, flits moving through SA/ST


class InputVc:
    """One input virtual channel: buffer plus pipeline state."""

    __slots__ = (
        "vn",
        "index",
        "depth",
        "buffer",
        "stage",
        "route",
        "out_vc",
        "out_obj",
        "ready_cycle",
        "granted_pending",
        "scode",
        "rcode",
        "rkey",
        "va_arb",
    )

    def __init__(self, vn: int, index: int, depth: int) -> None:
        self.vn = vn
        self.index = index
        self.depth = depth
        #: (flit, arrival_cycle, credit_vc) in arrival order; ``credit_vc``
        #: is the VC whose upstream credit the flit consumed (it can differ
        #: from this VC when a fragmented circuit redirects an arrival).
        self.buffer: Deque[Tuple[Flit, int, int]] = deque()
        self.stage = VcStage.IDLE
        self.route: Optional[int] = None
        self.out_vc: Optional[int] = None
        #: The granted OutputVc object itself; set alongside ``out_vc`` so
        #: the hot SA/ST stages skip the outputs[route].vcs[vn][out_vc]
        #: triple lookup.
        self.out_obj: Optional["OutputVc"] = None
        #: First cycle at which the current pipeline stage may act.
        self.ready_cycle = 0
        #: A flit won SA and awaits switch traversal.
        self.granted_pending = False
        # Constants filled in by the owning Router (it knows the port):
        #: switch-allocation phase-1 candidate id, ``(vn << 4) | index``.
        self.scode = (vn << 4) | index
        #: VC-allocation phase-2 requester id, ``(port << 8) | scode``.
        self.rcode = self.scode
        #: ``(port, vn, index)`` ownership key written to ``allocated_to``.
        self.rkey: Tuple = (None, vn, index)
        #: Per-VC phase-1 VC-allocation arbiter (installed by the Router).
        self.va_arb = None

    def occupancy(self) -> int:
        return len(self.buffer)

    def head_flit(self) -> Optional[Flit]:
        return self.buffer[0][0] if self.buffer else None

    def head_ready(self, cycle: int) -> bool:
        """Head flit was buffered in an earlier cycle (1-cycle buffer write)."""
        return bool(self.buffer) and self.buffer[0][1] < cycle

    def reset_for_next_packet(self, cycle: int) -> None:
        """Tail left: clear per-packet state (caller restarts a queued head)."""
        self.route = None
        self.out_vc = None
        self.out_obj = None
        self.granted_pending = False
        self.stage = VcStage.IDLE


class OutputVc:
    """Downstream VC bookkeeping at an output unit."""

    __slots__ = ("vn", "index", "credits", "allocated_to", "code", "va_arb",
                 "proposals")

    def __init__(self, vn: int, index: int, credits: int) -> None:
        self.vn = vn
        self.index = index
        self.credits = credits
        #: (input_port, vn, vc_index) of the packet owning this output VC.
        self.allocated_to: Optional[Tuple[int, int, int]] = None
        #: phase-1 VC-allocation option id, ``(port << 8) | (vn << 4) | index``
        #: (the Router fills in the port bits once it knows them).
        self.code = (vn << 4) | index
        #: Per-VC phase-2 VC-allocation arbiter (installed by the Router).
        self.va_arb = None
        #: Transient phase-1 proposers this cycle (reused, cleared by VA).
        self.proposals: list = []

    @property
    def is_free(self) -> bool:
        return self.allocated_to is None
