"""Network assembly: routers, links, and network interfaces for a config."""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.noc.flit import Message
from repro.noc.interface import NetworkInterface, ReferenceNetworkInterface
from repro.noc.link import CreditLink, FlitLink
from repro.noc.router import ReferenceRouter, Router
from repro.noc.topology import build_topology
from repro.sim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SystemConfig
    from repro.sim.kernel import Simulator


class Network:
    """The full NoC of one simulated chip."""

    def __init__(self, config: "SystemConfig", stats: Optional[Stats] = None) -> None:
        # Imported here: repro.circuits depends on repro.noc's data types,
        # so the policy factory cannot be a module-level import.
        from repro.circuits.policy import make_policy

        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.topo = build_topology(config)
        #: Legacy alias - most call sites only need n_nodes/neighbor-style
        #: queries that every Topology provides.
        self.mesh = self.topo
        self.policy = make_policy(config, self.topo, self.stats)
        # ``fastpath=False`` builds the pre-overhaul reference pipeline so
        # A/B tests can pin the optimised path bit-identical to it.
        if config.noc.fastpath:
            router_cls, ni_cls = Router, NetworkInterface
        else:
            router_cls, ni_cls = ReferenceRouter, ReferenceNetworkInterface
        self.routers: List[Router] = [
            router_cls(router, self.topo, config, self.policy, self.stats)
            for router in range(self.topo.n_routers)
        ]
        self.interfaces: List[NetworkInterface] = [
            ni_cls(node, self.topo, config, self.policy, self.stats)
            for node in range(self.topo.n_nodes)
        ]
        self._wire()

    def _wire(self) -> None:
        latency = self.config.noc.link_latency
        topo = self.topo
        # Router <-> router links.
        for rid, router in enumerate(self.routers):
            for port, nbr, back in topo.neighbors(rid):
                if router.out_flit[port] is not None:
                    continue
                neighbor = self.routers[nbr]
                down = FlitLink(latency)
                up = CreditLink(latency)
                down.watcher = neighbor
                up.watcher = router
                router.out_flit[port] = down
                router.in_credit[port] = up
                neighbor.in_flit[back] = down
                neighbor.out_credit[back] = up
                rev = FlitLink(latency)
                rev_credit = CreditLink(latency)
                rev.watcher = router
                rev_credit.watcher = neighbor
                neighbor.out_flit[back] = rev
                neighbor.in_credit[back] = rev_credit
                router.in_flit[port] = rev
                router.out_credit[port] = rev_credit
        # Router <-> NI (local port) links.
        for node, ni in enumerate(self.interfaces):
            router = self.routers[topo.router_of(node)]
            local = topo.local_port(node)
            inject = FlitLink(latency)
            inject_credit = CreditLink(latency)
            inject.watcher = router
            inject_credit.watcher = ni
            ni.to_router = inject
            router.in_flit[local] = inject
            router.out_credit[local] = inject_credit
            ni.credit_in = inject_credit
            eject = FlitLink(latency)
            eject_credit = CreditLink(latency)
            eject.watcher = ni
            eject_credit.watcher = router
            router.out_flit[local] = eject
            ni.from_router = eject
            ni.credit_out = eject_credit
            router.in_credit[local] = eject_credit
        for router in self.routers:
            router.finalize_wiring()

    # ------------------------------------------------------------------
    def interface(self, node: int) -> NetworkInterface:
        return self.interfaces[node]

    def set_deliver(self, node: int, callback: Callable[[Message, int], None]) -> None:
        self.interfaces[node].deliver = callback

    def inject(self, msg: Message, cycle: int) -> None:
        """Convenience injection entry point (used by traffic generators)."""
        self.interfaces[msg.src].enqueue(msg, cycle)

    def tick(self, cycle: int) -> None:
        """Advance every router, then every NI, by one cycle.

        Kept for manual drivers (traffic generators, unit tests); systems
        built on a :class:`~repro.sim.kernel.Simulator` should call
        :meth:`register` instead so each router/NI can sleep individually.
        """
        for router in self.routers:
            router.tick(cycle)
        for ni in self.interfaces:
            ni.tick(cycle)

    def register(self, sim: "Simulator", nodes=None) -> None:
        """Register each router and NI with ``sim`` as its own component.

        Preserves the exact intra-cycle order of :meth:`tick` (all routers,
        then all NIs) while letting the activity-driven kernel skip the
        idle ones.

        ``nodes`` (a set of node ids, or None for all) restricts
        registration to a shard's local routers/NIs: the sharded engine
        builds the full network in every worker for deterministic
        construction, but only the local slice may ever tick.  The
        relative order among registered components is unchanged, so a
        shard's intra-cycle schedule is a subsequence of the
        single-process one.
        """
        routers = (None if nodes is None
                   else {self.topo.router_of(n) for n in nodes})
        for router in self.routers:
            if routers is None or router.node in routers:
                sim.add(router)
        for ni in self.interfaces:
            if nodes is None or ni.node in nodes:
                sim.add(ni)

    def in_flight(self) -> int:
        """Flits/messages anywhere in the network or NI queues."""
        total = 0
        for router in self.routers:
            total += router.buffered_flits()
            total += len(router._st_pending)
            for port in router.ports:
                link = router.out_flit[port]
                if link is not None:
                    total += link.in_flight()
                total += len(router.inputs[port].wait_queue)
        for ni in self.interfaces:
            total += ni.pending_work()
        return total

    def flit_links(self):
        """Yield ``(label, FlitLink)`` for every flit channel exactly once.

        Covers router-to-router links, ejection links (a router's LOCAL
        output) and NI injection links.
        """
        for router in self.routers:
            for port in router.ports:
                link = router.out_flit[port]
                if link is not None:
                    yield (f"router{router.node}.out."
                           f"{self.topo.port_name(port)}", link)
        for ni in self.interfaces:
            if ni.to_router is not None:
                yield f"ni{ni.node}.inject", ni.to_router

    def credit_links(self):
        """Yield ``(label, CreditLink)`` for every credit channel exactly once.

        A router's ``out_credit`` map covers the upstream credit channels it
        drives (including the LOCAL one toward its NI); the NI ``credit_out``
        link (toward its router, used for undo notifications) is the only
        channel not owned by a router.
        """
        for router in self.routers:
            for port in router.ports:
                link = router.out_credit[port]
                if link is not None:
                    yield (f"router{router.node}.credit."
                           f"{self.topo.port_name(port)}", link)
        for ni in self.interfaces:
            if ni.credit_out is not None:
                yield f"ni{ni.node}.eject_credit", ni.credit_out

    def buffered_flits(self) -> int:
        """Flits sitting in router input buffers chip-wide (occupancy)."""
        return sum(router.buffered_flits() for router in self.routers)

    def buffered_flits_by_vn(self) -> List[int]:
        """Router input-buffer occupancy split by virtual network."""
        totals = [0] * len(self.config.noc.vcs_per_vn)
        for router in self.routers:
            for _port, unit in router._input_units:
                for vn, row in enumerate(unit.vcs):
                    totals[vn] += sum(len(vc.buffer) for vc in row)
        return totals

    def circuit_entries(self) -> int:
        """Raw circuit-table occupancy (may include expired timed entries)."""
        return sum(router.circuit_entries() for router in self.routers)

    def live_circuit_entries(self, cycle: int) -> int:
        """Circuit entries still live at ``cycle`` (expired ones purged)."""
        total = 0
        for router in self.routers:
            for _port, unit in router._input_units:
                if unit.circuit_table is not None:
                    total += unit.circuit_table.live_count(cycle)
        return total
