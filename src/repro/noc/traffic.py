"""Synthetic request-reply traffic driver for NoC-only studies.

Drives a :class:`~repro.noc.network.Network` directly - no cores, no
coherence - with a Poisson-like request stream whose replies mimic the
protocol's dominant pattern (1-flit request -> 5-flit reply after a fixed
turnaround).  Used for controlled load sweeps: the paper argues circuits
stop being buildable "under very adverse conditions, with heavy traffic
loads" and that timed circuits raise that congestion threshold; this
driver lets an experiment dial the injection rate directly.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Tuple

from repro.noc.flit import Message
from repro.noc.network import Network
from repro.sim.config import SystemConfig


class RequestReplyTraffic:
    """Uniform-random request-reply load generator on a raw network."""

    def __init__(
        self,
        config: SystemConfig,
        requests_per_node_per_kcycle: float,
        turnaround: int = 7,
        reply_flits: int = 5,
        seed: int = 1,
    ) -> None:
        self.config = config
        self.net = Network(config)
        self.rate = requests_per_node_per_kcycle / 1000.0
        self.turnaround = turnaround
        self.reply_flits = reply_flits
        self.rng = Random(seed)
        self.cycle = 0
        self.requests_sent = 0
        self.replies_received = 0
        self.reply_latencies: List[int] = []
        self._timers: List[Tuple[int, Message]] = []
        self._next_addr = 0x40
        for node in range(self.net.mesh.n_nodes):
            self.net.set_deliver(node, self._deliver)

    # ------------------------------------------------------------------
    def _deliver(self, msg: Message, cycle: int) -> None:
        if msg.vn == 0:
            reply = Message(msg.dest, msg.src, 1, self.reply_flits, "L2_REPLY")
            reply.circuit_eligible = True
            reply.circuit_key = msg.circuit_key
            self._timers.append((cycle + self.turnaround, reply))
        else:
            self.replies_received += 1
            self.reply_latencies.append(msg.network_latency)

    def _maybe_inject(self) -> None:
        n = self.net.mesh.n_nodes
        for src in range(n):
            if self.rng.random() >= self.rate:
                continue
            dest = self.rng.randrange(n - 1)
            if dest >= src:
                dest += 1
            msg = Message(src, dest, 0, 1, "REQUEST")
            msg.builds_circuit = True
            self._next_addr += 0x40
            msg.circuit_key = (src, self._next_addr, msg.uid)
            msg.reply_flits = self.reply_flits
            msg.expected_turnaround = self.turnaround
            self.net.inject(msg, self.cycle)
            self.requests_sent += 1

    def run(self, cycles: int) -> None:
        """Inject at the configured rate for ``cycles`` cycles."""
        for _ in range(cycles):
            self.cycle += 1
            due = [t for t in self._timers if t[0] <= self.cycle]
            for item in due:
                self._timers.remove(item)
                self.net.inject(item[1], self.cycle)
            self._maybe_inject()
            self.net.tick(self.cycle)

    def drain(self, max_cycles: int = 100_000) -> None:
        """Stop injecting and let the network empty."""
        for _ in range(max_cycles):
            if not self._timers and self.net.in_flight() == 0:
                return
            self.cycle += 1
            due = [t for t in self._timers if t[0] <= self.cycle]
            for item in due:
                self._timers.remove(item)
                self.net.inject(item[1], self.cycle)
            self.net.tick(self.cycle)
        raise RuntimeError("traffic driver failed to drain")

    # ------------------------------------------------------------------
    def circuit_success_rate(self) -> Optional[float]:
        """Fraction of eligible replies that rode their circuit."""
        s = self.net.stats
        total = s.counter("circuit.replies_total")
        if not total:
            return None
        return s.counter("circuit.outcome.on_circuit") / total

    def mean_reply_latency(self) -> float:
        if not self.reply_latencies:
            return 0.0
        return sum(self.reply_latencies) / len(self.reply_latencies)

    def offered_load_flits_per_kcycle_node(self) -> float:
        """Measured injected flits per 1000 cycles per node."""
        s = self.net.stats
        n = self.net.mesh.n_nodes
        if not self.cycle:
            return 0.0
        return 1000.0 * s.counter("noc.flits_injected") / self.cycle / n
