"""Synthetic request-reply traffic driver for NoC-only studies.

Drives a :class:`~repro.noc.network.Network` directly - no cores, no
coherence - with a memoryless request stream whose replies mimic the
protocol's dominant pattern (1-flit request -> 5-flit reply after a fixed
turnaround).  Used for controlled load sweeps: the paper argues circuits
stop being buildable "under very adverse conditions, with heavy traffic
loads" and that timed circuits raise that congestion threshold; this
driver lets an experiment dial the injection rate directly.

The driver and the network share an activity-driven
:class:`~repro.sim.kernel.Simulator` (``self.sim``).  Each node's
injection process is the same Bernoulli(p)-per-cycle stream the original
cycle-driven loop produced, but sampled by its geometric inter-arrival
gaps (inverse-transform on one RNG draw per injection) instead of one
draw per node per cycle.  That makes the generator itself a sleeping
component between injections, so lightly loaded sweeps - the regime the
paper's figures are drawn from - advance at event speed: whole quiet
gaps are fast-forwarded by the kernel instead of being simulated cycle
by cycle.  The kernel starts at cycle 1 so cycle labels match the old
manual ``net.tick(cycle)`` loop.
"""

from __future__ import annotations

import heapq
import math
from random import Random
from typing import List, Optional, Tuple

from repro.noc.flit import Message
from repro.noc.network import Network
from repro.sim.config import SystemConfig
from repro.sim.kernel import DeadlockError, Simulator


class RequestReplyTraffic:
    """Uniform-random request-reply load generator on a raw network."""

    def __init__(
        self,
        config: SystemConfig,
        requests_per_node_per_kcycle: float,
        turnaround: int = 7,
        reply_flits: int = 5,
        seed: int = 1,
    ) -> None:
        self.config = config
        self.net = Network(config)
        self.rate = requests_per_node_per_kcycle / 1000.0
        self.turnaround = turnaround
        self.reply_flits = reply_flits
        self.rng = Random(seed)
        self.requests_sent = 0
        self.replies_received = 0
        self.reply_latencies: List[int] = []
        self._timers: List[Tuple[int, Message]] = []
        self._next_addr = 0x40
        self._injecting = False
        #: ``log(1 - p)`` for the geometric gap draw (None when p is 0/1).
        self._log_q = (
            math.log1p(-self.rate) if 0.0 < self.rate < 1.0 else None
        )
        #: Per-node next-injection schedule: (cycle, node) min-heap.
        self._inj_heap: List[Tuple[int, int]] = []
        if self.rate > 0.0:
            for node in range(self.net.mesh.n_nodes):
                heapq.heappush(self._inj_heap, (self._draw_gap(), node))
        #: Installed by Simulator.add; pokes the kernel when a reply timer
        #: is armed while the generator sleeps.
        self.kernel_wake = None
        self.sim = Simulator()
        # The generator ticks before any router/NI, exactly where the old
        # manual loop injected; cycle labels start at 1 as that loop did.
        self.sim.add(self)
        self.net.register(self.sim)
        self.sim.cycle = 1
        for node in range(self.net.mesh.n_nodes):
            self.net.set_deliver(node, self._deliver)

    @property
    def cycle(self) -> int:
        """Cycles executed so far (matches the old manual-loop counter)."""
        return self.sim.cycle - 1

    # ------------------------------------------------------------------
    def _draw_gap(self) -> int:
        """Cycles until a node's next injection, geometric with mean 1/p."""
        if self._log_q is None:
            return 1  # p >= 1: inject every cycle
        u = self.rng.random()
        while u <= 0.0:  # pragma: no cover - random() returning exactly 0
            u = self.rng.random()
        return int(math.log(u) / self._log_q) + 1

    def _deliver(self, msg: Message, cycle: int) -> None:
        if msg.vn == 0:
            reply = Message(msg.dest, msg.src, 1, self.reply_flits, "L2_REPLY")
            reply.circuit_eligible = True
            reply.circuit_key = msg.circuit_key
            due = cycle + self.turnaround
            self._timers.append((due, reply))
            if self.kernel_wake is not None:
                self.kernel_wake(due)
        else:
            self.replies_received += 1
            self.reply_latencies.append(msg.network_latency)

    def _inject_from(self, src: int, cycle: int) -> None:
        n = self.net.mesh.n_nodes
        dest = self.rng.randrange(n - 1)
        if dest >= src:
            dest += 1
        msg = Message(src, dest, 0, 1, "REQUEST")
        msg.builds_circuit = True
        self._next_addr += 0x40
        msg.circuit_key = (src, self._next_addr, msg.uid)
        msg.reply_flits = self.reply_flits
        msg.expected_turnaround = self.turnaround
        self.net.inject(msg, cycle)
        self.requests_sent += 1

    # ------------------------------------------------------------------
    # Clocked component protocol (the generator itself).
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        timers = self._timers
        if timers:
            due = [t for t in timers if t[0] <= cycle]
            for item in due:
                timers.remove(item)
                self.net.inject(item[1], cycle)
        if self._injecting:
            heap = self._inj_heap
            while heap and heap[0][0] <= cycle:
                _, src = heapq.heappop(heap)
                self._inject_from(src, cycle)
                heapq.heappush(heap, (cycle + self._draw_gap(), src))

    def next_wake(self, cycle: int) -> Optional[int]:
        due: Optional[int] = None
        if self._injecting and self._inj_heap:
            due = self._inj_heap[0][0]
        if self._timers:
            t = min(item[0] for item in self._timers)
            if due is None or t < due:
                due = t
        return due

    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Inject at the configured rate for ``cycles`` cycles."""
        self._injecting = True
        if self.kernel_wake is not None:
            self.kernel_wake()  # re-evaluate the schedule from this cycle
        try:
            self.sim.run(cycles)
        finally:
            self._injecting = False
            self.net.stats.flush()

    def drain(self, max_cycles: int = 100_000) -> None:
        """Stop injecting and let the network empty."""
        net = self.net

        def done() -> bool:
            return not self._timers and net.in_flight() == 0

        try:
            # check_interval=1 keeps the stop cycle exact, as the manual
            # loop's per-cycle quiescence check did.
            self.sim.run_until(done, max_cycles, check_interval=1)
        except DeadlockError as exc:
            raise RuntimeError("traffic driver failed to drain") from exc
        finally:
            net.stats.flush()

    # ------------------------------------------------------------------
    def circuit_success_rate(self) -> Optional[float]:
        """Fraction of eligible replies that rode their circuit."""
        s = self.net.stats
        total = s.counter("circuit.replies_total")
        if not total:
            return None
        return s.counter("circuit.outcome.on_circuit") / total

    def mean_reply_latency(self) -> float:
        if not self.reply_latencies:
            return 0.0
        return sum(self.reply_latencies) / len(self.reply_latencies)

    def offered_load_flits_per_kcycle_node(self) -> float:
        """Measured injected flits per 1000 cycles per node."""
        s = self.net.stats
        n = self.net.mesh.n_nodes
        if not self.cycle:
            return 0.0
        return 1000.0 * s.counter("noc.flits_injected") / self.cycle / n
