"""Deprecated: these helpers moved to :mod:`repro.telemetry`.

This module now only re-exports the interactive probes from
:mod:`repro.telemetry.probes` behind :class:`DeprecationWarning` shims so
pre-telemetry callers keep working.  New code should use the unified
observation API::

    from repro.telemetry import attach_tracer, sleep_report, ...
"""

from __future__ import annotations

import warnings

from repro.telemetry import probes as _probes
from repro.telemetry.probes import TraceEvent  # noqa: F401  (re-export)

__all__ = [
    "TraceEvent",
    "attach_tracer",
    "detach_tracer",
    "utilization_heatmap",
    "reset_utilization",
    "sleep_report",
    "LoadSampler",
]


def _warn(name: str) -> None:
    warnings.warn(
        f"repro.noc.debug.{name} moved to repro.telemetry.{name}; "
        f"the repro.noc.debug shim will be removed in a future release",
        DeprecationWarning,
        stacklevel=3,
    )


def attach_tracer(net, callback=None):
    _warn("attach_tracer")
    return _probes.attach_tracer(net, callback)


def detach_tracer(net):
    _warn("detach_tracer")
    return _probes.detach_tracer(net)


def utilization_heatmap(net, width: int = 6):
    _warn("utilization_heatmap")
    return _probes.utilization_heatmap(net, width)


def reset_utilization(net):
    _warn("reset_utilization")
    return _probes.reset_utilization(net)


def sleep_report(sim):
    _warn("sleep_report")
    return _probes.sleep_report(sim)


class LoadSampler(_probes.LoadSampler):
    """Deprecated alias of :class:`repro.telemetry.LoadSampler`."""

    def __init__(self, net, interval: int = 100) -> None:
        _warn("LoadSampler")
        super().__init__(net, interval)
