"""Pipelined links for flits and credits.

A flit sent during a router's switch-traversal cycle ``c`` spends
``latency`` cycles on the wire and is available to the receiver at the
start of cycle ``c + 1 + latency`` (so a 4-stage router plus a 1-cycle link
yields the paper's 5 cycles/hop, and a circuit hop yields 2 cycles/hop).

Credits flow on a dedicated reverse channel with the same timing.  Per
section 4.4, credits may also carry "undo circuit" notifications, either
piggybacked on a buffer credit or as a dedicated credit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, Tuple

from repro.noc.flit import CircuitKey, Flit


class FlitLink:
    """One-directional flit channel between two routers (or router/NI).

    ``watcher`` (the receiving router/NI) is poked on every send so idle
    receivers can skip their tick entirely - a pure simulation-speed
    optimisation with no architectural effect.  When the watcher is
    registered with an activity-driven :class:`~repro.sim.kernel.Simulator`
    its ``kernel_wake`` is also poked with the arrival cycle, so a
    sleeping receiver is rescheduled exactly when the flit lands.
    """

    __slots__ = ("latency", "_queue", "watcher")

    def __init__(self, latency: int = 1) -> None:
        self.latency = latency
        self._queue: Deque[Tuple[int, Flit]] = deque()
        self.watcher = None

    def send(self, flit: Flit, cycle: int) -> None:
        """Put ``flit`` on the wire during ``cycle`` (its ST cycle)."""
        due = cycle + 1 + self.latency
        self._queue.append((due, flit))
        watcher = self.watcher
        if watcher is not None:
            # Watchers are always routers/NIs, which define kernel_wake
            # (None until registered with an activity-driven kernel).
            watcher.incoming += 1
            wake = watcher.kernel_wake
            if wake is not None:
                wake(due)

    def arrivals(self, cycle: int) -> Iterator[Flit]:
        """Yield flits available to the receiver at ``cycle``."""
        queue = self._queue
        watcher = self.watcher
        while queue and queue[0][0] <= cycle:
            if watcher is not None:
                watcher.incoming -= 1
            yield queue.popleft()[1]

    def in_flight(self) -> int:
        return len(self._queue)


class Credit:
    """A credit, optionally carrying circuit-undo information."""

    __slots__ = ("vn", "vc", "undo_key")

    def __init__(
        self,
        vn: Optional[int] = None,
        vc: Optional[int] = None,
        undo_key: Optional[CircuitKey] = None,
    ) -> None:
        self.vn = vn
        self.vc = vc
        self.undo_key = undo_key

    @property
    def is_buffer_credit(self) -> bool:
        return self.vn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Credit(vn={self.vn}, vc={self.vc}, undo={self.undo_key})"


class CreditLink:
    """Reverse channel returning credits (and undo notices) upstream."""

    __slots__ = ("latency", "_queue", "watcher", "_cache")

    def __init__(self, latency: int = 1) -> None:
        self.latency = latency
        self._queue: Deque[Tuple[int, Credit]] = deque()
        self.watcher = None
        #: Buffer credits are immutable (vn, vc) pairs, so each distinct
        #: pair is built once and the same object is resent thereafter.
        self._cache: dict = {}

    def send_credit(self, vn: int, vc: int, cycle: int) -> None:
        """Return one buffer credit.

        If an undo notice is departing in the same cycle it is piggybacked
        onto this credit (one wire transaction instead of two); the merge is
        purely an energy optimisation, so we model it in the energy counters
        rather than in the channel itself.
        """
        key = (vn << 8) | vc
        credit = self._cache.get(key)
        if credit is None:
            credit = self._cache[key] = Credit(vn, vc)
        self._push(credit, cycle)

    def send_undo(self, key: CircuitKey, cycle: int) -> None:
        """Send an undo notice for ``key`` (dedicated or piggybacked credit)."""
        self._push(Credit(undo_key=key), cycle)

    def _push(self, credit: Credit, cycle: int) -> None:
        due = cycle + 1 + self.latency
        self._queue.append((due, credit))
        watcher = self.watcher
        if watcher is not None:
            watcher.incoming += 1
            wake = watcher.kernel_wake
            if wake is not None:
                wake(due)

    def arrivals(self, cycle: int) -> Iterator[Credit]:
        queue = self._queue
        watcher = self.watcher
        while queue and queue[0][0] <= cycle:
            if watcher is not None:
                watcher.incoming -= 1
            yield queue.popleft()[1]

    def in_flight(self) -> int:
        return len(self._queue)
