"""2-D mesh topology and port naming.

Node ``i`` sits at ``(x, y) = (i % side, i // side)``.  Port directions are
relative to the router: EAST increases x, SOUTH increases y.  Every router
has a LOCAL port connecting its tile's network interface.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Tuple


class Port(enum.IntEnum):
    NORTH = 0
    SOUTH = 1
    EAST = 2
    WEST = 3
    LOCAL = 4


LOCAL = Port.LOCAL

_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.LOCAL: Port.LOCAL,
}

_DELTAS: Dict[Port, Tuple[int, int]] = {
    Port.NORTH: (0, -1),
    Port.SOUTH: (0, 1),
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
}


def opposite(port: Port) -> Port:
    """The port a neighbouring router uses for the reverse direction."""
    return _OPPOSITE[port]


class Mesh:
    """Square 2-D mesh of ``side * side`` nodes."""

    def __init__(self, side: int) -> None:
        if side < 1:
            raise ValueError("mesh side must be >= 1")
        self.side = side
        self.n_nodes = side * side

    def coords(self, node: int) -> Tuple[int, int]:
        return node % self.side, node // self.side

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"({x}, {y}) outside {self.side}x{self.side} mesh")
        return y * self.side + x

    def neighbor(self, node: int, port: Port) -> int:
        """Node reached by leaving ``node`` through ``port`` (not LOCAL)."""
        dx, dy = _DELTAS[port]
        x, y = self.coords(node)
        return self.node_at(x + dx, y + dy)

    def has_neighbor(self, node: int, port: Port) -> bool:
        if port is Port.LOCAL:
            return False
        dx, dy = _DELTAS[port]
        x, y = self.coords(node)
        return 0 <= x + dx < self.side and 0 <= y + dy < self.side

    def router_ports(self, node: int) -> List[Port]:
        """All ports of ``node``'s router, LOCAL included."""
        ports = [p for p in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)
                 if self.has_neighbor(node, p)]
        ports.append(Port.LOCAL)
        return ports

    def distance(self, a: int, b: int) -> int:
        """Manhattan hop distance between two nodes."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def edge_nodes(self) -> Iterator[int]:
        """Nodes on the perimeter of the mesh (memory controller sites)."""
        for node in range(self.n_nodes):
            x, y = self.coords(node)
            if x in (0, self.side - 1) or y in (0, self.side - 1):
                yield node


def memory_controller_nodes(mesh: Mesh, count: int) -> List[int]:
    """Place ``count`` memory controllers spread along the mesh edges.

    The paper distributes 4 controllers on the chip edges for both 16- and
    64-node chips; we pick the midpoints of the four sides (falling back to
    evenly spaced perimeter nodes for other counts).
    """
    side = mesh.side
    mid = side // 2
    preferred = [
        mesh.node_at(mid, 0),  # top edge
        mesh.node_at(0, mid),  # left edge
        mesh.node_at(side - 1, mid),  # right edge
        mesh.node_at(mid, side - 1),  # bottom edge
    ]
    if count <= 4:
        picks: List[int] = []
        for node in preferred:
            if node not in picks:
                picks.append(node)
            if len(picks) == count:
                return picks
    perimeter = list(dict.fromkeys(list(mesh.edge_nodes())))
    step = max(1, len(perimeter) // count)
    picks = [perimeter[(i * step) % len(perimeter)] for i in range(count)]
    return list(dict.fromkeys(picks))[:count]
