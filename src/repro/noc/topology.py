"""Pluggable network topologies and port naming.

The paper's circuit mechanism only needs *deterministic routing where a
request and its reply traverse the same routers* (section 4.2), so the
substrate is not tied to one geometry.  :class:`Topology` is the protocol
every topology implements: node/router maps, per-router port lists,
``neighbors()`` adjacency, and coordinate/embedding hints used by the
figures, the shard partitioner, and memory-controller placement.

Three topologies are registered:

* :class:`Mesh` - the paper's square 2-D mesh (router == node).  Node
  ``i`` sits at ``(x, y) = (i % side, i // side)``; EAST increases x,
  SOUTH increases y.
* :class:`Torus` - the mesh plus wraparound links in both dimensions.
  No datelines are needed: the request/reply VN split already separates
  the two dimension-order networks (see ``docs/architecture.md`` §14).
* :class:`CMesh` - a concentrated mesh with ``CONCENTRATION`` cores per
  router, which makes router radix variable (4 network ports + 4 local
  ports) and node id != router id.

Port convention: network ports are the integers ``0..local_base-1`` and
local (NI) ports are ``local_base..max_radix-1``.  The classic 5-entry
:class:`Port` enum survives as the mesh/torus port set (values 0-4), so
all mesh port arithmetic - claim bitmasks ``1 << port``, arbiter codes
``port << 8``, dense list indexing - is unchanged and bit-identical.
"""

from __future__ import annotations

import enum
import math
import os
from typing import Dict, Iterator, List, Tuple


class Port(enum.IntEnum):
    NORTH = 0
    SOUTH = 1
    EAST = 2
    WEST = 3
    LOCAL = 4


LOCAL = Port.LOCAL

_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.LOCAL: Port.LOCAL,
}

_DELTAS: Dict[Port, Tuple[int, int]] = {
    Port.NORTH: (0, -1),
    Port.SOUTH: (0, 1),
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
}


def opposite(port: Port) -> Port:
    """The port a neighbouring router uses for the reverse direction."""
    return _OPPOSITE[port]


class ConfigError(ValueError):
    """A configuration value (config field or REPRO_* variable) is invalid."""


class Topology:
    """Protocol + shared machinery for all registered topologies.

    Subclasses provide the geometry (``coords``/``router_at``/``neighbor``
    and the node<->router maps); the base class derives everything the
    rest of the stack consumes from those: adjacency lists, port names,
    link counts, diameter, and the edge-embedding used for shard bands
    and memory-controller placement.
    """

    #: Registry name (``config.noc.topology`` value).
    name = "?"
    #: Whether grid axes wrap around (drives DOR direction choice).
    wraps = False

    # Subclasses set in __init__: n_nodes, n_routers, local_base,
    # max_radix, grid_shape.
    n_nodes: int
    n_routers: int
    #: First local (NI) port id; ports below it are network ports.
    local_base: int
    #: Dense per-router list size (max ports of any router).
    max_radix: int
    #: (width, height) of the router grid embedding.
    grid_shape: Tuple[int, int]

    # -- node <-> router embedding --------------------------------------
    def router_of(self, node: int) -> int:
        """Router a node's network interface attaches to."""
        raise NotImplementedError

    def local_port(self, node: int) -> int:
        """The router port ``node``'s NI is wired to (>= local_base)."""
        raise NotImplementedError

    def nodes_of(self, router: int) -> List[int]:
        """Nodes attached to ``router``, in local-port order."""
        raise NotImplementedError

    # -- grid hints ------------------------------------------------------
    def coords(self, router: int) -> Tuple[int, int]:
        """(x, y) of ``router`` in the grid embedding."""
        raise NotImplementedError

    def router_at(self, x: int, y: int) -> int:
        """Router at grid position (x, y)."""
        raise NotImplementedError

    # -- ports -----------------------------------------------------------
    def port_name(self, port: int) -> str:
        """Human-readable port label (stable: used in stat/link keys)."""
        return Port(port).name

    def opposite(self, port: int) -> int:
        """Port the neighbouring router uses for the reverse direction."""
        if port < self.local_base:
            return _OPPOSITE[Port(port)]
        return port

    def router_ports(self, router: int) -> List[int]:
        """All ports of ``router``, network ports first, then local."""
        raise NotImplementedError

    def neighbor(self, router: int, port: int) -> int:
        """Router reached by leaving ``router`` through network ``port``."""
        raise NotImplementedError

    def has_neighbor(self, router: int, port: int) -> bool:
        raise NotImplementedError

    def neighbors(self, router: int) -> List[Tuple[int, int, int]]:
        """``(port, neighbor_router, opposite_port)`` for the network
        ports of ``router``, in port order."""
        return [
            (port, self.neighbor(router, port), self.opposite(port))
            for port in self.router_ports(router)
            if port < self.local_base
        ]

    # -- metrics and embeddings ------------------------------------------
    def distance(self, a: int, b: int) -> int:
        """Router hops between the routers of nodes ``a`` and ``b``."""
        return self.router_distance(self.router_of(a), b)

    def router_distance(self, router: int, node: int) -> int:
        """Router hops from ``router`` to ``node``'s router."""
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        """Maximum router-to-router hop distance."""
        raise NotImplementedError

    @property
    def n_links(self) -> int:
        """Directed link count: router-router links plus the two NI links
        (inject/eject) of every node.  Drives the static-energy model."""
        total = 2 * self.n_nodes
        for router in range(self.n_routers):
            total += len(self.neighbors(router))
        return total

    def edge_routers(self) -> Iterator[int]:
        """Routers on the perimeter of the grid embedding (MC sites).

        A torus has no physical edge; the perimeter of its embedding is
        still the natural place for die-edge memory controllers.
        """
        width, height = self.grid_shape
        for router in range(self.n_routers):
            x, y = self.coords(router)
            if x in (0, width - 1) or y in (0, height - 1):
                yield router

    def central_router(self) -> int:
        """A router near the middle of the embedding (fault targeting)."""
        width, height = self.grid_shape
        return self.router_at(width // 2, height // 2)

    def memory_controller_sites(self, count: int) -> List[int]:
        """Place ``count`` memory controllers spread along the grid edges.

        The paper distributes 4 controllers on the chip edges for both
        16- and 64-node chips; we pick the midpoints of the four sides
        (falling back to evenly spaced perimeter routers for other
        counts).  Returns *node* ids: each picked router contributes its
        first local node.  For router == node topologies this reproduces
        the historical square-mesh placement byte for byte.
        """
        width, height = self.grid_shape
        mid_x, mid_y = width // 2, height // 2
        preferred = [
            self.router_at(mid_x, 0),  # top edge
            self.router_at(0, mid_y),  # left edge
            self.router_at(width - 1, mid_y),  # right edge
            self.router_at(mid_x, height - 1),  # bottom edge
        ]
        picks: List[int] = []
        if count <= 4:
            for router in preferred:
                if router not in picks:
                    picks.append(router)
                if len(picks) == count:
                    return [self.nodes_of(r)[0] for r in picks]
        perimeter = list(dict.fromkeys(self.edge_routers()))
        step = max(1, len(perimeter) // count)
        picks = [perimeter[(i * step) % len(perimeter)] for i in range(count)]
        return [self.nodes_of(r)[0]
                for r in list(dict.fromkeys(picks))[:count]]


class Mesh(Topology):
    """Square 2-D mesh of ``side * side`` nodes (router == node)."""

    name = "mesh"

    def __init__(self, side: int) -> None:
        if side < 1:
            raise ValueError("mesh side must be >= 1")
        self.side = side
        self.n_nodes = side * side
        self.n_routers = self.n_nodes
        self.local_base = int(Port.LOCAL)
        self.max_radix = len(Port)
        self.grid_shape = (side, side)

    # -- node <-> router (identity) --------------------------------------
    def router_of(self, node: int) -> int:
        return node

    def local_port(self, node: int) -> int:
        return Port.LOCAL

    def nodes_of(self, router: int) -> List[int]:
        return [router]

    # -- grid -------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        return node % self.side, node // self.side

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"({x}, {y}) outside {self.side}x{self.side} mesh")
        return y * self.side + x

    def router_at(self, x: int, y: int) -> int:
        return self.node_at(x, y)

    # -- ports -------------------------------------------------------------
    def neighbor(self, node: int, port: Port) -> int:
        """Node reached by leaving ``node`` through ``port`` (not LOCAL)."""
        dx, dy = _DELTAS[Port(port)]
        x, y = self.coords(node)
        return self.node_at(x + dx, y + dy)

    def has_neighbor(self, node: int, port: Port) -> bool:
        if port >= self.local_base:
            return False
        dx, dy = _DELTAS[Port(port)]
        x, y = self.coords(node)
        return 0 <= x + dx < self.side and 0 <= y + dy < self.side

    def router_ports(self, node: int) -> List[Port]:
        """All ports of ``node``'s router, LOCAL included."""
        ports = [p for p in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)
                 if self.has_neighbor(node, p)]
        ports.append(Port.LOCAL)
        return ports

    # -- metrics -----------------------------------------------------------
    def distance(self, a: int, b: int) -> int:
        """Manhattan hop distance between two nodes."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def router_distance(self, router: int, node: int) -> int:
        return self.distance(router, node)

    @property
    def diameter(self) -> int:
        return 2 * (self.side - 1)

    def edge_nodes(self) -> Iterator[int]:
        """Nodes on the perimeter of the mesh (memory controller sites)."""
        return self.edge_routers()


class Torus(Mesh):
    """Square 2-D torus: the mesh plus wraparound links per dimension.

    Every router has all four network ports.  Deadlock freedom needs no
    datelines here: requests and replies each own a virtual network and
    a dimension order, and within one VN the circuit mechanism never
    blocks a packet on another packet's wrap-around credit (the paper's
    request/reply split is the usual two-network argument; the detailed
    deadlock discussion lives in docs/architecture.md §14).
    """

    name = "torus"
    wraps = True

    def neighbor(self, node: int, port: Port) -> int:
        dx, dy = _DELTAS[Port(port)]
        x, y = self.coords(node)
        return ((y + dy) % self.side) * self.side + (x + dx) % self.side

    def has_neighbor(self, node: int, port: Port) -> bool:
        return port < self.local_base

    def router_ports(self, node: int) -> List[Port]:
        return [Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST, Port.LOCAL]

    def distance(self, a: int, b: int) -> int:
        """Wraparound hop distance (per-dimension shortest way round)."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.side - dx) + min(dy, self.side - dy)

    @property
    def diameter(self) -> int:
        return 2 * (self.side // 2)


#: Cores per CMesh router (the concentration factor c).
CONCENTRATION = 4


class CMesh(Topology):
    """Concentrated mesh: ``CONCENTRATION`` cores share each router.

    Routers form a ``side x side`` grid routed exactly like the mesh;
    each router has the four network ports plus ``CONCENTRATION`` local
    ports (``LOCAL0..LOCAL3``), so the radix is variable per router and
    node ids are distinct from router ids: node ``n`` attaches to router
    ``n // c`` through local port ``local_base + n % c``.
    """

    name = "cmesh"

    def __init__(self, side: int, concentration: int = CONCENTRATION) -> None:
        if side < 1:
            raise ValueError("cmesh side must be >= 1")
        if concentration < 1:
            raise ValueError("cmesh concentration must be >= 1")
        self.side = side
        self.concentration = concentration
        self.n_routers = side * side
        self.n_nodes = self.n_routers * concentration
        self.local_base = 4
        self.max_radix = 4 + concentration
        self.grid_shape = (side, side)

    # -- node <-> router ---------------------------------------------------
    def router_of(self, node: int) -> int:
        return node // self.concentration

    def local_port(self, node: int) -> int:
        return self.local_base + node % self.concentration

    def nodes_of(self, router: int) -> List[int]:
        base = router * self.concentration
        return list(range(base, base + self.concentration))

    # -- grid --------------------------------------------------------------
    def coords(self, router: int) -> Tuple[int, int]:
        return router % self.side, router // self.side

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(
                f"({x}, {y}) outside {self.side}x{self.side} cmesh")
        return y * self.side + x

    # -- ports -------------------------------------------------------------
    def port_name(self, port: int) -> str:
        if port < self.local_base:
            return Port(port).name
        return f"LOCAL{port - self.local_base}"

    def neighbor(self, router: int, port: int) -> int:
        dx, dy = _DELTAS[Port(port)]
        x, y = self.coords(router)
        return self.router_at(x + dx, y + dy)

    def has_neighbor(self, router: int, port: int) -> bool:
        if port >= self.local_base:
            return False
        dx, dy = _DELTAS[Port(port)]
        x, y = self.coords(router)
        return 0 <= x + dx < self.side and 0 <= y + dy < self.side

    def router_ports(self, router: int) -> List[int]:
        ports = [int(p) for p in (Port.NORTH, Port.SOUTH, Port.EAST,
                                  Port.WEST)
                 if self.has_neighbor(router, p)]
        ports.extend(range(self.local_base, self.max_radix))
        return ports

    # -- metrics -----------------------------------------------------------
    def router_distance(self, router: int, node: int) -> int:
        ax, ay = self.coords(router)
        bx, by = self.coords(self.router_of(node))
        return abs(ax - bx) + abs(ay - by)

    @property
    def diameter(self) -> int:
        return 2 * (self.side - 1)


# ---------------------------------------------------------------------------
# Registry and construction.

#: Registered topology names, in documentation order.
TOPOLOGY_CHOICES = ("mesh", "torus", "cmesh")


def resolve_topology(value: str = "") -> str:
    """Validate a topology name; '' defers to REPRO_TOPOLOGY (then mesh).

    Raises :class:`ConfigError` naming the valid choices on anything
    else, so a typo in ``config.noc.topology`` or ``REPRO_TOPOLOGY``
    fails at configuration time instead of deep inside construction.
    """
    source = "config.noc.topology"
    if not value:
        value = os.environ.get("REPRO_TOPOLOGY", "")
        source = "REPRO_TOPOLOGY"
    if not value:
        return "mesh"
    name = value.strip().lower()
    if name not in TOPOLOGY_CHOICES:
        raise ConfigError(
            f"unknown topology {value!r} (from {source}): valid choices "
            f"are {', '.join(TOPOLOGY_CHOICES)}"
        )
    return name


def topology_grid_side(name: str, n_cores: int) -> int:
    """Router-grid side for ``n_cores`` under topology ``name``.

    Raises :class:`ConfigError` when the core count does not tile the
    topology (mesh/torus need a perfect square; cmesh needs
    ``CONCENTRATION`` times a perfect square).
    """
    if name == "cmesh":
        routers, rem = divmod(n_cores, CONCENTRATION)
        side = math.isqrt(routers)
        if rem or side * side != routers:
            raise ConfigError(
                f"cmesh needs n_cores = {CONCENTRATION} * k^2 "
                f"({CONCENTRATION} cores per router on a square router "
                f"grid), got {n_cores}"
            )
        return side
    side = math.isqrt(n_cores)
    if side * side != n_cores:
        raise ValueError(f"n_cores must be a perfect square ({name})")
    return side


def make_topology(name: str, n_cores: int) -> Topology:
    """Build the named topology for an ``n_cores``-core chip."""
    name = resolve_topology(name)
    side = topology_grid_side(name, n_cores)
    if name == "torus":
        return Torus(side)
    if name == "cmesh":
        return CMesh(side)
    return Mesh(side)


def build_topology(config) -> Topology:
    """Build the topology a :class:`~repro.sim.config.SystemConfig` names."""
    return make_topology(getattr(config.noc, "topology", ""), config.n_cores)


def memory_controller_nodes(topo: Topology, count: int) -> List[int]:
    """Place ``count`` memory controllers spread along the chip edges.

    Thin wrapper over :meth:`Topology.memory_controller_sites`, kept as
    the stable module-level entry point.
    """
    return topo.memory_controller_sites(count)
