"""Messages and flits.

A :class:`Message` is what the protocol layer hands to a network interface;
the NI segments it into 16-byte :class:`Flit` objects at injection.  The
NoC layer treats the protocol meaning of a message as opaque (``kind`` is
only used for statistics), but it does understand the circuit-related
fields: requests may carry a reservation walk, and replies may ride a
previously reserved circuit.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

#: Circuit identity: (reply destination node, block address, request uid).
#: The paper's routers match on (destID, block@); the uid component exists
#: only to disambiguate back-to-back transactions for the same line during
#: the few cycles an undo notification is still propagating.
CircuitKey = Tuple[int, int, int]

_msg_ids = itertools.count()


class Message:
    """A protocol message travelling through the network."""

    __slots__ = (
        "uid",
        "src",
        "dest",
        "vn",
        "n_flits",
        "kind",
        "payload",
        # circuit reservation (requests)
        "builds_circuit",
        "circuit_key",
        "reply_flits",
        "expected_turnaround",
        "walk",
        # circuit use (replies)
        "uses_circuit",
        "ride_key",
        "final_dest",
        "circuit_eligible",
        "outcome_hint",
        "outcome",
        "plan",
        # latency accounting
        "enqueued_cycle",
        "injected_cycle",
        "net_acc",
        "queue_acc",
    )

    def __init__(
        self,
        src: int,
        dest: int,
        vn: int,
        n_flits: int,
        kind: str,
        payload: Any = None,
    ) -> None:
        if n_flits < 1:
            raise ValueError("a message needs at least one flit")
        if vn not in (0, 1):
            raise ValueError("vn must be 0 (requests) or 1 (replies)")
        self.uid = next(_msg_ids)
        self.src = src
        self.dest = dest
        self.vn = vn
        self.n_flits = n_flits
        self.kind = kind
        self.payload = payload
        # -- circuit reservation (requests) --------------------------------
        #: This message reserves a circuit for its reply as it travels.
        self.builds_circuit = False
        #: Identity of the circuit being reserved / ridden.
        self.circuit_key: Optional[CircuitKey] = None
        #: Flit count of the expected reply (timed window occupancy).
        self.reply_flits = 0
        #: Destination turnaround estimate in cycles (timed estimate).
        self.expected_turnaround = 0
        #: CircuitWalk accumulated while reserving (set at injection).
        self.walk: Any = None
        # -- circuit use (replies) -----------------------------------------
        #: Resolved at the origin NI: this reply rides its own circuit.
        self.uses_circuit = False
        #: Scroungers ride a circuit reserved for another reply.
        self.ride_key: Optional[CircuitKey] = None
        #: Scroungers: ultimate destination after the intermediate hop.
        self.final_dest: Optional[int] = None
        #: Reply could have had a circuit built (L2_REPLY/L2_WB_ACK/MEMORY).
        self.circuit_eligible = False
        #: Protocol-provided outcome override (e.g. "undone" after the L2
        #: forwarded a request whose circuit had already been built).
        self.outcome_hint: Optional[str] = None
        #: Final Fig. 6 classification, recorded once at send time.
        self.outcome: Optional[str] = None
        #: ReplyPlan attached by the circuit policy at the origin NI.
        self.plan: Any = None
        # -- latency accounting (accumulated across scrounger legs) --------
        self.enqueued_cycle = -1
        self.injected_cycle = -1
        self.net_acc = 0
        self.queue_acc = 0

    @property
    def is_reply(self) -> bool:
        return self.vn == 1

    @property
    def queueing_latency(self) -> int:
        """Cycles spent waiting in NI queues (all legs)."""
        return self.queue_acc

    @property
    def network_latency(self) -> int:
        """Cycles spent inside the network (all legs)."""
        return self.net_acc

    def flits(self) -> List["Flit"]:
        """Segment into head/body/tail flits (single-flit = head and tail)."""
        return [
            Flit(self, index, index == 0, index == self.n_flits - 1)
            for index in range(self.n_flits)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.kind} #{self.uid} {self.src}->{self.dest} "
            f"vn={self.vn} flits={self.n_flits})"
        )


class Flit:
    """One 16-byte unit of a message."""

    __slots__ = ("msg", "index", "is_head", "is_tail", "on_circuit", "dst_vc")

    def __init__(self, msg: Message, index: int, is_head: bool, is_tail: bool) -> None:
        self.msg = msg
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail
        #: True while this flit travels on a reserved circuit (set at NI).
        self.on_circuit = False
        #: Input VC (index within the VN) targeted at the next router.
        self.dst_vc = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({role}{self.index} of {self.msg!r})"


def control_message(src: int, dest: int, vn: int, kind: str, payload: Any = None) -> Message:
    """Single-flit message (requests, acknowledgements)."""
    return Message(src, dest, vn, 1, kind, payload)


def data_message(
    src: int, dest: int, vn: int, kind: str, flit_bytes: int, line_bytes: int,
    payload: Any = None,
) -> Message:
    """Cache-line-carrying message: header flit + line payload flits."""
    n_flits = 1 + (line_bytes + flit_bytes - 1) // flit_bytes
    return Message(src, dest, vn, n_flits, kind, payload)
