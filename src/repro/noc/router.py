"""Four-stage wormhole router with Reactive Circuits support.

The baseline pipeline (paper Table 4 / Fig. 2) is:

    stage 1 - routing computation and input buffering (cycle t)
    stage 2 - virtual-channel allocation                (t+1)
    stage 3 - switch allocation                         (t+2)
    stage 4 - switch traversal                          (t+3)

followed by one link cycle, i.e. 5 cycles/hop for packet-switched flits.
A reply flit whose circuit is reserved at this router bypasses the whole
pipeline: its "Circuit Check" match at the input unit sends it through the
crossbar in its arrival cycle (2 cycles/hop with the link).  The crossbar
prioritises circuit flits; packet flits that already won switch allocation
retry their traversal the next cycle (section 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.noc.allocators import ArbiterPool, two_phase_allocate
from repro.noc.flit import Flit
from repro.noc.link import CreditLink, FlitLink
from repro.noc.routing import route_for_vn
from repro.noc.topology import Mesh, Port
from repro.noc.vc import InputVc, OutputVc, VcStage
from repro.sim.kernel import SimulationError
from repro.sim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.table import CircuitTable
    from repro.sim.config import SystemConfig

#: Effectively infinite credit count used for ejection (NI sink) ports.
EJECTION_CREDITS = 1 << 30


class InputUnit:
    """All per-input-port state: VCs, circuit table, ideal-mode wait queue."""

    __slots__ = ("port", "vcs", "circuit_table", "wait_queue", "busy_count",
                 "busy_list")

    def __init__(self, port: Port, vcs: List[List[InputVc]]) -> None:
        self.port = port
        #: vcs[vn][vc_index]
        self.vcs = vcs
        #: Installed by circuit policies that reserve state at routers.
        self.circuit_table: Optional["CircuitTable"] = None
        #: Ideal mode: flits waiting for a free output port (FIFO).
        self.wait_queue: List[Flit] = []
        #: Non-IDLE VCs at this port (lets allocation skip idle ports).
        self.busy_count = 0
        #: The non-IDLE VCs themselves, kept sorted by (vn, index) so the
        #: allocation stages see candidates in the same order a full scan
        #: of ``vcs`` would produce (round-robin decisions depend on it).
        self.busy_list: List[InputVc] = []


class OutputUnit:
    """Per-output-port state: downstream VC credit/allocation bookkeeping."""

    __slots__ = ("port", "vcs")

    def __init__(self, port: Port, vcs: List[List[OutputVc]]) -> None:
        self.port = port
        self.vcs = vcs


class Router:
    """One mesh router.

    Wiring (set by :class:`~repro.noc.network.Network`): for each port,
    ``in_flit[p]`` delivers flits from the neighbour/NI, ``out_flit[p]``
    carries flits out, ``in_credit[p]`` returns credits for flits we sent
    out of ``p``, and ``out_credit[p]`` returns credits (and undo notices)
    for flits we received on ``p``.
    """

    def __init__(self, node: int, mesh: Mesh, config: "SystemConfig",
                 policy, stats: Stats) -> None:
        self.node = node
        self.mesh = mesh
        self.config = config
        self.policy = policy
        self.stats = stats
        noc = config.noc
        self.ports: List[Port] = mesh.router_ports(node)
        self.inputs: Dict[Port, InputUnit] = {}
        self.outputs: Dict[Port, OutputUnit] = {}
        depth = noc.buffer_depth_flits
        self._bufferless_vcs = policy.bufferless_vcs()  # set of (vn, vc)
        for port in self.ports:
            in_vcs: List[List[InputVc]] = []
            out_vcs: List[List[OutputVc]] = []
            for vn, count in enumerate(noc.vcs_per_vn):
                row_in: List[InputVc] = []
                row_out: List[OutputVc] = []
                for index in range(count):
                    vc_depth = 0 if (vn, index) in self._bufferless_vcs else depth
                    row_in.append(InputVc(vn, index, vc_depth))
                    if port is Port.LOCAL:
                        credits = EJECTION_CREDITS
                    else:
                        credits = vc_depth
                    row_out.append(OutputVc(vn, index, credits))
                in_vcs.append(row_in)
                out_vcs.append(row_out)
            self.inputs[port] = InputUnit(port, in_vcs)
            self.outputs[port] = OutputUnit(port, out_vcs)
        policy.attach_router(self)
        # Channels, wired by the Network.
        self.in_flit: Dict[Port, FlitLink] = {}
        self.out_flit: Dict[Port, FlitLink] = {}
        self.in_credit: Dict[Port, CreditLink] = {}
        self.out_credit: Dict[Port, CreditLink] = {}
        # Pipeline state.
        self._st_pending: List[Tuple[int, Port, int, int]] = []
        self._va_p1 = ArbiterPool()
        self._va_p2 = ArbiterPool()
        self._sa_in = ArbiterPool()
        self._sa_out = ArbiterPool()
        self._out_claimed = 0
        self._in_claimed = 0
        #: Count of VCs not in IDLE stage (fast-path idle check).
        self._busy_vcs = 0
        #: Flits/credits in flight toward this router (link watcher).
        self.incoming = 0
        #: Ideal-mode wait queues in use (kept non-empty check cheap).
        self._waiting = 0
        #: DOR orientation shared with the circuit policies.
        self._request_xy = noc.request_xy
        #: Flits forwarded through this crossbar (utilisation heatmaps).
        self.forwarded = 0
        #: Optional debug tracer: fn(cycle, router, out_port, flit).
        self.tracer = None
        #: Optional telemetry span recorder (``repro.telemetry``); hooks
        #: are guarded by ``observer is not None`` so detached telemetry
        #: costs one attribute test per event site.
        self.observer = None
        #: Set by the simulator kernel; links poke it with arrival cycles
        #: so a sleeping router wakes exactly when traffic reaches it.
        self.kernel_wake = None

    # ------------------------------------------------------------------
    # Helpers used by policies and the network interface machinery.
    # ------------------------------------------------------------------
    def vc(self, port: Port, vn: int, index: int) -> InputVc:
        return self.inputs[port].vcs[vn][index]

    def output_vc(self, port: Port, vn: int, index: int) -> OutputVc:
        return self.outputs[port].vcs[vn][index]

    def claim_path(self, in_port: Port, out_port: Port) -> bool:
        """Atomically claim crossbar input+output lines for this cycle."""
        out_bit = 1 << out_port
        in_bit = 1 << in_port
        if (self._out_claimed & out_bit) or (self._in_claimed & in_bit):
            return False
        self._out_claimed |= out_bit
        self._in_claimed |= in_bit
        return True

    def forward_flit(self, out_port: Port, flit: Flit, cycle: int) -> None:
        """Send ``flit`` through the crossbar onto ``out_port``'s link."""
        self.out_flit[out_port].send(flit, cycle)
        self.forwarded += 1
        self.stats.bump("noc.xbar_traversals")
        self.stats.bump("noc.link_flits")
        if self.tracer is not None:
            self.tracer(cycle, self, out_port, flit)

    def return_credit(self, in_port: Port, vn: int, vc_index: int, cycle: int) -> None:
        """Return one buffer credit upstream for ``in_port``'s (vn, vc)."""
        self.out_credit[in_port].send_credit(vn, vc_index, cycle)
        self.stats.bump("noc.credits_sent")

    def send_undo(self, out_port: Port, key, cycle: int) -> None:
        """Propagate an undo notice toward the circuit destination."""
        self.out_credit[out_port].send_undo(key, cycle)
        self.stats.bump("circuit.undo_hops")

    def vc_became_busy(self, port: Port, vc: InputVc) -> None:
        self._busy_vcs += 1
        unit = self.inputs[port]
        unit.busy_count += 1
        busy = unit.busy_list
        key = (vc.vn, vc.index)
        i = len(busy)
        while i and (busy[i - 1].vn, busy[i - 1].index) > key:
            i -= 1
        busy.insert(i, vc)

    def vc_became_idle(self, port: Port, vc: InputVc) -> None:
        self._busy_vcs -= 1
        unit = self.inputs[port]
        unit.busy_count -= 1
        unit.busy_list.remove(vc)

    def route_reply(self, dest: int) -> Port:
        """Reply-VN route from this router toward ``dest``."""
        if dest == self.node:
            return Port.LOCAL
        return route_for_vn(self.mesh, 1, self.node, dest, self._request_xy)

    def finalize_wiring(self) -> None:
        """Precompute hot-loop port/link lists (called once by Network)."""
        self._credit_pulls = [
            (port, self.in_credit[port]) for port in self.ports
            if port in self.in_credit
        ]
        self._flit_pulls = [
            (port, self.in_flit[port]) for port in self.ports
            if port in self.in_flit
        ]
        self._input_units = [(port, self.inputs[port]) for port in self.ports]
        # allocatable_vcs() is a static property of the policy; caching it
        # keeps a per-VC virtual call out of the allocation inner loops.
        self._alloc_vn = tuple(
            self.policy.allocatable_vcs(vn)
            for vn in range(len(self.config.noc.vcs_per_vn))
        )

    # ------------------------------------------------------------------
    # Tick.
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if not self._has_work():
            return
        self._out_claimed = 0
        self._in_claimed = 0
        # ``incoming`` counts flits+credits queued on our input links, so
        # when it is zero both pull loops would scan empty queues.
        incoming = self.incoming
        if incoming:
            self._pull_credits(cycle)
        if self._waiting:
            self.policy.retry_waiting(self, cycle)
        if incoming:
            self._pull_flits(cycle)
        if self._st_pending:
            self._switch_traversal(cycle)
        if self._busy_vcs:
            self._switch_allocation(cycle)
            self._vc_allocation(cycle)

    def _has_work(self) -> bool:
        if self._busy_vcs or self._st_pending or self.incoming:
            return True
        if self._waiting:
            for _port, unit in self._input_units:
                if unit.wait_queue:
                    return True
        return False

    def next_wake(self, cycle: int) -> Optional[int]:
        """Sleep whenever the next tick could not make forward progress.

        Beyond the obvious idle case, a *blocked* router sleeps too: a VC
        waiting on downstream credits, on body flits from upstream, or on
        an occupied output VC cannot act until an event that either
        arrives on a watched link (flit/credit sends poke ``kernel_wake``)
        or is produced by this router's own pipeline during a cycle it is
        awake for anyway (tail departures need a switch traversal, and
        ``_st_pending`` keeps the router awake through those).  Losing
        arbitration always implies some other VC won a grant, so
        ``_st_pending`` covers contention retries as well.  Skipping
        blocked cycles is also state-identical because the round-robin
        arbiters only advance on grants, never on empty candidate sets.

        A router whose only pending work is ``incoming`` traffic still on
        the wire sleeps through the wire latency: the earliest due cycle
        across its input links is exact.  Circuit-table entries need no
        wakeup of their own: expired windows self-clean lazily and
        circuit flits arrive on watched links.
        """
        if self._st_pending:
            return cycle + 1
        if self._waiting:
            for _port, unit in self._input_units:
                if unit.wait_queue:
                    return cycle + 1
        due: Optional[int] = None
        if self._busy_vcs:
            threshold = cycle + 1
            for _port, unit in self._input_units:
                for vc in unit.busy_list:
                    if vc.ready_cycle > threshold:
                        if due is None or vc.ready_cycle < due:
                            due = vc.ready_cycle
                        continue
                    if vc.stage is VcStage.ACTIVE:
                        # granted_pending is impossible here: grants sit
                        # in _st_pending until their switch traversal.
                        if vc.buffer and self._downstream_credit(vc):
                            return threshold
                    else:  # VcStage.VA
                        out_vcs = self.outputs[vc.route].vcs[vc.vn]
                        for index in self._alloc_vn[vc.vn]:
                            if out_vcs[index].is_free:
                                return threshold
        if self.incoming:
            for _port, link in self._flit_pulls:
                queue = link._queue
                if queue and (due is None or queue[0][0] < due):
                    due = queue[0][0]
            for _port, link in self._credit_pulls:
                queue = link._queue
                if queue and (due is None or queue[0][0] < due):
                    due = queue[0][0]
        return due

    # -- credits ---------------------------------------------------------
    def _pull_credits(self, cycle: int) -> None:
        for port, link in self._credit_pulls:
            queue = link._queue
            if not queue or queue[0][0] > cycle:
                continue
            for credit in link.arrivals(cycle):
                if credit.is_buffer_credit:
                    self.outputs[port].vcs[credit.vn][credit.vc].credits += 1
                if credit.undo_key is not None:
                    self.policy.handle_undo(self, port, credit.undo_key, cycle)

    # -- stage 1: arrivals (circuit check, then buffering + RC) -----------
    def _pull_flits(self, cycle: int) -> None:
        for port, link in self._flit_pulls:
            queue = link._queue
            if not queue or queue[0][0] > cycle:
                continue
            for flit in link.arrivals(cycle):
                if self.policy.handle_arrival(self, port, flit, cycle):
                    if self.observer is not None:
                        self.observer.router_circuit_hit(self, flit, cycle)
                    continue
                self._buffer_flit(port, flit, cycle)

    def _buffer_flit(self, port: Port, flit: Flit, cycle: int) -> None:
        vn = flit.msg.vn
        vc = self.inputs[port].vcs[vn][flit.dst_vc]
        if vc.depth == 0:
            raise SimulationError(
                f"packet flit {flit!r} targeted bufferless VC "
                f"({vn},{flit.dst_vc}) at router {self.node} port {port.name}"
            )
        if len(vc.buffer) >= vc.depth:
            raise SimulationError(
                f"buffer overflow at router {self.node} port {port.name} "
                f"vc ({vn},{flit.dst_vc})"
            )
        vc.buffer.append((flit, cycle, flit.dst_vc))
        self.stats.bump("noc.buffer_writes")
        if flit.is_head and vc.stage is VcStage.IDLE and len(vc.buffer) == 1:
            self.vc_became_busy(port, vc)
            self._route_compute(vc, flit, cycle)

    def _route_compute(self, vc: InputVc, flit: Flit, cycle: int) -> None:
        """Stage 1 route computation; the caller manages busy accounting."""
        vc.route = route_for_vn(self.mesh, flit.msg.vn, self.node,
                                flit.msg.dest, self._request_xy)
        vc.stage = VcStage.VA
        vc.ready_cycle = cycle + 1
        self.stats.bump("noc.route_computations")

    # -- stage 4: switch traversal ----------------------------------------
    def _switch_traversal(self, cycle: int) -> None:
        if not self._st_pending:
            return
        remaining: List[Tuple[int, Port, int, int]] = []
        for item in self._st_pending:
            st_cycle, in_port, vn, vc_index = item
            if st_cycle > cycle:
                remaining.append(item)
                continue
            vc = self.inputs[in_port].vcs[vn][vc_index]
            out_port = vc.route
            assert out_port is not None and vc.buffer
            if not self.claim_path(in_port, out_port):
                remaining.append(item)  # crossbar busy (circuit priority)
                continue
            flit, _arrived, credit_vc = vc.buffer.popleft()
            self.stats.bump("noc.buffer_reads")
            flit.dst_vc = vc.out_vc if vc.out_vc is not None else 0
            self.forward_flit(out_port, flit, cycle)
            self.return_credit(in_port, vn, credit_vc, cycle)
            vc.granted_pending = False
            if flit.is_tail:
                out_vc = self.outputs[out_port].vcs[vn][vc.out_vc]
                out_vc.allocated_to = None
                self.policy.on_tail_departure(self, in_port, flit, cycle)
                vc.reset_for_next_packet(cycle)
                if vc.buffer:
                    # Non-atomic buffers: the next packet is already queued;
                    # its head starts route computation now (stays busy).
                    next_head = vc.buffer[0][0]
                    assert next_head.is_head
                    self._route_compute(vc, next_head, cycle)
                else:
                    self.vc_became_idle(in_port, vc)
        self._st_pending = remaining

    # -- stage 3: switch allocation ----------------------------------------
    def _switch_allocation(self, cycle: int) -> None:
        if not self._busy_vcs:
            return
        port_winners: Dict[Port, Tuple[int, int]] = {}
        for port, unit in self._input_units:
            candidates: List[Tuple[int, int]] = []
            for vc in unit.busy_list:
                if (
                    vc.stage is VcStage.ACTIVE
                    and not vc.granted_pending
                    and vc.ready_cycle <= cycle
                    and vc.head_ready(cycle)
                    and self._downstream_credit(vc)
                ):
                    candidates.append((vc.vn, vc.index))
            if candidates:
                choice = self._sa_in.pick(port, candidates)
                if choice is not None:
                    port_winners[port] = choice
        if not port_winners:
            return
        by_output: Dict[Port, List[Port]] = {}
        for port, (vn, vc_index) in port_winners.items():
            route = self.inputs[port].vcs[vn][vc_index].route
            by_output.setdefault(route, []).append(port)
        for out_port, contenders in by_output.items():
            winner = self._sa_out.pick(out_port, contenders)
            if winner is None:
                continue
            vn, vc_index = port_winners[winner]
            vc = self.inputs[winner].vcs[vn][vc_index]
            out_vc = self.outputs[out_port].vcs[vn][vc.out_vc]
            if out_port is not Port.LOCAL:
                out_vc.credits -= 1
            vc.granted_pending = True
            self._st_pending.append((cycle + 1, winner, vn, vc_index))
            self.stats.bump("noc.sa_grants")

    def _downstream_credit(self, vc: InputVc) -> bool:
        out_vc = self.outputs[vc.route].vcs[vc.vn][vc.out_vc]
        return out_vc.credits > 0

    # -- stage 2: VC allocation ---------------------------------------------
    def _vc_allocation(self, cycle: int) -> None:
        if not self._busy_vcs:
            return
        requests: Dict[Tuple[Port, int, int], List[Tuple[Port, int, int]]] = {}
        for port, unit in self._input_units:
            for vc in unit.busy_list:
                if vc.stage is not VcStage.VA or vc.ready_cycle > cycle:
                    continue
                options = [
                    (vc.route, vc.vn, index)
                    for index in self._alloc_vn[vc.vn]
                    if self.outputs[vc.route].vcs[vc.vn][index].is_free
                ]
                if options:
                    requests[(port, vc.vn, vc.index)] = options
        if not requests:
            return
        grants = two_phase_allocate(requests, self._va_p1, self._va_p2)
        for (port, vn, vc_index), (out_port, _vn, out_index) in grants.items():
            vc = self.inputs[port].vcs[vn][vc_index]
            vc.stage = VcStage.ACTIVE
            vc.out_vc = out_index
            vc.ready_cycle = cycle + 1
            self.outputs[out_port].vcs[vn][out_index].allocated_to = (
                port, vn, vc_index,
            )
            self.stats.bump("noc.va_grants")
            head = vc.head_flit()
            assert head is not None
            if head.msg.builds_circuit and vn == 0:
                # Circuit reservation happens in parallel with VA (sec. 4.1).
                self.policy.on_request_va(self, port, head.msg, cycle)
                if self.observer is not None:
                    self.observer.router_reservation(self, head.msg, cycle)

    # ------------------------------------------------------------------
    # Introspection used by tests.
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return sum(
            len(vc.buffer)
            for unit in self.inputs.values()
            for vn_row in unit.vcs
            for vc in vn_row
        )

    def circuit_entries(self) -> int:
        total = 0
        for unit in self.inputs.values():
            if unit.circuit_table is not None:
                total += len(unit.circuit_table.entries)
        return total
