"""Four-stage wormhole router with Reactive Circuits support.

The baseline pipeline (paper Table 4 / Fig. 2) is:

    stage 1 - routing computation and input buffering (cycle t)
    stage 2 - virtual-channel allocation                (t+1)
    stage 3 - switch allocation                         (t+2)
    stage 4 - switch traversal                          (t+3)

followed by one link cycle, i.e. 5 cycles/hop for packet-switched flits.
A reply flit whose circuit is reserved at this router bypasses the whole
pipeline: its "Circuit Check" match at the input unit sends it through the
crossbar in its arrival cycle (2 cycles/hop with the link).  The crossbar
prioritises circuit flits; packet flits that already won switch allocation
retry their traversal the next cycle (section 4.3).

Two pipelines live here.  :class:`Router` is the optimised saturation
hot path: dense port-indexed lists instead of dicts, precomputed
route tables, per-unit round-robin arbiters over integer candidate
codes with reused scratch lists, inlined link drains, and hot counters
batched into plain ints that a registered :class:`~repro.sim.stats.Stats`
flusher drains at read boundaries.  :class:`ReferenceRouter` keeps the
pre-overhaul stage implementations (ArbiterPool-based separable
allocation, pure-function route computation, per-event stats bumps);
``NocConfig.fastpath=False`` builds a network on it so A/B tests can
prove the overhaul bit-identical, stats and finish cycles included.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.noc.allocators import (
    ArbiterPool,
    ReferenceRoundRobinArbiter,
    RoundRobinArbiter,
    reference_two_phase_allocate,
)
from repro.noc.flit import Flit
from repro.noc.link import Credit, CreditLink, FlitLink
from repro.noc.routing import route_for_vn, route_tables
from repro.noc.topology import Topology
from repro.noc.vc import InputVc, OutputVc, VcStage
from repro.sim.kernel import SimulationError
from repro.sim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.table import CircuitTable
    from repro.sim.config import SystemConfig

#: Effectively infinite credit count used for ejection (NI sink) ports.
EJECTION_CREDITS = 1 << 30

_ACTIVE = VcStage.ACTIVE
_VA = VcStage.VA
_IDLE = VcStage.IDLE


class InputUnit:
    """All per-input-port state: VCs, circuit table, ideal-mode wait queue."""

    __slots__ = ("port", "vcs", "circuit_table", "wait_queue", "busy_count",
                 "busy_list", "sa_arb")

    def __init__(self, port: int, vcs: List[List[InputVc]]) -> None:
        self.port = port
        #: vcs[vn][vc_index]
        self.vcs = vcs
        #: Installed by circuit policies that reserve state at routers.
        self.circuit_table: Optional["CircuitTable"] = None
        #: Ideal mode: flits waiting for a free output port (FIFO).
        self.wait_queue: List[Flit] = []
        #: Non-IDLE VCs at this port (lets allocation skip idle ports).
        self.busy_count = 0
        #: The non-IDLE VCs themselves, kept sorted by (vn, index) so the
        #: allocation stages see candidates in the same order a full scan
        #: of ``vcs`` would produce (round-robin decisions depend on it).
        self.busy_list: List[InputVc] = []
        #: Phase-1 switch-allocation arbiter for this port's candidates.
        self.sa_arb = RoundRobinArbiter()


class OutputUnit:
    """Per-output-port state: downstream VC credit/allocation bookkeeping."""

    __slots__ = ("port", "vcs", "sa_arb")

    def __init__(self, port: int, vcs: List[List[OutputVc]]) -> None:
        self.port = port
        self.vcs = vcs
        #: Phase-2 switch-allocation arbiter among contending input ports.
        self.sa_arb = RoundRobinArbiter()


class Router:
    """One NoC router (optimised hot-path pipeline).

    Wiring (set by :class:`~repro.noc.network.Network`): for each port,
    ``in_flit[p]`` delivers flits from the neighbour/NI, ``out_flit[p]``
    carries flits out, ``in_credit[p]`` returns credits for flits we sent
    out of ``p``, and ``out_credit[p]`` returns credits (and undo notices)
    for flits we received on ``p``.

    All six per-port structures are dense lists indexed by the plain-int
    port id, sized to the topology's ``max_radix`` (``None`` where the
    port does not exist / is not wired), so the per-cycle stage loops pay
    a C-level list index instead of a dict hash per access.  Iterate
    present ports via ``self.ports`` or the ``_input_units`` pairs.
    ``node`` is the *router* id; topologies with concentration attach
    several nodes through local ports >= ``topology.local_base``.
    """

    def __init__(self, node: int, mesh: Topology, config: "SystemConfig",
                 policy, stats: Stats) -> None:
        self.node = node
        self.mesh = mesh
        self.config = config
        self.policy = policy
        self.stats = stats
        noc = config.noc
        n_ports = mesh.max_radix
        local_base = mesh.local_base
        self._local_base = local_base
        self.ports: List[int] = mesh.router_ports(node)
        self.inputs: List[Optional[InputUnit]] = [None] * n_ports
        self.outputs: List[Optional[OutputUnit]] = [None] * n_ports
        depth = noc.buffer_depth_flits
        self._bufferless_vcs = policy.bufferless_vcs()  # set of (vn, vc)
        for port in self.ports:
            in_vcs: List[List[InputVc]] = []
            out_vcs: List[List[OutputVc]] = []
            port_bits = port << 8
            for vn, count in enumerate(noc.vcs_per_vn):
                row_in: List[InputVc] = []
                row_out: List[OutputVc] = []
                for index in range(count):
                    vc_depth = 0 if (vn, index) in self._bufferless_vcs else depth
                    ivc = InputVc(vn, index, vc_depth)
                    ivc.rcode = port_bits | ivc.scode
                    ivc.rkey = (port, vn, index)
                    ivc.va_arb = RoundRobinArbiter()
                    row_in.append(ivc)
                    if port >= local_base:
                        credits = EJECTION_CREDITS
                    else:
                        credits = vc_depth
                    ovc = OutputVc(vn, index, credits)
                    ovc.code = port_bits | ovc.code
                    ovc.va_arb = RoundRobinArbiter()
                    row_out.append(ovc)
                in_vcs.append(row_in)
                out_vcs.append(row_out)
            self.inputs[port] = InputUnit(port, in_vcs)
            self.outputs[port] = OutputUnit(port, out_vcs)
        policy.attach_router(self)
        # Channels, wired by the Network (dense, port-indexed).
        self.in_flit: List[Optional[FlitLink]] = [None] * n_ports
        self.out_flit: List[Optional[FlitLink]] = [None] * n_ports
        self.in_credit: List[Optional[CreditLink]] = [None] * n_ports
        self.out_credit: List[Optional[CreditLink]] = [None] * n_ports
        # Precomputed next-hop rows for this router: [vn] -> dest -> port.
        req_table, rep_table = route_tables(mesh, noc.request_xy)
        self._route_rows = (req_table[node], rep_table[node])
        # Pipeline state.  Granted traversals carry the winning InputVc
        # itself so switch traversal skips the unit/vn/index re-lookup.
        self._st_pending: List[Tuple[int, int, InputVc]] = []
        self._st_scratch: List[Tuple[int, int, InputVc]] = []
        self._out_claimed = 0
        self._in_claimed = 0
        #: Count of VCs not in IDLE stage (fast-path idle check).
        self._busy_vcs = 0
        #: Flits/credits in flight toward this router (link watcher).
        self.incoming = 0
        #: Ideal-mode wait queues in use (kept non-empty check cheap).
        self._waiting = 0
        #: DOR orientation shared with the circuit policies.
        self._request_xy = noc.request_xy
        #: Flits forwarded through this crossbar (utilisation heatmaps).
        self.forwarded = 0
        #: Optional debug tracer: fn(cycle, router, out_port, flit).
        self.tracer = None
        #: Optional telemetry span recorder (``repro.telemetry``); hooks
        #: are guarded by ``observer is not None`` so detached telemetry
        #: costs one attribute test per event site.
        self.observer = None
        #: Set by the simulator kernel; links poke it with arrival cycles
        #: so a sleeping router wakes exactly when traffic reaches it.
        self.kernel_wake = None
        # Policy hooks that are no-ops for this variant are skipped at
        # the call site (the flags are static per policy class), and the
        # hook's own first-line guard is hoisted in front of the call:
        # 0 = always call, 1 = only flits riding a circuit, 2 = only
        # reply-VN flits carrying a circuit key.
        # Policies may ship a flattened ``handle_arrival_fast`` twin whose
        # body inlines the router helper calls; the reference pipeline
        # always binds the readable ``handle_arrival`` original.
        if policy.handles_arrivals:
            self._arrival_hook = getattr(
                policy, "handle_arrival_fast", policy.handle_arrival)
        else:
            self._arrival_hook = None
        self._tail_hook = policy.on_tail_departure if policy.handles_tails else None
        filt = policy.arrival_filter
        self._arrival_filter = (
            1 if filt == "on_circuit" else 2 if filt == "reply_keyed" else 0
        )
        # Reused allocation scratch (never escapes a tick).
        self._sa_codes: List[int] = []
        self._sa_vcs: List[InputVc] = []
        self._sa_out_order: List[int] = []
        self._sa_out_cands: List[List[int]] = [[] for _ in range(n_ports)]
        self._sa_win_vc: List[Optional[InputVc]] = [None] * n_ports
        self._va_codes: List[int] = []
        self._va_objs: List[OutputVc] = []
        self._va_touched: List[OutputVc] = []
        # Hot counters, batched; drained by _flush_counters (registered
        # with the Stats object) at sample/finish boundaries.
        self._c_buffer_writes = 0
        self._c_route = 0
        self._c_buffer_reads = 0
        self._c_xbar = 0
        self._c_link = 0
        self._c_credits = 0
        self._c_sa = 0
        self._c_va = 0
        stats.add_flusher(self._flush_counters)

    def _flush_counters(self) -> None:
        """Drain batched hot counters into the shared Stats dict.

        Only nonzero deltas are written: flushing zeros would create
        counter keys an unbatched run never creates, breaking snapshot
        equality.
        """
        counters = self.stats.counters
        if self._c_buffer_writes:
            counters["noc.buffer_writes"] += self._c_buffer_writes
            self._c_buffer_writes = 0
        if self._c_route:
            counters["noc.route_computations"] += self._c_route
            self._c_route = 0
        if self._c_buffer_reads:
            counters["noc.buffer_reads"] += self._c_buffer_reads
            self._c_buffer_reads = 0
        if self._c_xbar:
            counters["noc.xbar_traversals"] += self._c_xbar
            self._c_xbar = 0
        if self._c_link:
            counters["noc.link_flits"] += self._c_link
            self._c_link = 0
        if self._c_credits:
            counters["noc.credits_sent"] += self._c_credits
            self._c_credits = 0
        if self._c_sa:
            counters["noc.sa_grants"] += self._c_sa
            self._c_sa = 0
        if self._c_va:
            counters["noc.va_grants"] += self._c_va
            self._c_va = 0

    # ------------------------------------------------------------------
    # Helpers used by policies and the network interface machinery.
    # ------------------------------------------------------------------
    def vc(self, port: int, vn: int, index: int) -> InputVc:
        return self.inputs[port].vcs[vn][index]

    def output_vc(self, port: int, vn: int, index: int) -> OutputVc:
        return self.outputs[port].vcs[vn][index]

    def input_units(self):
        """(port, InputUnit) pairs for the ports that exist, in port order."""
        return self._input_units

    def claim_path(self, in_port: int, out_port: int) -> bool:
        """Atomically claim crossbar input+output lines for this cycle."""
        out_bit = 1 << out_port
        in_bit = 1 << in_port
        if (self._out_claimed & out_bit) or (self._in_claimed & in_bit):
            return False
        self._out_claimed |= out_bit
        self._in_claimed |= in_bit
        return True

    def forward_flit(self, out_port: int, flit: Flit, cycle: int) -> None:
        """Send ``flit`` through the crossbar onto ``out_port``'s link."""
        self.out_flit[out_port].send(flit, cycle)
        self.forwarded += 1
        self._c_xbar += 1
        self._c_link += 1
        if self.tracer is not None:
            self.tracer(cycle, self, out_port, flit)

    def return_credit(self, in_port: int, vn: int, vc_index: int, cycle: int) -> None:
        """Return one buffer credit upstream for ``in_port``'s (vn, vc)."""
        self.out_credit[in_port].send_credit(vn, vc_index, cycle)
        self._c_credits += 1

    def send_undo(self, out_port: int, key, cycle: int) -> None:
        """Propagate an undo notice toward the circuit destination."""
        self.out_credit[out_port].send_undo(key, cycle)
        self.stats.bump("circuit.undo_hops")

    def vc_became_busy(self, port: int, vc: InputVc) -> None:
        self._busy_vcs += 1
        unit = self.inputs[port]
        unit.busy_count += 1
        busy = unit.busy_list
        key = (vc.vn, vc.index)
        i = len(busy)
        while i and (busy[i - 1].vn, busy[i - 1].index) > key:
            i -= 1
        busy.insert(i, vc)

    def vc_became_idle(self, port: int, vc: InputVc) -> None:
        self._busy_vcs -= 1
        unit = self.inputs[port]
        unit.busy_count -= 1
        unit.busy_list.remove(vc)

    def route_vn(self, vn: int, dest: int) -> int:
        """Precomputed DOR next hop from this router for ``(vn, dest)``."""
        return self._route_rows[vn][dest]

    def route_reply(self, dest: int) -> int:
        """Reply-VN route from this router toward ``dest``."""
        return self._route_rows[1][dest]

    def finalize_wiring(self) -> None:
        """Precompute hot-loop port/link lists (called once by Network)."""
        self._credit_pulls = [
            (port, self.in_credit[port]) for port in self.ports
            if self.in_credit[port] is not None
        ]
        self._flit_pulls = [
            (port, self.in_flit[port]) for port in self.ports
            if self.in_flit[port] is not None
        ]
        self._input_units = [(port, self.inputs[port]) for port in self.ports]
        # allocatable_vcs() is a static property of the policy; caching it
        # keeps a per-VC virtual call out of the allocation inner loops.
        self._alloc_vn = tuple(
            self.policy.allocatable_vcs(vn)
            for vn in range(len(self.config.noc.vcs_per_vn))
        )

    # ------------------------------------------------------------------
    # Tick.
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Plain ``Clocked`` entry point (always-tick mode, direct tests)."""
        self.tick_wake(cycle)

    def tick_wake(self, cycle: int) -> Optional[int]:
        """One router cycle: credits, arrivals, traversal, allocation.

        The four stage bodies live inline in this one function: at
        saturation every awake router runs all of them every cycle, and
        the per-stage method dispatch alone was a measurable slice of the
        cycle budget.  :class:`ReferenceRouter` keeps the pre-overhaul
        method-per-stage pipeline; the A/B tests hold the two
        bit-identical, so treat each section here as a transcription of
        the reference method it replaced.

        Returns what :meth:`next_wake` would (the kernel's fused
        tick+sleep protocol, see ``_Slot.tick_wake``); the sleep logic is
        inlined at the tail for the same reason the stages are.
        """
        # Inlined _has_work() (this guard runs once per awake cycle).
        # An idle router sleeps indefinitely: with no busy VC, no granted
        # traversal, nothing on the wire and no ideal-mode waiters, only
        # an external kernel_wake poke can create work (next_wake returns
        # None on exactly this state).
        if not (self._busy_vcs or self._st_pending or self.incoming):
            if not self._waiting:
                return None
            for _port, unit in self._input_units:
                if unit.wait_queue:
                    break
            else:
                return None
        self._out_claimed = 0
        self._in_claimed = 0
        inputs = self.inputs
        outputs = self.outputs
        policy = self.policy
        # ``incoming`` counts flits+credits queued on our input links, so
        # when it is zero both drain loops would scan empty queues.
        incoming = self.incoming
        if incoming:
            # -- credits ---------------------------------------------------
            removed = 0
            for port, link in self._credit_pulls:
                queue = link._queue
                if not queue or queue[0][0] > cycle:
                    continue
                vcs = outputs[port].vcs
                while queue and queue[0][0] <= cycle:
                    credit = queue.popleft()[1]
                    removed += 1
                    vn = credit.vn
                    if vn is not None:
                        vcs[vn][credit.vc].credits += 1
                    if credit.undo_key is not None:
                        policy.handle_undo(self, port, credit.undo_key, cycle)
            if removed:
                self.incoming -= removed
        if self._waiting:
            policy.retry_waiting(self, cycle)
        if incoming:
            # -- stage 1: arrivals (circuit check, buffering + RC) ---------
            # Two copies of the drain loop: policies whose handle_arrival
            # is a no-op (the flag is static per policy class) skip the
            # call - and the test - per flit.
            arrival_hook = self._arrival_hook
            route_rows = self._route_rows
            IDLE = _IDLE
            VA = _VA
            removed = 0
            writes = 0
            routes = 0
            if arrival_hook is None:
                for port, link in self._flit_pulls:
                    queue = link._queue
                    if not queue or queue[0][0] > cycle:
                        continue
                    unit = inputs[port]
                    port_vcs = unit.vcs
                    while queue and queue[0][0] <= cycle:
                        flit = queue.popleft()[1]
                        removed += 1
                        msg = flit.msg
                        vn = msg.vn
                        dst_vc = flit.dst_vc
                        vc = port_vcs[vn][dst_vc]
                        buf = vc.buffer
                        if len(buf) >= vc.depth:
                            self._overflow(port, flit, vn, dst_vc, vc)
                        buf.append((flit, cycle, dst_vc))
                        writes += 1
                        if flit.is_head and vc.stage is IDLE and len(buf) == 1:
                            # Inlined vc_became_busy (per-packet-head path).
                            self._busy_vcs += 1
                            unit.busy_count += 1
                            busy = unit.busy_list
                            bkey = (vn, dst_vc)
                            i = len(busy)
                            while i and (busy[i - 1].vn,
                                         busy[i - 1].index) > bkey:
                                i -= 1
                            busy.insert(i, vc)
                            vc.route = route_rows[vn][msg.dest]
                            vc.stage = VA
                            vc.ready_cycle = cycle + 1
                            routes += 1
            else:
                filt = self._arrival_filter
                for port, link in self._flit_pulls:
                    queue = link._queue
                    if not queue or queue[0][0] > cycle:
                        continue
                    unit = inputs[port]
                    port_vcs = unit.vcs
                    ptable = unit.circuit_table
                    while queue and queue[0][0] <= cycle:
                        flit = queue.popleft()[1]
                        removed += 1
                        msg = flit.msg
                        # The filter replicates the hook's first-line early
                        # return, so skipping the call is decision-identical.
                        if filt == 1:
                            handled = flit.on_circuit and arrival_hook(
                                self, port, flit, cycle)
                        elif filt == 2:
                            # Table pre-probe: a pure miss has no side
                            # effects in the hook (fragmented entries are
                            # untimed, so membership == live lookup), and
                            # gap hops at saturation are mostly misses.
                            handled = (msg.vn == 1
                                       and msg.circuit_key is not None
                                       and ptable is not None
                                       and msg.circuit_key in ptable.entries
                                       and arrival_hook(self, port, flit, cycle))
                        else:
                            handled = arrival_hook(self, port, flit, cycle)
                        if handled:
                            if self.observer is not None:
                                self.observer.router_circuit_hit(self, flit, cycle)
                            continue
                        vn = msg.vn
                        dst_vc = flit.dst_vc
                        vc = port_vcs[vn][dst_vc]
                        buf = vc.buffer
                        if len(buf) >= vc.depth:
                            self._overflow(port, flit, vn, dst_vc, vc)
                        buf.append((flit, cycle, dst_vc))
                        writes += 1
                        if flit.is_head and vc.stage is IDLE and len(buf) == 1:
                            # Inlined vc_became_busy (per-packet-head path).
                            self._busy_vcs += 1
                            unit.busy_count += 1
                            busy = unit.busy_list
                            bkey = (vn, dst_vc)
                            i = len(busy)
                            while i and (busy[i - 1].vn,
                                         busy[i - 1].index) > bkey:
                                i -= 1
                            busy.insert(i, vc)
                            vc.route = route_rows[vn][msg.dest]
                            vc.stage = VA
                            vc.ready_cycle = cycle + 1
                            routes += 1
            if removed:
                self.incoming -= removed
                self._c_buffer_writes += writes
                self._c_route += routes
        pending = self._st_pending
        if pending:
            # -- stage 4: switch traversal ---------------------------------
            remaining = self._st_scratch
            out_flit = self.out_flit
            out_credit = self.out_credit
            tail_hook = self._tail_hook
            tracer = self.tracer
            # Fault injection and tests patch claim_path per *instance*;
            # when it is unpatched (no instance attribute shadows the
            # method) the bit tests are inlined on claim-mask locals.
            patched = self.__dict__.get("claim_path")
            if patched is None:
                out_claimed = self._out_claimed
                in_claimed = self._in_claimed
            moved = 0
            for item in pending:
                st_cycle, in_port, vc = item
                if st_cycle > cycle:
                    remaining.append(item)
                    continue
                out_port = vc.route
                if patched is None:
                    out_bit = 1 << out_port
                    in_bit = 1 << in_port
                    if (out_claimed & out_bit) or (in_claimed & in_bit):
                        remaining.append(item)  # crossbar busy (circuit priority)
                        continue
                    out_claimed |= out_bit
                    in_claimed |= in_bit
                elif not patched(in_port, out_port):
                    remaining.append(item)  # crossbar busy (circuit priority)
                    continue
                flit, _arrived, credit_vc = vc.buffer.popleft()
                out_vc_index = vc.out_vc
                flit.dst_vc = out_vc_index if out_vc_index is not None else 0
                # Inlined FlitLink.send / CreditLink.send_credit (one flit
                # out plus one credit back per traversal is the per-flit
                # hot path; the bodies match link.py's exactly).
                link = out_flit[out_port]
                due = cycle + 1 + link.latency
                link._queue.append((due, flit))
                watcher = link.watcher
                if watcher is not None:
                    watcher.incoming += 1
                    wake = watcher.kernel_wake
                    if wake is not None:
                        wake(due)
                moved += 1
                if tracer is not None:
                    tracer(cycle, self, out_port, flit)
                clink = out_credit[in_port]
                cache = clink._cache
                ckey = (vc.vn << 8) | credit_vc
                credit = cache.get(ckey)
                if credit is None:
                    credit = cache[ckey] = Credit(vc.vn, credit_vc)
                due = cycle + 1 + clink.latency
                clink._queue.append((due, credit))
                watcher = clink.watcher
                if watcher is not None:
                    watcher.incoming += 1
                    wake = watcher.kernel_wake
                    if wake is not None:
                        wake(due)
                vc.granted_pending = False
                if flit.is_tail:
                    vc.out_obj.allocated_to = None
                    if tail_hook is not None:
                        tail_hook(self, in_port, flit, cycle)
                    vc.reset_for_next_packet(cycle)
                    if vc.buffer:
                        # Non-atomic buffers: the next packet is already
                        # queued; its head starts route computation now
                        # (the VC stays busy).
                        self._route_compute(vc, vc.buffer[0][0], cycle)
                    else:
                        # Inlined vc_became_idle (per-packet-tail path).
                        self._busy_vcs -= 1
                        iunit = inputs[in_port]
                        iunit.busy_count -= 1
                        iunit.busy_list.remove(vc)
            if patched is None:
                self._out_claimed = out_claimed
                self._in_claimed = in_claimed
            # Recycle the drained list as the next call's scratch.
            del pending[:]
            self._st_pending = remaining
            self._st_scratch = pending
            if moved:
                self.forwarded += moved
                self._c_buffer_reads += moved
                self._c_xbar += moved
                self._c_link += moved
                self._c_credits += moved
        if self._busy_vcs:
            # -- stages 2+3: fused switch + VC allocation ------------------
            # One pass over each port's busy list computes both the SA
            # phase-1 port winners and the VA phase-1 proposals.  The
            # fusion is decision-identical to running the two stages back
            # to back: the scans read disjoint VC sets (stage ACTIVE vs.
            # VA) through disjoint arbiters, and applying the SA grants
            # mutates only ``credits``/``granted_pending``/``_st_pending``,
            # none of which the VA phase reads.  Candidate lists
            # materialise lazily - the common single-candidate case
            # advances the arbiter directly and never appends.
            sa_codes = self._sa_codes
            sa_vcs = self._sa_vcs
            out_order = self._sa_out_order
            out_cands = self._sa_out_cands
            win_vc = self._sa_win_vc
            va_codes = self._va_codes
            va_objs = self._va_objs
            touched = self._va_touched
            alloc_vn = self._alloc_vn
            ACTIVE = _ACTIVE
            VA = _VA
            sa_found = False
            for port, unit in self._input_units:
                busy = unit.busy_list
                if not busy:
                    continue
                sa_first = None
                sa_multi = False
                for vc in busy:
                    if vc.ready_cycle > cycle:
                        continue
                    stage = vc.stage
                    if stage is ACTIVE:
                        if vc.granted_pending:
                            continue
                        buf = vc.buffer
                        if buf and buf[0][1] < cycle and vc.out_obj.credits > 0:
                            if sa_first is None:
                                sa_first = vc
                            else:
                                if not sa_multi:
                                    sa_multi = True
                                    sa_codes.append(sa_first.scode)
                                    sa_vcs.append(sa_first)
                                sa_codes.append(vc.scode)
                                sa_vcs.append(vc)
                    elif stage is VA:
                        out_vcs = outputs[vc.route].vcs[vc.vn]
                        first_ov = None
                        multi = False
                        for index in alloc_vn[vc.vn]:
                            ov = out_vcs[index]
                            if ov.allocated_to is None:
                                if first_ov is None:
                                    first_ov = ov
                                else:
                                    if not multi:
                                        multi = True
                                        va_codes.append(first_ov.code)
                                        va_objs.append(first_ov)
                                    va_codes.append(ov.code)
                                    va_objs.append(ov)
                        if first_ov is None:
                            continue
                        if multi:
                            ov = va_objs[vc.va_arb.pick_at(va_codes)]
                            del va_codes[:]
                            del va_objs[:]
                        else:
                            vc.va_arb._last = first_ov.code
                            ov = first_ov
                        props = ov.proposals
                        if not props:
                            touched.append(ov)
                        props.append(vc)
                if sa_first is not None:
                    if sa_multi:
                        winner_vc = sa_vcs[unit.sa_arb.pick_at(sa_codes)]
                        del sa_codes[:]
                        del sa_vcs[:]
                    else:
                        unit.sa_arb._last = sa_first.scode
                        winner_vc = sa_first
                    sa_found = True
                    win_vc[port] = winner_vc
                    route = winner_vc.route
                    contenders = out_cands[route]
                    if not contenders:
                        out_order.append(route)
                    contenders.append(port)
            # SA phase 2: one grant per output port.
            if sa_found:
                st_pending = self._st_pending
                local_base = self._local_base
                grants = 0
                for route in out_order:
                    contenders = out_cands[route]
                    if len(contenders) == 1:
                        winner = contenders[0]
                        outputs[route].sa_arb._last = winner
                    else:
                        arb = outputs[route].sa_arb
                        winner = contenders[arb.pick_at(contenders)]
                    del contenders[:]
                    vc = win_vc[winner]
                    win_vc[winner] = None
                    if route < local_base:
                        vc.out_obj.credits -= 1
                    vc.granted_pending = True
                    st_pending.append((cycle + 1, winner, vc))
                    grants += 1
                del out_order[:]
                self._c_sa += grants
            # VA phase 2: one grant per proposed-to output VC.
            if touched:
                grants = 0
                for ov in touched:
                    props = ov.proposals
                    if len(props) == 1:
                        vc = props[0]
                        ov.va_arb._last = vc.rcode
                    else:
                        del va_codes[:]
                        for p in props:
                            va_codes.append(p.rcode)
                        vc = props[ov.va_arb.pick_at(va_codes)]
                        del va_codes[:]
                    del props[:]
                    vc.stage = ACTIVE
                    vc.out_vc = ov.index
                    vc.out_obj = ov
                    vc.ready_cycle = cycle + 1
                    ov.allocated_to = vc.rkey
                    grants += 1
                    head = vc.buffer[0][0]
                    msg = head.msg
                    if msg.builds_circuit and vc.vn == 0:
                        # Circuit reservation runs in parallel with VA
                        # (sec. 4.1).
                        policy.on_request_va(self, vc.rkey[0], msg, cycle)
                        if self.observer is not None:
                            self.observer.router_reservation(self, msg, cycle)
                del touched[:]
                self._c_va += grants
        # -- fused sleep decision (next_wake's body, same order) -----------
        if self._st_pending:
            return cycle + 1
        if self._waiting:
            for _port, unit in self._input_units:
                if unit.wait_queue:
                    return cycle + 1
        due: Optional[int] = None
        if self._busy_vcs:
            threshold = cycle + 1
            alloc_vn = self._alloc_vn
            ACTIVE = _ACTIVE
            for _port, unit in self._input_units:
                for vc in unit.busy_list:
                    if vc.ready_cycle > threshold:
                        if due is None or vc.ready_cycle < due:
                            due = vc.ready_cycle
                        continue
                    if vc.stage is ACTIVE:
                        # granted_pending is impossible here: grants sit
                        # in _st_pending until their switch traversal.
                        if vc.buffer and vc.out_obj.credits > 0:
                            return threshold
                    else:  # VcStage.VA
                        out_vcs = outputs[vc.route].vcs[vc.vn]
                        for index in alloc_vn[vc.vn]:
                            if out_vcs[index].allocated_to is None:
                                return threshold
        if self.incoming:
            for _port, link in self._flit_pulls:
                queue = link._queue
                if queue and (due is None or queue[0][0] < due):
                    due = queue[0][0]
            for _port, link in self._credit_pulls:
                queue = link._queue
                if queue and (due is None or queue[0][0] < due):
                    due = queue[0][0]
        return due

    def _has_work(self) -> bool:
        if self._busy_vcs or self._st_pending or self.incoming:
            return True
        if self._waiting:
            for _port, unit in self._input_units:
                if unit.wait_queue:
                    return True
        return False

    def next_wake(self, cycle: int) -> Optional[int]:
        """Sleep whenever the next tick could not make forward progress.

        Beyond the obvious idle case, a *blocked* router sleeps too: a VC
        waiting on downstream credits, on body flits from upstream, or on
        an occupied output VC cannot act until an event that either
        arrives on a watched link (flit/credit sends poke ``kernel_wake``)
        or is produced by this router's own pipeline during a cycle it is
        awake for anyway (tail departures need a switch traversal, and
        ``_st_pending`` keeps the router awake through those).  Losing
        arbitration always implies some other VC won a grant, so
        ``_st_pending`` covers contention retries as well.  Skipping
        blocked cycles is also state-identical because the round-robin
        arbiters only advance on grants, never on empty candidate sets.

        A router whose only pending work is ``incoming`` traffic still on
        the wire sleeps through the wire latency: the earliest due cycle
        across its input links is exact.  Circuit-table entries need no
        wakeup of their own: expired windows self-clean lazily and
        circuit flits arrive on watched links.
        """
        if self._st_pending:
            return cycle + 1
        if self._waiting:
            for _port, unit in self._input_units:
                if unit.wait_queue:
                    return cycle + 1
        due: Optional[int] = None
        if self._busy_vcs:
            threshold = cycle + 1
            for _port, unit in self._input_units:
                for vc in unit.busy_list:
                    if vc.ready_cycle > threshold:
                        if due is None or vc.ready_cycle < due:
                            due = vc.ready_cycle
                        continue
                    if vc.stage is _ACTIVE:
                        # granted_pending is impossible here: grants sit
                        # in _st_pending until their switch traversal.
                        if vc.buffer and vc.out_obj.credits > 0:
                            return threshold
                    else:  # VcStage.VA
                        out_vcs = self.outputs[vc.route].vcs[vc.vn]
                        for index in self._alloc_vn[vc.vn]:
                            if out_vcs[index].allocated_to is None:
                                return threshold
        if self.incoming:
            for _port, link in self._flit_pulls:
                queue = link._queue
                if queue and (due is None or queue[0][0] < due):
                    due = queue[0][0]
            for _port, link in self._credit_pulls:
                queue = link._queue
                if queue and (due is None or queue[0][0] < due):
                    due = queue[0][0]
        return due

    def _overflow(self, port: int, flit: Flit, vn: int, dst_vc: int,
                  vc: InputVc) -> None:
        """Raise the pre-overhaul buffer-overflow diagnostics."""
        port_name = self.mesh.port_name(port)
        if vc.depth == 0:
            raise SimulationError(
                f"packet flit {flit!r} targeted bufferless VC "
                f"({vn},{dst_vc}) at router {self.node} port {port_name}"
            )
        raise SimulationError(
            f"buffer overflow at router {self.node} port {port_name} "
            f"vc ({vn},{dst_vc})"
        )

    def _buffer_flit(self, port: int, flit: Flit, cycle: int) -> None:
        vn = flit.msg.vn
        vc = self.inputs[port].vcs[vn][flit.dst_vc]
        if len(vc.buffer) >= vc.depth:
            self._overflow(port, flit, vn, flit.dst_vc, vc)
        vc.buffer.append((flit, cycle, flit.dst_vc))
        self._c_buffer_writes += 1
        if flit.is_head and vc.stage is _IDLE and len(vc.buffer) == 1:
            self.vc_became_busy(port, vc)
            self._route_compute(vc, flit, cycle)

    def _route_compute(self, vc: InputVc, flit: Flit, cycle: int) -> None:
        """Stage 1 route computation; the caller manages busy accounting."""
        msg = flit.msg
        vc.route = self._route_rows[msg.vn][msg.dest]
        vc.stage = _VA
        vc.ready_cycle = cycle + 1
        self._c_route += 1

    def _downstream_credit(self, vc: InputVc) -> bool:
        return vc.out_obj.credits > 0

    # ------------------------------------------------------------------
    # Introspection used by tests.
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return sum(
            len(vc.buffer)
            for _port, unit in self._input_units
            for vn_row in unit.vcs
            for vc in vn_row
        )

    def circuit_entries(self) -> int:
        total = 0
        for _port, unit in self._input_units:
            if unit.circuit_table is not None:
                total += len(unit.circuit_table.entries)
        return total


class ReferenceRouter(Router):
    """Pre-overhaul router pipeline, kept for A/B equivalence runs.

    Every stage reproduces the implementation this PR replaced:
    ``ArbiterPool``-backed separable allocation with the reference
    round-robin arbiter, :func:`route_for_vn` recomputed per packet,
    generator-based link drains, and a ``Stats.bump`` per flit event.
    Built by :class:`~repro.noc.network.Network` when
    ``config.noc.fastpath`` is False.
    """

    #: Opt out of the kernel's fused tick+next_wake protocol: the
    #: reference pipeline keeps the separate tick / next_wake calls.
    tick_wake = None

    def __init__(self, node: int, mesh: Topology, config: "SystemConfig",
                 policy, stats: Stats) -> None:
        super().__init__(node, mesh, config, policy, stats)
        self._va_p1 = ArbiterPool(ReferenceRoundRobinArbiter)
        self._va_p2 = ArbiterPool(ReferenceRoundRobinArbiter)
        self._sa_in = ArbiterPool(ReferenceRoundRobinArbiter)
        self._sa_out = ArbiterPool(ReferenceRoundRobinArbiter)
        # The reference pipeline calls every policy hook unconditionally.
        self._arrival_hook = policy.handle_arrival
        self._tail_hook = policy.on_tail_departure

    def tick(self, cycle: int) -> None:
        """Pre-overhaul tick: one method call per pipeline stage."""
        if not self._has_work():
            return
        self._out_claimed = 0
        self._in_claimed = 0
        incoming = self.incoming
        if incoming:
            self._pull_credits(cycle)
        if self._waiting:
            self.policy.retry_waiting(self, cycle)
        if incoming:
            self._pull_flits(cycle)
        if self._st_pending:
            self._switch_traversal(cycle)
        if self._busy_vcs:
            self._allocate(cycle)

    def forward_flit(self, out_port: int, flit: Flit, cycle: int) -> None:
        self.out_flit[out_port].send(flit, cycle)
        self.forwarded += 1
        self.stats.bump("noc.xbar_traversals")
        self.stats.bump("noc.link_flits")
        if self.tracer is not None:
            self.tracer(cycle, self, out_port, flit)

    def return_credit(self, in_port: int, vn: int, vc_index: int, cycle: int) -> None:
        self.out_credit[in_port].send_credit(vn, vc_index, cycle)
        self.stats.bump("noc.credits_sent")

    # -- credits ---------------------------------------------------------
    def _pull_credits(self, cycle: int) -> None:
        for port, link in self._credit_pulls:
            queue = link._queue
            if not queue or queue[0][0] > cycle:
                continue
            for credit in link.arrivals(cycle):
                if credit.is_buffer_credit:
                    self.outputs[port].vcs[credit.vn][credit.vc].credits += 1
                if credit.undo_key is not None:
                    self.policy.handle_undo(self, port, credit.undo_key, cycle)

    # -- stage 1 ---------------------------------------------------------
    def _pull_flits(self, cycle: int) -> None:
        for port, link in self._flit_pulls:
            queue = link._queue
            if not queue or queue[0][0] > cycle:
                continue
            for flit in link.arrivals(cycle):
                if self.policy.handle_arrival(self, port, flit, cycle):
                    if self.observer is not None:
                        self.observer.router_circuit_hit(self, flit, cycle)
                    continue
                self._buffer_flit(port, flit, cycle)

    def _buffer_flit(self, port: int, flit: Flit, cycle: int) -> None:
        vn = flit.msg.vn
        vc = self.inputs[port].vcs[vn][flit.dst_vc]
        if vc.depth == 0:
            raise SimulationError(
                f"packet flit {flit!r} targeted bufferless VC "
                f"({vn},{flit.dst_vc}) at router {self.node} port "
                f"{self.mesh.port_name(port)}"
            )
        if len(vc.buffer) >= vc.depth:
            raise SimulationError(
                f"buffer overflow at router {self.node} port "
                f"{self.mesh.port_name(port)} vc ({vn},{flit.dst_vc})"
            )
        vc.buffer.append((flit, cycle, flit.dst_vc))
        self.stats.bump("noc.buffer_writes")
        if flit.is_head and vc.stage is VcStage.IDLE and len(vc.buffer) == 1:
            self.vc_became_busy(port, vc)
            self._route_compute(vc, flit, cycle)

    def _route_compute(self, vc: InputVc, flit: Flit, cycle: int) -> None:
        vc.route = route_for_vn(self.mesh, flit.msg.vn, self.node,
                                flit.msg.dest, self._request_xy)
        vc.stage = VcStage.VA
        vc.ready_cycle = cycle + 1
        self.stats.bump("noc.route_computations")

    def route_reply(self, dest: int) -> int:
        return route_for_vn(self.mesh, 1, self.node, dest, self._request_xy)

    # -- stage 4 ---------------------------------------------------------
    def _switch_traversal(self, cycle: int) -> None:
        if not self._st_pending:
            return
        remaining: List[Tuple[int, int, InputVc]] = []
        for item in self._st_pending:
            st_cycle, in_port, vc = item
            if st_cycle > cycle:
                remaining.append(item)
                continue
            vn = vc.vn
            out_port = vc.route
            assert out_port is not None and vc.buffer
            if not self.claim_path(in_port, out_port):
                remaining.append(item)  # crossbar busy (circuit priority)
                continue
            flit, _arrived, credit_vc = vc.buffer.popleft()
            self.stats.bump("noc.buffer_reads")
            flit.dst_vc = vc.out_vc if vc.out_vc is not None else 0
            self.forward_flit(out_port, flit, cycle)
            self.return_credit(in_port, vn, credit_vc, cycle)
            vc.granted_pending = False
            if flit.is_tail:
                out_vc = self.outputs[out_port].vcs[vn][vc.out_vc]
                out_vc.allocated_to = None
                self.policy.on_tail_departure(self, in_port, flit, cycle)
                vc.reset_for_next_packet(cycle)
                if vc.buffer:
                    next_head = vc.buffer[0][0]
                    assert next_head.is_head
                    self._route_compute(vc, next_head, cycle)
                else:
                    self.vc_became_idle(in_port, vc)
        self._st_pending = remaining

    # -- stages 2+3 -------------------------------------------------------
    def _allocate(self, cycle: int) -> None:
        """The pre-overhaul pipeline ran the stages as separate passes."""
        self._switch_allocation(cycle)
        self._vc_allocation(cycle)

    def _switch_allocation(self, cycle: int) -> None:
        if not self._busy_vcs:
            return
        port_winners = {}
        for port, unit in self._input_units:
            candidates: List[Tuple[int, int]] = []
            for vc in unit.busy_list:
                if (
                    vc.stage is VcStage.ACTIVE
                    and not vc.granted_pending
                    and vc.ready_cycle <= cycle
                    and vc.head_ready(cycle)
                    and self._downstream_credit(vc)
                ):
                    candidates.append((vc.vn, vc.index))
            if candidates:
                choice = self._sa_in.pick(port, candidates)
                if choice is not None:
                    port_winners[port] = choice
        if not port_winners:
            return
        by_output = {}
        for port, (vn, vc_index) in port_winners.items():
            route = self.inputs[port].vcs[vn][vc_index].route
            by_output.setdefault(route, []).append(port)
        for out_port, contenders in by_output.items():
            winner = self._sa_out.pick(out_port, contenders)
            if winner is None:
                continue
            vn, vc_index = port_winners[winner]
            vc = self.inputs[winner].vcs[vn][vc_index]
            out_vc = self.outputs[out_port].vcs[vn][vc.out_vc]
            if out_port < self._local_base:
                out_vc.credits -= 1
            vc.granted_pending = True
            self._st_pending.append((cycle + 1, winner, vc))
            self.stats.bump("noc.sa_grants")

    # -- stage 2 ---------------------------------------------------------
    def _vc_allocation(self, cycle: int) -> None:
        if not self._busy_vcs:
            return
        requests = {}
        for port, unit in self._input_units:
            for vc in unit.busy_list:
                if vc.stage is not VcStage.VA or vc.ready_cycle > cycle:
                    continue
                options = [
                    (vc.route, vc.vn, index)
                    for index in self._alloc_vn[vc.vn]
                    if self.outputs[vc.route].vcs[vc.vn][index].is_free
                ]
                if options:
                    requests[(port, vc.vn, vc.index)] = options
        if not requests:
            return
        grants = reference_two_phase_allocate(requests, self._va_p1, self._va_p2)
        for (port, vn, vc_index), (out_port, _vn, out_index) in grants.items():
            vc = self.inputs[port].vcs[vn][vc_index]
            vc.stage = VcStage.ACTIVE
            vc.out_vc = out_index
            vc.out_obj = self.outputs[out_port].vcs[vn][out_index]
            vc.ready_cycle = cycle + 1
            self.outputs[out_port].vcs[vn][out_index].allocated_to = (
                port, vn, vc_index,
            )
            self.stats.bump("noc.va_grants")
            head = vc.head_flit()
            assert head is not None
            if head.msg.builds_circuit and vn == 0:
                # Circuit reservation happens in parallel with VA (sec. 4.1).
                self.policy.on_request_va(self, port, head.msg, cycle)
                if self.observer is not None:
                    self.observer.router_reservation(self, head.msg, cycle)
