"""Simulation kernel: cycle-driven scheduler, configuration, RNG, statistics."""

from repro.sim.config import (
    CacheConfig,
    CircuitConfig,
    CircuitMode,
    NocConfig,
    SystemConfig,
    Variant,
    variant_config,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import MeanStat, Stats

__all__ = [
    "CacheConfig",
    "CircuitConfig",
    "CircuitMode",
    "DeterministicRng",
    "MeanStat",
    "NocConfig",
    "Simulator",
    "Stats",
    "SystemConfig",
    "Variant",
    "variant_config",
]
