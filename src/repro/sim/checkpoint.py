"""Deterministic checkpoint/restart of complete simulator state.

A checkpoint is a pickle of the *entire* live object graph - kernel wake
heap and awake set, RNG streams, router/NI/coherence/driver state,
batched :class:`~repro.sim.stats.Stats` counters, in-flight messages -
plus a small run-state dict recording where the phase script (warmup ->
drain -> measure) stood.  Restoring unpickles the graph and re-creates
the wiring closures, then run control re-enters the interrupted phase at
the exact ``run_until`` chunk boundary the checkpoint was taken on, so a
resumed run is bit-identical (stats, histograms, finish cycle) to an
uninterrupted one.

Why pickling the graph is safe here:

* every *stateful* callback in the simulation is a bound method or a
  ``functools.partial`` of one (controller pending events, circuit
  ``circuit_resolved`` hooks, stats flushers) - these pickle by
  reference within the graph, preserving identity;
* the remaining closures are pure *wiring* (``kernel_wake`` pokes, tile
  dispatch, address maps): they close over nothing that is not
  recreatable from the restored objects, so the pickler reduces the
  known ones to ``None`` and :meth:`repro.system.CmpSystem.reattach`
  rebuilds them after unpickling;
* any closure *not* on that allowlist is a state-carrying callable this
  module does not know how to rebuild - pickling fails loudly with
  :class:`UnpicklableStateError` naming the closure, never silently
  corrupting a checkpoint.

File format (version + integrity before trust):

``MAGIC | header_len:u32 | header JSON | payload`` - the header carries
the schema version, a config fingerprint, the capture cycle and the
payload's SHA-256.  Files are written to a temp name and published with
``os.replace`` (atomic on POSIX), so a reader only ever sees a complete
old or complete new checkpoint.  Readers validate magic, schema,
fingerprint and checksum in that order and raise a typed, pinpointed
error for each failure mode.

Capture points and bit-identity: ``run_until(done, ...)`` evaluates
``done()`` on exact ``check_interval`` boundaries relative to the phase
start (the *anchor*).  :class:`CheckpointWatchdog` therefore only
captures on those boundaries (its ``next_due`` also keeps the kernel's
quiet-gap fast-forward exact), and resumed run control re-derives the
remaining chunk boundaries from the same anchor - the resumed schedule
of ``done()`` checks, watchdog hooks and component ticks is identical to
the uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import signal
import struct
import types
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.sim.kernel import SimulationError

#: On-disk layout version; bump on incompatible change.
SCHEMA_VERSION = 1

MAGIC = b"RPROCKPT"

#: Default deadline for an instruction phase (mirrors run_instructions).
MAX_RUN_CYCLES = 50_000_000
#: Default deadline for the post-warmup drain (mirrors CmpSystem.drain).
DRAIN_CYCLES = 2_000_000


class CheckpointError(SimulationError):
    """Base for every checkpoint/restore failure (always pinpointed)."""


class CorruptCheckpointError(CheckpointError):
    """The file is damaged: bad magic, torn header, checksum mismatch."""


class IncompatibleCheckpointError(CheckpointError):
    """The file is intact but unusable: stale schema or config mismatch."""


class UnpicklableStateError(CheckpointError):
    """The live object graph holds state this module cannot serialise."""


# ----------------------------------------------------------------------
# Pickling policy.
# ----------------------------------------------------------------------

def _dropped_closure() -> None:
    """Reconstruction target for allowlisted wiring closures."""
    return None


#: Closures that are pure wiring: reduced to None at pickle time and
#: re-created by ``CmpSystem.reattach()`` / ``Simulator.rewire_wakes()``.
_REWIRED_CLOSURES = frozenset({
    "Simulator._make_wake.<locals>.wake",
    "CmpSystem._make_dispatch.<locals>.dispatch",
    "CmpSystem._make_home_of.<locals>.home_of",
    "CmpSystem._make_mc_of.<locals>.mc_of",
})


class _StatePickler(pickle.Pickler):
    """Pickler enforcing the closure policy documented in the module."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            qualname = obj.__qualname__
            if qualname in _REWIRED_CLOSURES:
                return (_dropped_closure, ())
            if obj.__closure__ is not None or "<locals>" in qualname \
                    or "<lambda>" in qualname:
                raise UnpicklableStateError(
                    f"simulation state holds the closure "
                    f"{obj.__module__}.{qualname}, which the checkpoint "
                    f"layer does not know how to rebuild; convert it to a "
                    f"bound method / functools.partial, or add it to the "
                    f"rewired-closure allowlist with matching reattach "
                    f"support"
                )
        return NotImplemented


def dumps_state(obj) -> bytes:
    """Pickle ``obj`` under the checkpoint closure policy."""
    buffer = io.BytesIO()
    try:
        _StatePickler(buffer, pickle.HIGHEST_PROTOCOL).dump(obj)
    except CheckpointError:
        raise
    except Exception as exc:
        raise UnpicklableStateError(
            f"simulation state is not picklable: {exc!r}"
        ) from exc
    return buffer.getvalue()


def loads_state(blob: bytes):
    """Inverse of :func:`dumps_state` (payload bytes -> object graph)."""
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise CorruptCheckpointError(
            f"checkpoint payload does not unpickle: {exc!r}"
        ) from exc


def fingerprint(*parts) -> str:
    """Stable hash of everything a checkpoint must agree with its run on."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# System-level capture / restore.
# ----------------------------------------------------------------------

def capture_system(system, run_state: dict, **extra) -> bytes:
    """Serialise a :class:`~repro.system.CmpSystem` plus run position.

    ``run_state`` must carry ``cycle`` (the boundary the snapshot
    represents: the simulator resumes *about to execute* that cycle).
    ``extra`` rides along for engine-specific state (the sharded engine
    adds its message-reassembly table).
    """
    import repro.noc.flit as flit_mod

    payload = {"system": system, "run": dict(run_state),
               "msg_ids": flit_mod._msg_ids}
    payload.update(extra)
    return dumps_state(payload)


def restore_system(blob: bytes) -> dict:
    """Rebuild a captured system: unpickle, reinstall uids, rewire.

    Returns the payload dict with ``system`` fully reattached and the
    simulator clock advanced to the captured boundary.
    """
    data = loads_state(blob)
    if not isinstance(data, dict) or "system" not in data \
            or "run" not in data:  # pragma: no cover - format trap
        raise CorruptCheckpointError(
            "checkpoint payload is not a system capture"
        )
    import repro.noc.flit as flit_mod

    flit_mod._msg_ids = data["msg_ids"]
    system = data["system"]
    system.reattach()
    system.sim.cycle = data["run"]["cycle"]
    return data


# ----------------------------------------------------------------------
# File format.
# ----------------------------------------------------------------------

def write_checkpoint(path: str, payload: bytes, *, kind: str,
                     config_hash: str, cycle: int) -> None:
    """Atomically publish ``payload`` with a versioned, checksummed header."""
    header = json.dumps({
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "config": config_hash,
        "cycle": cycle,
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }).encode()
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<I", len(header)))
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def read_checkpoint(path: str, *, kind: Optional[str] = None,
                    config_hash: Optional[str] = None) -> Tuple[dict, bytes]:
    """Validate and read a checkpoint file -> ``(header, payload)``.

    Every failure mode raises its own typed error naming the file and
    the exact mismatch; a checkpoint is never silently reinterpreted.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(raw) < len(MAGIC) + 4 or not raw.startswith(MAGIC):
        raise CorruptCheckpointError(
            f"{path} is not a checkpoint file (bad magic)"
        )
    (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
    header_end = len(MAGIC) + 4 + header_len
    if header_end > len(raw):
        raise CorruptCheckpointError(
            f"{path} is truncated inside its header "
            f"({len(raw)} bytes, header ends at {header_end})"
        )
    try:
        header = json.loads(raw[len(MAGIC) + 4:header_end])
    except ValueError as exc:
        raise CorruptCheckpointError(
            f"{path} has an unparsable header: {exc}"
        ) from exc
    if header.get("schema") != SCHEMA_VERSION:
        raise IncompatibleCheckpointError(
            f"{path} has schema {header.get('schema')!r}; this build "
            f"reads schema {SCHEMA_VERSION}"
        )
    if kind is not None and header.get("kind") != kind:
        raise IncompatibleCheckpointError(
            f"{path} is a {header.get('kind')!r} checkpoint, expected "
            f"{kind!r}"
        )
    if config_hash is not None and header.get("config") != config_hash:
        raise IncompatibleCheckpointError(
            f"{path} was captured under a different configuration "
            f"(fingerprint {header.get('config')!r}, expected "
            f"{config_hash!r}); refusing to resume"
        )
    payload = raw[header_end:]
    if len(payload) != header.get("payload_bytes"):
        raise CorruptCheckpointError(
            f"{path} is truncated: payload is {len(payload)} bytes, "
            f"header promises {header.get('payload_bytes')}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CorruptCheckpointError(
            f"{path} failed its checksum (payload sha256 {digest[:12]}..., "
            f"header promises {str(header.get('payload_sha256'))[:12]}...)"
        )
    return header, payload


# ----------------------------------------------------------------------
# Periodic capture watchdog.
# ----------------------------------------------------------------------

def _chaos_kill_after() -> Optional[int]:
    """Test hook (chaos campaign): SIGKILL self after the Nth capture."""
    raw = os.environ.get("REPRO_CHAOS_KILL_AFTER", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CHAOS_KILL_AFTER must be an integer, got {raw!r}"
        ) from None


class CheckpointWatchdog:
    """Simulator hook capturing a checkpoint every ``interval`` cycles.

    Kernel-friendly: ``next_due`` reports the cycle before the next
    aligned capture boundary, so globally-quiet gaps still fast-forward
    and the hook runs exactly where it must.  The watchdog is read-only
    with respect to simulated state (it never wakes, schedules or
    mutates components), so runs with and without it are bit-identical.

    Captures land only on cycles ``anchor + k * check_interval`` of the
    current phase - the exact boundaries ``run_until`` evaluates
    ``done()`` on - which is what makes resumed chunk schedules match
    the uninterrupted run (see the module docstring).
    """

    def __init__(self, system, run_state: dict, path: str, interval: int,
                 config_hash: str, kind: str = "run",
                 on_capture: Optional[Callable[[int], None]] = None) -> None:
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.system = system
        self.run_state = run_state
        self.path = path
        self.interval = interval
        self.config_hash = config_hash
        self.kind = kind
        self.checkpoints_written = 0
        #: Tests: also keep each capture as ``<path>.<n>`` so intermediate
        #: checkpoints survive the atomic overwrite of the newest one.
        self.keep_history = False
        self._on_capture = on_capture
        self._chaos_kill = _chaos_kill_after()
        self._anchor = 0
        self._ci = 64
        self._next: Optional[int] = None

    def set_phase(self, anchor: int, check_interval: int,
                  from_cycle: Optional[int] = None) -> None:
        """(Re)align capture boundaries to a phase's anchor and cadence."""
        self._anchor = anchor
        self._ci = check_interval
        base = (anchor if from_cycle is None else from_cycle) + self.interval
        steps = max(1, -(-(base - anchor) // check_interval))
        self._next = anchor + steps * check_interval

    def next_due(self, cycle: int) -> int:
        """Bound for the kernel's quiet-gap fast-forward."""
        if self._next is None:  # pragma: no cover - unarmed between phases
            return cycle + (1 << 62)
        return self._next - 1

    def __call__(self, cycle: int) -> None:
        # Hooks run after the components of ``cycle`` ticked; the state
        # now corresponds to "about to execute cycle + 1", which is the
        # boundary the capture is stamped with.
        if self._next is None or cycle + 1 != self._next:
            return
        self.capture(cycle + 1)
        base = cycle + 1 + self.interval
        steps = max(1, -(-(base - self._anchor) // self._ci))
        self._next = self._anchor + steps * self._ci

    def capture(self, at_cycle: int) -> None:
        """Write one checkpoint representing the state at ``at_cycle``."""
        run_state = dict(self.run_state)
        run_state["cycle"] = at_cycle
        payload = capture_system(self.system, run_state)
        write_checkpoint(self.path, payload, kind=self.kind,
                         config_hash=self.config_hash, cycle=at_cycle)
        self.checkpoints_written += 1
        if self.keep_history:
            shutil.copyfile(
                self.path, f"{self.path}.{self.checkpoints_written:03d}"
            )
        if self._on_capture is not None:
            self._on_capture(at_cycle)
        if self._chaos_kill is not None \
                and self.checkpoints_written >= self._chaos_kill:
            os.kill(os.getpid(), signal.SIGKILL)  # chaos: die mid-run


# ----------------------------------------------------------------------
# Phase-scripted run control (single-process engine).
# ----------------------------------------------------------------------

@dataclass
class CheckpointPolicy:
    """Where and how often one run checkpoints."""

    directory: str
    interval: int
    config_hash: str

    @property
    def path(self) -> str:
        return os.path.join(self.directory, "run.ckpt")

    def has_checkpoint(self) -> bool:
        return os.path.exists(self.path)

    def discard(self) -> None:
        """Remove this run's checkpoint artifacts (called on success)."""
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name == "run.ckpt" or name.startswith("run.ckpt."):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        try:
            os.rmdir(self.directory)
        except OSError:
            pass  # foreign files or shared directory: leave it


def _arm_phase(system, run_state: dict, watchdog: CheckpointWatchdog,
               phase: str, deadline_cycles: int, check_interval: int) -> None:
    cycle = system.sim.cycle
    run_state.update(phase=phase, anchor=cycle,
                     deadline=cycle + deadline_cycles, ci=check_interval)
    watchdog.set_phase(cycle, check_interval)


def run_checkpointed(system, warmup_instructions: int,
                     measure_instructions: int, policy: CheckpointPolicy,
                     max_measure_cycles: Optional[int] = None,
                     keep_history: bool = False) -> Tuple[int, int]:
    """Run the standard warmup+measure script with periodic checkpoints.

    Phase-for-phase equivalent of ``system.warmup(...)`` followed by
    ``system.run_instructions(...)`` - same targets, same deadlines, same
    check intervals - so results are bit-identical to the plain path.
    Returns ``(start_cycle, finish_cycle)``.
    """
    max_measure = max_measure_cycles or MAX_RUN_CYCLES
    run_state = {
        "phase": None, "start": None,
        "warmup": warmup_instructions, "measure": measure_instructions,
        "max_measure_cycles": max_measure,
    }
    watchdog = CheckpointWatchdog(system, run_state, policy.path,
                                  policy.interval, policy.config_hash)
    watchdog.keep_history = keep_history
    sim = system.sim
    sim.add_watchdog(watchdog)
    try:
        if warmup_instructions:
            system.functional_prewarm()
            for core in system.cores:
                core.set_target(warmup_instructions)
            _arm_phase(system, run_state, watchdog, "warmup",
                       MAX_RUN_CYCLES, 64)
            system.continue_instructions(run_state["deadline"])
            _arm_phase(system, run_state, watchdog, "drain",
                       DRAIN_CYCLES, 16)
            system.continue_drain(run_state["deadline"])
            system.stats.reset()
        start = sim.cycle
        run_state["start"] = start
        for core in system.cores:
            core.set_target(measure_instructions)
        _arm_phase(system, run_state, watchdog, "measure", max_measure, 64)
        finish = system.continue_instructions(run_state["deadline"])
    finally:
        sim.remove_watchdog(watchdog)
    return start, finish


def resume_checkpointed(system, run_state: dict, policy: CheckpointPolicy,
                        keep_history: bool = False) -> Tuple[int, int]:
    """Re-enter the phase script of a restored system mid-phase.

    ``system``/``run_state`` come from :func:`restore_system` on
    ``policy.path``.  The interrupted phase continues to its original
    absolute deadline with chunk boundaries re-derived from the original
    anchor, then the remaining phases run exactly as a fresh run would -
    so the resumed run's stats, histograms and finish cycle are
    bit-identical to an uninterrupted run.  Returns
    ``(start_cycle, finish_cycle)``.
    """
    watchdog = CheckpointWatchdog(system, run_state, policy.path,
                                  policy.interval, policy.config_hash)
    watchdog.keep_history = keep_history
    sim = system.sim
    phase = run_state["phase"]
    if phase not in ("warmup", "drain", "measure"):  # pragma: no cover
        raise CorruptCheckpointError(
            f"checkpoint records unknown phase {phase!r}"
        )
    watchdog.set_phase(run_state["anchor"], run_state["ci"],
                       from_cycle=sim.cycle)
    sim.add_watchdog(watchdog)
    try:
        if phase == "warmup":
            system.continue_instructions(run_state["deadline"])
            _arm_phase(system, run_state, watchdog, "drain",
                       DRAIN_CYCLES, 16)
            system.continue_drain(run_state["deadline"])
            system.stats.reset()
            phase = None
        elif phase == "drain":
            system.continue_drain(run_state["deadline"])
            system.stats.reset()
            phase = None
        if phase is None:
            start = sim.cycle
            run_state["start"] = start
            for core in system.cores:
                core.set_target(run_state["measure"])
            _arm_phase(system, run_state, watchdog, "measure",
                       run_state["max_measure_cycles"], 64)
        else:
            start = run_state["start"]
        finish = system.continue_instructions(run_state["deadline"])
    finally:
        sim.remove_watchdog(watchdog)
    return start, finish
