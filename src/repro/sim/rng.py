"""Deterministic random number streams.

Every stochastic element of the simulator (workload generators, tie
breaking, multiprogrammed mix construction) draws from a named stream that
is derived from the experiment seed, so that any run is exactly
reproducible from ``(SystemConfig.seed, stream name)`` alone.
"""

from __future__ import annotations

import hashlib
import random


def _stream_seed(seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """Factory for named, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """Return an independent RNG for ``name`` (stable across runs)."""
        return random.Random(_stream_seed(self.seed, name))
