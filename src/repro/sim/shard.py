"""Sharded-mesh parallel simulation: one run spread across processes.

The mesh is split into horizontal row bands (``repro.partition.shard_bands``)
and each band's activity kernel runs in its own worker process.  The
architecture's own safety contract - every cross-component channel
carries >= 1 cycle of latency - is exactly the lookahead a conservative
parallel discrete-event simulation needs: a flit placed on a boundary
link during cycle ``c`` cannot be observed by the receiving router before
cycle ``c + 1 + link_latency``.  Workers therefore advance in lockstep
windows of ``W`` cycles (``W <= link_latency + 1``) and exchange all
boundary flits/credits at window barriers; every transferred item lands
on the receiving replica's link queue strictly before its due cycle, so
no shard can ever observe an event out of order.

Determinism / bit-identity argument (gated by
``tests/test_shard_equivalence.py``):

* every worker builds the *complete* :class:`~repro.system.CmpSystem`
  from the same config/seed - construction and functional prewarm
  consume the deterministic RNG streams identically everywhere - but
  registers only its local band with the kernel.  Foreign components
  keep ``kernel_wake = None`` and never tick;
* boundary channels are the existing :class:`~repro.noc.link.FlitLink` /
  :class:`~repro.noc.link.CreditLink` objects: the sender harvests its
  outbound queues at each barrier, the receiver appends the items - with
  identical ``due`` cycles - to its replica of the same link object, so
  router/NI hot paths run unchanged;
* local components tick in a subsequence of the single-process
  registration order, and window barriers land exactly on the
  single-process ``run_until`` check boundaries, so completion cycles
  and every statistic are bit-identical;
* per-shard :class:`~repro.sim.stats.Stats` are merged by ascending
  shard index (all summed quantities are integer-valued, so merged
  means/histograms are exact).

Message identity across the wire: flits are pickled per destination
batch, and the receiver canonicalises unpickled copies by ``uid`` (each
worker draws uids from a disjoint range) so all flits of one message
share one :class:`~repro.noc.flit.Message` object again, exactly as in a
single process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.kernel import DeadlockError, SimulationError
from repro.sim.stats import Stats

#: Single-process ``run_until`` cadences the barriers must subdivide:
#: 64 for run_instructions, 16 for drain (both divisible by 16).
_BASE_INTERVAL = 16

#: Progress-stall window for the coordinator's global deadlock watchdog
#: (mirrors CmpSystem.run_instructions' ProgressWatchdog default).
_WATCHDOG_WINDOW = 500_000

#: Seconds the coordinator waits on a silent worker before declaring it
#: dead.  Generous: a worker only goes silent mid-window, and windows
#: are a handful of simulated cycles.
_RECV_TIMEOUT = 1200.0


def shard_window(link_latency: int) -> int:
    """Barrier window width for a given boundary-link latency.

    The safe lookahead is ``link_latency + 1`` cycles (send at ``t`` ->
    due ``t + 1 + latency``).  The window must also divide the
    single-process check intervals (16 and 64) so barriers land exactly
    on ``run_until`` chunk boundaries; we take the largest divisor of 16
    not exceeding the lookahead.
    """
    for width in (16, 8, 4, 2, 1):
        if width <= link_latency + 1 and _BASE_INTERVAL % width == 0:
            return width
    raise AssertionError("unreachable: 1 always qualifies")


def resolve_shards(config) -> int:
    """Effective shard count: ``config.sim.shards`` or ``REPRO_SHARDS``."""
    shards = config.sim.shards
    if shards == 0:
        raw = os.environ.get("REPRO_SHARDS", "").strip()
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            shards = -1
        if shards < 1:
            raise ValueError(
                f"REPRO_SHARDS must be a positive integer, got {raw!r}"
            )
    if shards > config.mesh_side:
        raise ValueError(
            f"{shards} shards exceed the mesh side {config.mesh_side} "
            "(shards are horizontal row bands of >= 1 row)"
        )
    return shards


@dataclass
class ShardResult:
    """Outcome of one sharded run (coordinator side)."""

    stats: Stats
    start_cycle: int
    finish_cycle: int
    end_cycle: int
    n_shards: int
    window: int
    wall_seconds: float
    coordinator_cpu_seconds: float
    worker_cpu_seconds: List[float] = field(default_factory=list)
    worker_cpu_seconds_measure: List[float] = field(default_factory=list)

    @property
    def exec_cycles(self) -> int:
        return self.finish_cycle - self.start_cycle


# ----------------------------------------------------------------------
# Stats marshalling: Stats objects hold unpicklable flusher closures, so
# workers ship a plain snapshot and the coordinator rebuilds.
# ----------------------------------------------------------------------

def _stats_snapshot(stats: Stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def _stats_restore(snapshot) -> Stats:
    counters, means, histograms = snapshot
    stats = Stats()
    stats.counters.update(counters)
    for key, (total, count) in means.items():
        stat = stats.means[key]
        stat.total = total
        stat.count = count
    for key, (width, buckets, count) in histograms.items():
        hist = stats.histograms[key]
        hist.bucket_width = width
        hist.buckets.update(buckets)
        hist.count = count
    return stats


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------

class _ShardAborted(SimulationError):
    """Coordinator told this worker to stop (another shard failed)."""


class _ShardWorker:
    """One band of the mesh, simulated in this process."""

    def __init__(self, conn, params: dict, index: int) -> None:
        self.conn = conn
        self.index = index
        self.params = params
        self.window = params["window"]

        # Disjoint uid ranges per shard: uids are only compared for
        # equality (reassembly maps, circuit keys), never ordered, so
        # the offset cannot affect simulated behaviour.
        import repro.noc.flit as flit_mod

        flit_mod._msg_ids = itertools.count(index << 48)

        from repro.cpu.workloads import workload_by_name
        from repro.system import CmpSystem

        assignment = params["assignment"]
        local = frozenset(
            node for node, shard in enumerate(assignment) if shard == index
        )
        self.system = CmpSystem(
            params["config"],
            workload_by_name(params["workload"]),
            local_nodes=local,
        )
        self.net = self.system.network
        self.net.shard_flits_imported = 0
        self.net.shard_flits_exported = 0
        self.local_cores = [
            tile.core for tile in self.system.tiles
            if tile.core is not None and tile.node in local
        ]
        self.monitor = None
        if params["check"]:
            from repro.validate.invariants import InvariantMonitor

            self.monitor = InvariantMonitor(
                self.net, system=self.system,
                interval=params["check_interval"], local_nodes=local,
            ).attach(self.system.sim)

        # Boundary channel table, identical in every worker: channel
        # 2i / 2i+1 are the flit / credit links of canonical edge i.
        # For a directed edge (n, port, m): flits flow on
        # routers[n].out_flit[port] (owner: shard(n)) and their credits
        # return on routers[n].in_credit[port] (owner: shard(m)).
        from repro.partition import boundary_links

        routers = self.net.routers
        #: (channel, link, destination shard, is_flit) we harvest from.
        self._out_channels: List[Tuple[int, object, int, bool]] = []
        #: channel -> (link, is_flit) we append into.
        self._in_channels: Dict[int, Tuple[object, bool]] = {}
        for i, (n, port, m) in enumerate(boundary_links(self.net.mesh,
                                                        assignment)):
            flit_chan, credit_chan = 2 * i, 2 * i + 1
            flit_link = routers[n].out_flit[port]
            credit_link = routers[n].in_credit[port]
            if assignment[n] == index:
                self._out_channels.append(
                    (flit_chan, flit_link, assignment[m], True))
                self._in_channels[credit_chan] = (credit_link, False)
            if assignment[m] == index:
                self._in_channels[flit_chan] = (flit_link, True)
                self._out_channels.append(
                    (credit_chan, credit_link, assignment[n], False))

        #: uid -> [canonical Message, flits seen] for in-flight imports.
        self._canon: Dict[int, list] = {}

    # -- boundary transfer ---------------------------------------------
    def _harvest(self) -> Tuple[Dict[int, bytes], int]:
        """Drain every outbound boundary queue into per-shard pickles.

        Returns ``(blobs by destination shard, flits exported)``.
        Mirrors :meth:`FlitLink.arrivals` bookkeeping on the foreign
        watcher replica (decrement ``incoming``) so replica state stays
        internally consistent.
        """
        per_dest: Dict[int, list] = {}
        exported = 0
        for channel, link, dest, is_flit in self._out_channels:
            queue = link._queue
            if not queue:
                continue
            items = list(queue)
            queue.clear()
            watcher = link.watcher
            if watcher is not None:
                watcher.incoming -= len(items)
            if is_flit:
                exported += len(items)
                for _due, flit in items:
                    # The circuit_resolved hook is a protocol-layer
                    # closure (unpicklable) that fires exactly once at
                    # origin-NI injection - strictly before the message's
                    # flits exist on any wire - so it is always spent by
                    # the time a flit crosses a shard boundary.
                    payload = flit.msg.payload
                    if payload is not None and getattr(
                            payload, "circuit_resolved", None) is not None:
                        payload.circuit_resolved = None
            per_dest.setdefault(dest, []).append((channel, items))
        if exported:
            self.net.shard_flits_exported += exported
        blobs = {
            dest: pickle.dumps(entries, pickle.HIGHEST_PROTOCOL)
            for dest, entries in per_dest.items()
        }
        return blobs, exported

    def _apply(self, blobs: List[bytes]) -> None:
        """Append transferred items to the local replicas of their links."""
        canon = self._canon
        imported = 0
        for blob in blobs:
            for channel, items in pickle.loads(blob):
                link, is_flit = self._in_channels[channel]
                queue = link._queue
                watcher = link.watcher
                wake = watcher.kernel_wake
                for due, item in items:
                    if is_flit:
                        msg = item.msg
                        entry = canon.get(msg.uid)
                        if entry is None:
                            if msg.n_flits > 1:
                                canon[msg.uid] = [msg, 1]
                        else:
                            item.msg = entry[0]
                            entry[1] += 1
                            if entry[1] >= entry[0].n_flits:
                                del canon[msg.uid]
                    queue.append((due, item))
                    watcher.incoming += 1
                    if wake is not None:
                        wake(due)
                if is_flit:
                    imported += len(items)
        if imported:
            self.net.shard_flits_imported += imported

    def _barrier(self, flag_fn=None, wd: bool = False) -> Optional[bool]:
        """Exchange boundary traffic with every other shard.

        ``flag_fn(exported)`` - evaluated after the harvest, before the
        imports are applied - supplies this shard's vote for the global
        AND-reduced done/idle flag; the coordinator's reply carries the
        reduction (None on flagless barriers).
        """
        blobs, exported = self._harvest()
        flag = None if flag_fn is None else flag_fn(exported)
        self.conn.send((
            "b", self.system.sim.cycle, blobs, flag,
            self.system._progress() if wd else 0, wd,
        ))
        reply = self.conn.recv()
        if reply[0] == "abort":
            raise _ShardAborted(reply[1])
        _kind, inbound, global_flag = reply
        self._apply(inbound)
        return global_flag

    # -- run control (mirrors Simulator.run_until globally) ------------
    def _run_until(self, flag_fn, max_cycles: int, check_interval: int,
                   wd: bool) -> int:
        """Global ``run_until``: advance in windows, AND-reduce ``flag_fn``.

        Flags are exchanged at exactly the cycles a single-process
        ``run_until(done, max_cycles, check_interval)`` would evaluate
        ``done()`` - on entry and after every chunk - so completion
        cycles are bit-identical.
        """
        sim = self.system.sim
        window = self.window
        if self._barrier(flag_fn, wd):
            return sim.cycle
        deadline = sim.cycle + max_cycles
        while sim.cycle < deadline:
            chunk = min(sim.cycle + check_interval, deadline)
            while True:
                sim._advance(min(sim.cycle + window, chunk))
                if sim.cycle >= chunk:
                    break
                self._barrier()
            if self._barrier(flag_fn, wd):
                return sim.cycle
        raise DeadlockError(
            f"simulation did not complete within {max_cycles} cycles",
            cycle=sim.cycle,
        )

    def _run_instructions(self, per_core: int,
                          max_cycles: Optional[int] = None) -> None:
        if max_cycles is None:
            max_cycles = 50_000_000
        for core in self.local_cores:
            core.set_target(per_core)
        cores = self.local_cores

        def done(_exported: int) -> bool:
            return all(core.done for core in cores)

        try:
            self._run_until(done, max_cycles, check_interval=64, wd=True)
        finally:
            self.system.stats.flush()

    def _drain(self, max_cycles: int = 2_000_000) -> None:
        system = self.system

        def idle(exported: int) -> bool:
            # Flits harvested this very barrier are in transit between
            # processes and invisible to both censuses; the sender (us)
            # vetoes idleness for them.  A single process would have
            # counted them on the boundary link via in_flight().
            if exported:
                return False
            if system.network.in_flight():
                return False
            return all(
                not tile.l1.busy() and not tile.l2.busy()
                and (tile.mc is None or not tile.mc.busy())
                for tile in system.tiles
            )

        try:
            self._run_until(idle, max_cycles, check_interval=16, wd=False)
        finally:
            system.stats.flush()

    def run(self) -> dict:
        params = self.params
        system = self.system
        cpu_start = time.process_time()
        # Phase script mirrors run_experiment: warmup() (functional
        # prewarm + timing warmup + drain + stats reset) only when a
        # warmup quantum was requested, then the measured phase.
        if params["warmup_instructions"]:
            system.functional_prewarm()
            self._run_instructions(params["warmup_instructions"])
            self._drain()
            system.stats.reset()
            self.net.shard_flits_imported = 0
            self.net.shard_flits_exported = 0
        start = system.sim.cycle
        cpu_measure = time.process_time()
        self._run_instructions(params["measure_instructions"],
                               max_cycles=params["max_measure_cycles"])
        cpu_end = time.process_time()
        system.stats.flush()
        return {
            "stats": _stats_snapshot(system.stats),
            "start": start,
            "finish": max(core.finish_cycle for core in self.local_cores),
            "end_cycle": system.sim.cycle,
            "cpu_seconds": cpu_end - cpu_start,
            "cpu_seconds_measure": cpu_end - cpu_measure,
            "ticks_run": system.sim.ticks_run,
        }


def _shard_worker_main(conn, params: dict, index: int) -> None:
    try:
        worker = _ShardWorker(conn, params, index)
        result = worker.run()
        conn.send(("done", result))
    except _ShardAborted:
        pass  # the coordinator already knows why
    except BaseException as error:  # marshal across the process boundary
        try:
            conn.send(("error", type(error).__name__, str(error)))
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side.
# ----------------------------------------------------------------------

def _recv(conn, proc, index: int):
    if not conn.poll(_RECV_TIMEOUT):
        raise SimulationError(
            f"shard worker {index} unresponsive for {_RECV_TIMEOUT:.0f}s"
        )
    try:
        return conn.recv()
    except EOFError:
        raise SimulationError(
            f"shard worker {index} died (exit code {proc.exitcode})"
        ) from None


def _reraise_worker_error(index: int, kind: str, message: str):
    from repro.validate.invariants import InvariantViolation

    prefix = f"shard {index}: "
    if kind == "DeadlockError":
        raise DeadlockError(prefix + message)
    if kind == "InvariantViolation":
        raise InvariantViolation("shard", prefix + message)
    raise SimulationError(f"{prefix}[{kind}] {message}")


def run_sharded(config, workload: str, warmup_instructions: int,
                measure_instructions: int, n_shards: Optional[int] = None,
                check: Optional[bool] = None,
                check_interval: int = 2000,
                _max_measure_cycles: Optional[int] = None) -> ShardResult:
    """Execute one CMP run split across ``n_shards`` worker processes.

    Bit-identical (stats, finish cycle) to building the same system in
    one process and running warmup + measurement there.  ``check``
    attaches a shard-aware :class:`InvariantMonitor` in every worker
    (default: the ``REPRO_CHECK`` environment flag, matching
    ``run_experiment``).
    """
    from repro.noc.topology import Mesh
    from repro.partition import shard_assignment

    if n_shards is None:
        n_shards = resolve_shards(config)
    mesh = Mesh(config.mesh_side)
    assignment = shard_assignment(mesh, n_shards)
    if check is None:
        check = os.environ.get("REPRO_CHECK", "") not in ("", "0")
    params = {
        "config": config,
        "workload": workload,
        "warmup_instructions": warmup_instructions,
        "measure_instructions": measure_instructions,
        "assignment": assignment,
        "window": shard_window(config.noc.link_latency),
        "check": check,
        "check_interval": check_interval,
        "max_measure_cycles": _max_measure_cycles,
    }

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    conns, procs = [], []
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        for index in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, params, index),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        done: List[Optional[dict]] = [None] * n_shards
        watchdog_last: Optional[Tuple[int, int]] = None  # (value, cycle)
        while any(result is None for result in done):
            messages = [
                _recv(conns[i], procs[i], i) for i in range(n_shards)
            ]
            failed = next(
                (i for i, msg in enumerate(messages) if msg[0] == "error"),
                None,
            )
            if failed is not None:
                for i, msg in enumerate(messages):
                    if msg[0] == "b":
                        conns[i].send(("abort", "another shard failed"))
                _kind, err_kind, err_message = messages[failed]
                _reraise_worker_error(failed, err_kind, err_message)
            if all(msg[0] == "done" for msg in messages):
                for i, msg in enumerate(messages):
                    done[i] = msg[1]
                break
            # A barrier round: every worker runs the same deterministic
            # phase script, so mixed barrier/done rounds cannot happen.
            assert all(msg[0] == "b" for msg in messages), messages
            cycle = messages[0][1]
            assert all(msg[1] == cycle for msg in messages), (
                "shards desynchronised: " + str([m[1] for m in messages])
            )
            # Route boundary blobs untouched (bytes pass through; only
            # the destination worker unpickles).  Sender order is shard
            # index order, so application order is deterministic.
            inbound: List[List[bytes]] = [[] for _ in range(n_shards)]
            for msg in messages:
                for dest, blob in msg[2].items():
                    inbound[dest].append(blob)
            flags = [msg[3] for msg in messages]
            if any(flag is None for flag in flags):
                global_flag = None
            else:
                global_flag = all(flags)
            # Global deadlock watchdog, active while every shard runs an
            # instruction phase (mirrors the single-process
            # ProgressWatchdog at the coordinator level).
            if all(msg[5] for msg in messages):
                progress = sum(msg[4] for msg in messages)
                if watchdog_last is None or progress != watchdog_last[0]:
                    watchdog_last = (progress, cycle)
                elif cycle - watchdog_last[1] >= _WATCHDOG_WINDOW:
                    for conn in conns:
                        conn.send(("abort", "global progress stall"))
                    raise DeadlockError(
                        f"no progress across {n_shards} shards for "
                        f"{_WATCHDOG_WINDOW} cycles (cycle {cycle}, last "
                        f"progress at cycle {watchdog_last[1]})",
                        cycle=cycle,
                        last_progress_cycle=watchdog_last[1],
                    )
            else:
                watchdog_last = None
            for i, conn in enumerate(conns):
                conn.send(("b", inbound[i], global_flag))
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - cleanup backstop
                proc.terminate()
                proc.join(timeout=10)

    wall = time.perf_counter() - wall_start
    coordinator_cpu = time.process_time() - cpu_start
    starts = {result["start"] for result in done}
    assert len(starts) == 1, f"shards disagree on the start cycle: {starts}"
    ends = {result["end_cycle"] for result in done}
    assert len(ends) == 1, f"shards disagree on the end cycle: {ends}"
    merged = Stats()
    for result in done:  # ascending shard index: deterministic merge
        merged.merge(_stats_restore(result["stats"]))
    return ShardResult(
        stats=merged,
        start_cycle=starts.pop(),
        finish_cycle=max(result["finish"] for result in done),
        end_cycle=ends.pop(),
        n_shards=n_shards,
        window=params["window"],
        wall_seconds=wall,
        coordinator_cpu_seconds=coordinator_cpu,
        worker_cpu_seconds=[result["cpu_seconds"] for result in done],
        worker_cpu_seconds_measure=[
            result["cpu_seconds_measure"] for result in done
        ],
    )
