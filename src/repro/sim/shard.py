"""Sharded-mesh parallel simulation: one run spread across processes.

The mesh is split into horizontal row bands (``repro.partition.shard_bands``)
and each band's activity kernel runs in its own worker process.  The
architecture's own safety contract - every cross-component channel
carries >= 1 cycle of latency - is exactly the lookahead a conservative
parallel discrete-event simulation needs: a flit placed on a boundary
link during cycle ``c`` cannot be observed by the receiving router before
cycle ``c + 1 + link_latency``.  Workers therefore advance in lockstep
windows of ``W`` cycles (``W <= link_latency + 1``) and exchange all
boundary flits/credits at window barriers; every transferred item lands
on the receiving replica's link queue strictly before its due cycle, so
no shard can ever observe an event out of order.

Determinism / bit-identity argument (gated by
``tests/test_shard_equivalence.py``):

* every worker builds the *complete* :class:`~repro.system.CmpSystem`
  from the same config/seed - construction and functional prewarm
  consume the deterministic RNG streams identically everywhere - but
  registers only its local band with the kernel.  Foreign components
  keep ``kernel_wake = None`` and never tick;
* boundary channels are the existing :class:`~repro.noc.link.FlitLink` /
  :class:`~repro.noc.link.CreditLink` objects: the sender harvests its
  outbound queues at each barrier, the receiver appends the items - with
  identical ``due`` cycles - to its replica of the same link object, so
  router/NI hot paths run unchanged;
* local components tick in a subsequence of the single-process
  registration order, and window barriers land exactly on the
  single-process ``run_until`` check boundaries, so completion cycles
  and every statistic are bit-identical;
* per-shard :class:`~repro.sim.stats.Stats` are merged by ascending
  shard index (all summed quantities are integer-valued, so merged
  means/histograms are exact).

Message identity across the wire: flits are pickled per destination
batch, and the receiver canonicalises unpickled copies by ``uid`` (each
worker draws uids from a disjoint range) so all flits of one message
share one :class:`~repro.noc.flit.Message` object again, exactly as in a
single process.

Self-healing supervision (``repro.sim.checkpoint`` underneath): barriers
are numbered by a monotonic *sequence* (cycles alone are ambiguous -
phase transitions stack several barriers on one cycle).  Each worker
periodically snapshots its full replica at a barrier, *after* applying
that barrier's reply, and reports the snapshot's seq back; the
coordinator keeps, per shard, a replay log of every barrier reply since
the last acknowledged snapshot.  When a worker dies or goes silent past
the receive timeout, the coordinator respawns the shard from its last
snapshot (or from scratch, before the first one) and feeds it the
logged replies: the replacement replays *silently* - outbound traffic
it re-harvests was already delivered, so it is discarded - until the
log runs dry, at which point it is exactly at the barrier the others
are waiting on and rejoins live.  Replay is deterministic, so the
recovered run stays bit-identical.  Respawns are bounded; anything a
worker reports *deterministically* (deadlock, invariant violation,
corrupt snapshot) is not retried - only process death/unresponsiveness
is.  Workers keep their two newest snapshots on disk: all workers
snapshot at identical barrier seqs (the rule depends only on global
quantities), so after a *coordinator* death the newest seq present in
every shard is a consistent global cut, and ``run_sharded(...,
resume=True)`` restarts the whole run from it with empty replay logs.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import re
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.checkpoint import (
    CheckpointError,
    capture_system,
    fingerprint,
    read_checkpoint,
    restore_system,
    write_checkpoint,
)
from repro.sim.kernel import DeadlockError, SimulationError
from repro.sim.stats import Stats

#: Single-process ``run_until`` cadences the barriers must subdivide:
#: 64 for run_instructions, 16 for drain (both divisible by 16).
_BASE_INTERVAL = 16

#: Progress-stall window for the coordinator's global deadlock watchdog
#: (mirrors CmpSystem.run_instructions' ProgressWatchdog default).
_WATCHDOG_WINDOW = 500_000

#: Default seconds the coordinator waits on a silent worker before
#: declaring it dead (``config.sim.shard_timeout`` / ``REPRO_SHARD_TIMEOUT``
#: override).  Generous: a worker only goes silent mid-window, and
#: windows are a handful of simulated cycles.
_RECV_TIMEOUT = 1200.0

#: Recovery-snapshot cadence (simulated cycles) when neither
#: ``checkpoint_interval`` nor config/environment specify one.
_DEFAULT_SNAPSHOT_INTERVAL = 50_000

#: Snapshots each worker retains on disk.  Two is exactly enough for the
#: coordinator-death consistent cut: workers write a given seq at most
#: one lockstep round apart, so every worker always still holds the
#: previous common seq while the newest one spreads.
_SNAPSHOTS_KEPT = 2

#: Default respawn budget per shard (``REPRO_SHARD_RESPAWNS`` overrides).
_DEFAULT_RESPAWN_LIMIT = 2

#: Floor (seconds) on the first receive after a respawn: the replacement
#: must rebuild or restore a full system and replay before it can speak.
_RESPAWN_RECV_FLOOR = 120.0

#: How often (seconds) a worker blocked at a barrier checks whether the
#: coordinator is still alive.  With the fork start method every worker
#: inherits duplicate fds of its siblings' pipes, so a SIGKILLed
#: coordinator never produces EOF - the orphan check is the only way a
#: stranded worker ever exits.
_ORPHAN_POLL_S = 5.0

_SNAPSHOT_RE = re.compile(r"^shard(\d+)-seq(\d{8})\.ckpt$")


def shard_window(link_latency: int) -> int:
    """Barrier window width for a given boundary-link latency.

    The safe lookahead is ``link_latency + 1`` cycles (send at ``t`` ->
    due ``t + 1 + latency``).  The window must also divide the
    single-process check intervals (16 and 64) so barriers land exactly
    on ``run_until`` chunk boundaries; we take the largest divisor of 16
    not exceeding the lookahead.
    """
    for width in (16, 8, 4, 2, 1):
        if width <= link_latency + 1 and _BASE_INTERVAL % width == 0:
            return width
    raise AssertionError("unreachable: 1 always qualifies")


def resolve_shards(config) -> int:
    """Effective shard count: ``config.sim.shards`` or ``REPRO_SHARDS``."""
    shards = config.sim.shards
    if shards == 0:
        raw = os.environ.get("REPRO_SHARDS", "").strip()
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            shards = -1
        if shards < 1:
            raise ValueError(
                f"REPRO_SHARDS must be a positive integer, got {raw!r}"
            )
    if shards > config.mesh_side:
        raise ValueError(
            f"{shards} shards exceed the router-grid height "
            f"{config.mesh_side} (shards are horizontal row bands of "
            ">= 1 row)"
        )
    return shards


def resolve_shard_timeout(config=None, override: Optional[float] = None
                          ) -> float:
    """Worker receive timeout: explicit > config > environment > default."""
    if override is not None:
        if override <= 0:
            raise ValueError("shard timeout must be positive")
        return override
    if config is not None and config.sim.shard_timeout:
        return config.sim.shard_timeout
    raw = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            value = -1.0
        if value <= 0:
            raise ValueError(
                f"REPRO_SHARD_TIMEOUT must be a positive number of "
                f"seconds, got {raw!r}"
            )
        return value
    return _RECV_TIMEOUT


def _resolve_respawn_limit(override: Optional[int] = None) -> int:
    if override is not None:
        if override < 0:
            raise ValueError("respawn limit must be >= 0")
        return override
    raw = os.environ.get("REPRO_SHARD_RESPAWNS", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = -1
        if value < 0:
            raise ValueError(
                f"REPRO_SHARD_RESPAWNS must be a non-negative integer, "
                f"got {raw!r}"
            )
        return value
    return _DEFAULT_RESPAWN_LIMIT


def _resolve_snapshot_interval(config, override: Optional[int]) -> int:
    if override is not None:
        if override <= 0:
            raise ValueError("checkpoint interval must be positive")
        return override
    if config.sim.checkpoint_interval:
        return config.sim.checkpoint_interval
    raw = os.environ.get("REPRO_CHECKPOINT", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = -1
        if value <= 0:
            raise ValueError(
                f"REPRO_CHECKPOINT must be a positive cycle count, "
                f"got {raw!r}"
            )
        return value
    return _DEFAULT_SNAPSHOT_INTERVAL


class ShardWorkerDied(SimulationError):
    """A worker process died or went silent past the receive timeout.

    Recoverable: the supervisor respawns the shard from its last
    snapshot.  Surfaces to the caller only once the respawn budget is
    exhausted (wrapped in :class:`ShardRecoveryError`).
    """

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardRecoveryError(SimulationError):
    """Self-healing gave up: respawn budget exhausted or no usable cut."""

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard = shard


@dataclass
class ShardResult:
    """Outcome of one sharded run (coordinator side)."""

    stats: Stats
    start_cycle: int
    finish_cycle: int
    end_cycle: int
    n_shards: int
    window: int
    wall_seconds: float
    coordinator_cpu_seconds: float
    worker_cpu_seconds: List[float] = field(default_factory=list)
    worker_cpu_seconds_measure: List[float] = field(default_factory=list)
    #: Worker processes respawned by the self-healing supervisor.
    respawns: int = 0

    @property
    def exec_cycles(self) -> int:
        return self.finish_cycle - self.start_cycle


# ----------------------------------------------------------------------
# Stats marshalling: Stats objects hold unpicklable flusher closures, so
# workers ship a plain snapshot and the coordinator rebuilds.
# ----------------------------------------------------------------------

def _stats_snapshot(stats: Stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def _stats_restore(snapshot) -> Stats:
    counters, means, histograms = snapshot
    stats = Stats()
    stats.counters.update(counters)
    for key, (total, count) in means.items():
        stat = stats.means[key]
        stat.total = total
        stat.count = count
    for key, (width, buckets, count) in histograms.items():
        hist = stats.histograms[key]
        hist.bucket_width = width
        hist.buckets.update(buckets)
        hist.count = count
    return stats


def _snapshot_path(directory: str, index: int, seq: int) -> str:
    return os.path.join(directory, f"shard{index}-seq{seq:08d}.ckpt")


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------

class _ShardAborted(SimulationError):
    """Coordinator told this worker to stop (another shard failed)."""


class _ShardWorker:
    """One band of the mesh, simulated in this process."""

    def __init__(self, conn, params: dict, index: int,
                 replay: Optional[list] = None,
                 chaos: Optional[dict] = None) -> None:
        self.conn = conn
        self.index = index
        self.params = params
        self.window = params["window"]
        self._chaos = chaos
        self._replay = list(replay or [])
        self._seq = 0          # next barrier sequence number
        self._snap_seq = 0     # seq of the last durable snapshot (0 = none)

        # Disjoint uid ranges per shard: uids are only compared for
        # equality (reassembly maps, circuit keys), never ordered, so
        # the offset cannot affect simulated behaviour.
        import repro.noc.flit as flit_mod

        flit_mod._msg_ids = itertools.count(index << 48)

        from repro.cpu.workloads import workload_by_name
        from repro.system import CmpSystem

        assignment = params["assignment"]
        local = frozenset(
            node for node, shard in enumerate(assignment) if shard == index
        )
        self.system = CmpSystem(
            params["config"],
            workload_by_name(params["workload"]),
            local_nodes=local,
        )
        self.net = self.system.network
        self.net.shard_flits_imported = 0
        self.net.shard_flits_exported = 0

        #: uid -> [canonical Message, flits seen] for in-flight imports.
        self._canon: Dict[int, list] = {}
        #: Phase-script position; snapshotted alongside the system so a
        #: respawned replacement re-enters the interrupted phase exactly.
        self._run_state: dict = {"phase": None, "start": None}
        self._finish_setup()

    @classmethod
    def restored(cls, conn, params: dict, index: int, snapshot_path: str,
                 replay: Optional[list] = None,
                 chaos: Optional[dict] = None) -> "_ShardWorker":
        """Rebuild a worker from its snapshot (respawn / coordinator resume)."""
        worker = cls.__new__(cls)
        worker.conn = conn
        worker.index = index
        worker.params = params
        worker.window = params["window"]
        worker._chaos = chaos
        worker._replay = list(replay or [])
        _header, payload = read_checkpoint(
            snapshot_path, kind="shard", config_hash=params["config_hash"]
        )
        data = restore_system(payload)  # also reinstalls flit uid stream
        worker.system = data["system"]
        worker.net = worker.system.network
        worker._canon = data["canon"]
        worker._run_state = data["run"]
        worker._seq = worker._run_state["next_seq"]
        worker._snap_seq = worker._run_state["next_seq"]
        worker._finish_setup()
        return worker

    def _finish_setup(self) -> None:
        """Wiring shared by fresh construction and snapshot restore."""
        params = self.params
        assignment = params["assignment"]
        local = frozenset(
            node for node, shard in enumerate(assignment)
            if shard == self.index
        )
        self.local_cores = [
            tile.core for tile in self.system.tiles
            if tile.core is not None and tile.node in local
        ]
        self._parent_pid = os.getppid()
        self.monitor = None
        if params["check"]:
            from repro.validate.invariants import InvariantMonitor

            self.monitor = InvariantMonitor(
                self.net, system=self.system,
                interval=params["check_interval"], local_nodes=local,
            ).attach(self.system.sim)

        # Boundary channel table, identical in every worker: channel
        # 2i / 2i+1 are the flit / credit links of canonical edge i.
        # For a directed edge (n, port, m) between routers: flits flow on
        # routers[n].out_flit[port] (owner: shard(n)) and their credits
        # return on routers[n].in_credit[port] (owner: shard(m)).
        from repro.partition import boundary_links, router_shard

        topo = self.net.topo
        routers = self.net.routers
        #: (channel, link, destination shard, is_flit) we harvest from.
        self._out_channels: List[Tuple[int, object, int, bool]] = []
        #: channel -> (link, is_flit) we append into.
        self._in_channels: Dict[int, Tuple[object, bool]] = {}
        for i, (n, port, m) in enumerate(boundary_links(topo, assignment)):
            flit_chan, credit_chan = 2 * i, 2 * i + 1
            flit_link = routers[n].out_flit[port]
            credit_link = routers[n].in_credit[port]
            shard_n = router_shard(topo, assignment, n)
            shard_m = router_shard(topo, assignment, m)
            if shard_n == self.index:
                self._out_channels.append(
                    (flit_chan, flit_link, shard_m, True))
                self._in_channels[credit_chan] = (credit_link, False)
            if shard_m == self.index:
                self._in_channels[flit_chan] = (flit_link, True)
                self._out_channels.append(
                    (credit_chan, credit_link, shard_n, False))

        # Recovery-snapshot schedule: a pure function of the (global)
        # barrier cycle, so every shard snapshots at identical barrier
        # seqs and any snapshot seq is a consistent global cut.
        self._snap_dir = params["snapshot_dir"]
        self._snap_interval = params["snapshot_interval"]
        cycle = self.system.sim.cycle
        self._next_snap_cycle = (cycle // self._snap_interval + 1) \
            * self._snap_interval

    # -- boundary transfer ---------------------------------------------
    def _harvest(self) -> Tuple[Dict[int, bytes], int]:
        """Drain every outbound boundary queue into per-shard pickles.

        Returns ``(blobs by destination shard, flits exported)``.
        Mirrors :meth:`FlitLink.arrivals` bookkeeping on the foreign
        watcher replica (decrement ``incoming``) so replica state stays
        internally consistent.
        """
        per_dest: Dict[int, list] = {}
        exported = 0
        for channel, link, dest, is_flit in self._out_channels:
            queue = link._queue
            if not queue:
                continue
            items = list(queue)
            queue.clear()
            watcher = link.watcher
            if watcher is not None:
                watcher.incoming -= len(items)
            if is_flit:
                exported += len(items)
                for _due, flit in items:
                    # The circuit_resolved hook is a protocol-layer
                    # callback that fires exactly once at origin-NI
                    # injection - strictly before the message's flits
                    # exist on any wire - so it is always spent by the
                    # time a flit crosses a shard boundary.
                    payload = flit.msg.payload
                    if payload is not None and getattr(
                            payload, "circuit_resolved", None) is not None:
                        payload.circuit_resolved = None
            per_dest.setdefault(dest, []).append((channel, items))
        if exported:
            self.net.shard_flits_exported += exported
        blobs = {
            dest: pickle.dumps(entries, pickle.HIGHEST_PROTOCOL)
            for dest, entries in per_dest.items()
        }
        return blobs, exported

    def _apply(self, blobs: List[bytes]) -> None:
        """Append transferred items to the local replicas of their links."""
        canon = self._canon
        imported = 0
        for blob in blobs:
            for channel, items in pickle.loads(blob):
                link, is_flit = self._in_channels[channel]
                queue = link._queue
                watcher = link.watcher
                wake = watcher.kernel_wake
                for due, item in items:
                    if is_flit:
                        msg = item.msg
                        entry = canon.get(msg.uid)
                        if entry is None:
                            if msg.n_flits > 1:
                                canon[msg.uid] = [msg, 1]
                        else:
                            item.msg = entry[0]
                            entry[1] += 1
                            if entry[1] >= entry[0].n_flits:
                                del canon[msg.uid]
                    queue.append((due, item))
                    watcher.incoming += 1
                    if wake is not None:
                        wake(due)
                if is_flit:
                    imported += len(items)
        if imported:
            self.net.shard_flits_imported += imported

    def _barrier(self, flag_fn=None, wd: bool = False) -> Optional[bool]:
        """Exchange boundary traffic with every other shard.

        ``flag_fn(exported)`` - evaluated after the harvest, before the
        imports are applied - supplies this shard's vote for the global
        AND-reduced done/idle flag; the coordinator's reply carries the
        reduction (None on flagless barriers).

        In *replay* mode (after a respawn) nothing touches the wire:
        harvested blobs are discarded - the original incarnation already
        delivered them - and the reply comes from the coordinator's log.
        Snapshots are still written at the deterministic points so the
        replacement's disk state converges with the other shards'.
        """
        seq = self._seq
        self._seq = seq + 1
        blobs, exported = self._harvest()
        flag = None if flag_fn is None else flag_fn(exported)
        if self._replay:
            inbound, global_flag = self._replay.pop(0)
            self._apply(inbound)
            if global_flag is not True:
                self._maybe_snapshot(seq + 1)
            return global_flag
        self._chaos_hook(seq)
        self.conn.send((
            "b", seq, self.system.sim.cycle, blobs, flag,
            self.system._progress() if wd else 0, wd, self._snap_seq,
        ))
        reply = self._recv_from_coordinator()
        if reply[0] == "abort":
            raise _ShardAborted(reply[1])
        _kind, inbound, global_flag = reply
        self._apply(inbound)
        # Phase-ending barriers (global flag True) are never snapshot
        # points: run control stacks several barriers on that cycle and
        # the resume position would be ambiguous.
        if global_flag is not True:
            self._maybe_snapshot(seq + 1)
        return global_flag

    def _recv_from_coordinator(self):
        """Blocking receive that notices coordinator death.

        A plain ``recv()`` would hang forever after the coordinator is
        SIGKILLed: sibling workers hold forked duplicates of every pipe
        fd, so the peer end never closes and EOF never arrives.  Poll
        instead, and exit hard once this process has been re-parented
        away from the coordinator (nobody is left to read an exception).
        """
        while not self.conn.poll(_ORPHAN_POLL_S):
            if os.getppid() != self._parent_pid:
                os._exit(1)  # orphaned: coordinator is gone
        return self.conn.recv()

    def _chaos_hook(self, seq: int) -> None:
        """Fault injection for the chaos campaign (first spawn only)."""
        chaos = self._chaos
        if chaos is None or chaos.get("shard") != self.index \
                or seq < chaos.get("barrier_seq", 0):
            return
        import signal

        self._chaos = None  # disarm first: SIGSTOP may be resumed later
        action = chaos.get("action")
        if action == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "sigstop":
            os.kill(os.getpid(), signal.SIGSTOP)
        else:  # pragma: no cover - campaign misconfiguration
            raise ValueError(f"unknown chaos action {action!r}")

    # -- recovery snapshots --------------------------------------------
    def _maybe_snapshot(self, next_seq: int) -> None:
        """Snapshot the replica if the barrier cycle crossed the cadence."""
        cycle = self.system.sim.cycle
        if cycle < self._next_snap_cycle:
            return
        self._next_snap_cycle = (cycle // self._snap_interval + 1) \
            * self._snap_interval
        run_state = dict(self._run_state)
        run_state["cycle"] = cycle
        run_state["next_seq"] = next_seq
        payload = capture_system(self.system, run_state, canon=self._canon)
        path = _snapshot_path(self._snap_dir, self.index, next_seq)
        write_checkpoint(path, payload, kind="shard",
                         config_hash=self.params["config_hash"], cycle=cycle)
        self._snap_seq = next_seq
        self._prune_snapshots()

    def _prune_snapshots(self) -> None:
        mine = []
        try:
            names = os.listdir(self._snap_dir)
        except OSError:  # pragma: no cover - directory vanished
            return
        for name in names:
            match = _SNAPSHOT_RE.match(name)
            if match and int(match.group(1)) == self.index:
                mine.append((int(match.group(2)), name))
        mine.sort(reverse=True)
        for _seq, name in mine[_SNAPSHOTS_KEPT:]:
            try:
                os.unlink(os.path.join(self._snap_dir, name))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # -- run control (mirrors Simulator.run_until globally) ------------
    def _flag_fn(self, phase: str):
        """Barrier vote for a phase (derived, never stored: closures
        cannot ride in a snapshot)."""
        if phase in ("warmup", "measure"):
            cores = self.local_cores

            def done(_exported: int) -> bool:
                return all(core.done for core in cores)

            return done
        system = self.system

        def idle(exported: int) -> bool:
            # Flits harvested this very barrier are in transit between
            # processes and invisible to both censuses; the sender (us)
            # vetoes idleness for them.  A single process would have
            # counted them on the boundary link via in_flight().
            if exported:
                return False
            if system.network.in_flight():
                return False
            return all(
                not tile.l1.busy() and not tile.l2.busy()
                and (tile.mc is None or not tile.mc.busy())
                for tile in system.tiles
            )

        return idle

    def _arm(self, phase: str, max_cycles: int, check_interval: int,
             wd: bool) -> None:
        cycle = self.system.sim.cycle
        self._run_state.update(
            phase=phase, anchor=cycle, deadline=cycle + max_cycles,
            ci=check_interval, wd=wd,
        )

    def _run_phase(self, resume: bool = False) -> None:
        """Global ``run_until``: advance in windows, AND-reduce the vote.

        Flags are exchanged at exactly the cycles a single-process
        ``run_until(done, max_cycles, check_interval)`` would evaluate
        ``done()`` - on entry and after every chunk - so completion
        cycles are bit-identical.

        ``resume`` re-enters mid-phase after a snapshot restore.  The
        snapshot was taken at a barrier whose reply was already applied,
        so the position is unambiguous: on a chunk boundary (offset 0
        from the anchor) the next step is the outer loop; mid-chunk, the
        partial chunk is finished first - with the original clamped end,
        so the remaining barrier schedule is identical.
        """
        run_state = self._run_state
        sim = self.system.sim
        window = self.window
        flag_fn = self._flag_fn(run_state["phase"])
        ci = run_state["ci"]
        wd = run_state["wd"]
        deadline = run_state["deadline"]
        anchor = run_state["anchor"]
        if resume:
            offset = (sim.cycle - anchor) % ci
            if offset:
                chunk = min(sim.cycle + (ci - offset), deadline)
                while True:
                    sim._advance(min(sim.cycle + window, chunk))
                    if sim.cycle >= chunk:
                        break
                    self._barrier(None, wd)
                if self._barrier(flag_fn, wd):
                    return
        elif self._barrier(flag_fn, wd):
            return
        while sim.cycle < deadline:
            chunk = min(sim.cycle + ci, deadline)
            while True:
                sim._advance(min(sim.cycle + window, chunk))
                if sim.cycle >= chunk:
                    break
                self._barrier(None, wd)
            if self._barrier(flag_fn, wd):
                return
        raise DeadlockError(
            f"simulation did not complete within {deadline - anchor} cycles",
            cycle=sim.cycle,
        )

    def run(self) -> dict:
        params = self.params
        system = self.system
        cpu_start = time.process_time()
        run_state = self._run_state
        # Phase script mirrors run_experiment: warmup() (functional
        # prewarm + timing warmup + drain + stats reset) only when a
        # warmup quantum was requested, then the measured phase.  A
        # restored worker re-enters the snapshotted phase instead.
        resume = run_state["phase"] is not None
        if not resume:
            if params["warmup_instructions"]:
                system.functional_prewarm()
                for core in self.local_cores:
                    core.set_target(params["warmup_instructions"])
                self._arm("warmup", 50_000_000, 64, wd=True)
            else:
                self._arm_measure()
        if run_state["phase"] == "warmup":
            try:
                self._run_phase(resume=resume)
            finally:
                system.stats.flush()
            resume = False
            self._arm("drain", 2_000_000, 16, wd=False)
        if run_state["phase"] == "drain":
            try:
                self._run_phase(resume=resume)
            finally:
                system.stats.flush()
            resume = False
            system.stats.reset()
            self.net.shard_flits_imported = 0
            self.net.shard_flits_exported = 0
            self._arm_measure()
        cpu_measure = time.process_time()
        try:
            self._run_phase(resume=resume)  # measure
        finally:
            system.stats.flush()
        cpu_end = time.process_time()
        return {
            "stats": _stats_snapshot(system.stats),
            "start": run_state["start"],
            "finish": max(core.finish_cycle for core in self.local_cores),
            "end_cycle": system.sim.cycle,
            "cpu_seconds": cpu_end - cpu_start,
            "cpu_seconds_measure": cpu_end - cpu_measure,
            "ticks_run": system.sim.ticks_run,
        }

    def _arm_measure(self) -> None:
        params = self.params
        self._run_state["start"] = self.system.sim.cycle
        for core in self.local_cores:
            core.set_target(params["measure_instructions"])
        self._arm("measure", params["max_measure_cycles"] or 50_000_000,
                  64, wd=True)


def _shard_worker_main(conn, params: dict, index: int,
                       restore: Optional[tuple] = None,
                       chaos: Optional[dict] = None) -> None:
    try:
        if restore is not None and restore[0] is not None:
            worker = _ShardWorker.restored(conn, params, index,
                                           restore[0], restore[1], chaos)
        else:
            replay = restore[1] if restore is not None else None
            worker = _ShardWorker(conn, params, index, replay, chaos)
        result = worker.run()
        conn.send(("done", result))
    except _ShardAborted:
        pass  # the coordinator already knows why
    except BaseException as error:  # marshal across the process boundary
        try:
            conn.send(("error", type(error).__name__, str(error)))
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side.
# ----------------------------------------------------------------------

def _recv(conn, proc, index: int, timeout: float):
    """Receive one message from worker ``index`` or raise ShardWorkerDied."""
    if not conn.poll(timeout):
        if proc.is_alive():
            raise ShardWorkerDied(
                f"shard worker {index} unresponsive for {timeout:.0f}s",
                shard=index,
            )
        raise ShardWorkerDied(
            f"shard worker {index} died (exit code {proc.exitcode})",
            shard=index,
        )
    try:
        return conn.recv()
    except EOFError:
        proc.join(timeout=5)
        raise ShardWorkerDied(
            f"shard worker {index} died (exit code {proc.exitcode})",
            shard=index,
        ) from None


def _reraise_worker_error(index: int, kind: str, message: str):
    from repro.sim import checkpoint as ckpt
    from repro.validate.invariants import InvariantViolation

    prefix = f"shard {index}: "
    if kind == "DeadlockError":
        raise DeadlockError(prefix + message)
    if kind == "InvariantViolation":
        raise InvariantViolation("shard", prefix + message)
    for name in ("CorruptCheckpointError", "IncompatibleCheckpointError",
                 "UnpicklableStateError", "CheckpointError"):
        if kind == name:
            raise getattr(ckpt, name)(prefix + message)
    raise SimulationError(f"{prefix}[{kind}] {message}")


def _shutdown_procs(procs, join_timeout: float = 30.0,
                    term_timeout: float = 10.0) -> None:
    """Reap worker processes, escalating terminate -> kill.

    A worker wedged in uninterruptible state (or SIGSTOPped by the chaos
    campaign) ignores SIGTERM; the final SIGKILL guarantees no process
    outlives the coordinator.
    """
    for proc in procs:
        if proc is None:
            continue
        proc.join(timeout=join_timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=term_timeout)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join(timeout=term_timeout)


class _Supervisor:
    """Spawns, watches, and respawns the shard worker fleet."""

    def __init__(self, ctx, params: dict, n_shards: int, timeout: float,
                 respawn_limit: int, chaos: Optional[dict]) -> None:
        self.ctx = ctx
        self.params = params
        self.n_shards = n_shards
        self.timeout = timeout
        self.respawn_limit = respawn_limit
        self.chaos = chaos
        self.conns: List = [None] * n_shards
        self.procs: List = [None] * n_shards
        self.all_procs: List = []  # every process ever spawned (for reaping)
        #: Per shard: barrier replies sent since its acked snapshot,
        #: as (seq, (inbound blobs, global flag)).
        self.logs: List[List[tuple]] = [[] for _ in range(n_shards)]
        #: Per shard: seq of its last durable snapshot (0 = none).
        self.snap_seq: List[int] = [0] * n_shards
        self.respawns = 0
        self._respawns_by_shard: List[int] = [0] * n_shards
        self._fresh: List[bool] = [True] * n_shards  # grace on first recv

    def spawn(self, index: int, restore: Optional[tuple] = None,
              chaos: Optional[dict] = None) -> None:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.params, index, restore, chaos),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        proc.start()
        child_conn.close()
        self.conns[index] = parent_conn
        self.procs[index] = proc
        self.all_procs.append(proc)
        self._fresh[index] = True
        pidfile = os.environ.get("REPRO_SHARD_PIDFILE", "").strip()
        if pidfile:  # chaos campaign: record every worker ever spawned
            with open(pidfile, "a") as handle:
                handle.write(f"{proc.pid}\n")

    def spawn_all(self, resume_seq: Optional[int] = None) -> None:
        for index in range(self.n_shards):
            restore = None
            if resume_seq is not None:
                restore = (_snapshot_path(self.params["snapshot_dir"],
                                          index, resume_seq), [])
                self.snap_seq[index] = resume_seq
            self.spawn(index, restore=restore, chaos=self.chaos)

    def recover(self, index: int, cause: ShardWorkerDied) -> None:
        """Respawn shard ``index`` from its snapshot + replay log."""
        if self._respawns_by_shard[index] >= self.respawn_limit:
            raise ShardRecoveryError(
                f"shard {index} failed and its respawn budget "
                f"({self.respawn_limit}) is exhausted: {cause}",
                shard=index,
            ) from cause
        self.respawns += 1
        self._respawns_by_shard[index] += 1
        proc, conn = self.procs[index], self.conns[index]
        if conn is not None:
            conn.close()
        if proc is not None:
            proc.kill()  # SIGKILL: works on wedged/SIGSTOPped workers too
            proc.join(timeout=30)
        snap = self.snap_seq[index]
        path = _snapshot_path(self.params["snapshot_dir"], index, snap) \
            if snap else None
        replay = [reply for seq, reply in self.logs[index] if seq >= snap]
        self.spawn(index, restore=(path, replay))

    def recv_round(self) -> List:
        """Collect one lockstep round, respawning shards that fail.

        A replacement replays silently and then emits exactly the
        message its predecessor owed this round, so already-received
        messages from healthy shards stay valid.
        """
        messages: List = [None] * self.n_shards
        pending = list(range(self.n_shards))
        while pending:
            index = pending[0]
            timeout = self.timeout
            if self._fresh[index]:
                timeout = max(timeout, _RESPAWN_RECV_FLOOR)
            try:
                messages[index] = _recv(self.conns[index], self.procs[index],
                                        index, timeout)
                self._fresh[index] = False
                pending.pop(0)
            except ShardWorkerDied as cause:
                self.recover(index, cause)  # retry this index next pass
        return messages

    def send(self, index: int, reply) -> None:
        """Send a reply; a send-side death is recovered like a recv one.

        The reply was logged before any send, so the replacement replays
        it from the log and needs no retransmission.
        """
        try:
            self.conns[index].send(reply)
        except (BrokenPipeError, OSError):
            self.recover(index, ShardWorkerDied(
                f"shard worker {index} died "
                f"(exit code {self.procs[index].exitcode})", shard=index,
            ))

    def ack_snapshots(self, messages: List) -> None:
        """Prune replay logs up to each worker's durable snapshot."""
        for index, msg in enumerate(messages):
            acked = msg[7]
            if acked > self.snap_seq[index]:
                self.snap_seq[index] = acked
                self.logs[index] = [
                    entry for entry in self.logs[index] if entry[0] >= acked
                ]

    def abort_all(self, messages: List, reason: str) -> None:
        for index, msg in enumerate(messages):
            if msg is not None and msg[0] == "b":
                try:
                    self.conns[index].send(("abort", reason))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass

    def shutdown(self) -> None:
        for conn in self.conns:
            if conn is not None:
                conn.close()
        _shutdown_procs(self.all_procs)


def _find_resume_seq(directory: str, n_shards: int) -> int:
    """Newest snapshot seq present - and readable - in every shard.

    All shards snapshot at identical barrier seqs (the cadence depends
    only on the global barrier cycle), so any common seq is a consistent
    global cut; each worker retains its two newest, which always overlap
    across shards by at least one seq unless files were lost.
    """
    try:
        names = os.listdir(directory)
    except OSError as exc:
        raise ShardRecoveryError(
            f"cannot resume: checkpoint directory {directory} is "
            f"unreadable ({exc})"
        ) from exc
    per_shard: List[set] = [set() for _ in range(n_shards)]
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            index = int(match.group(1))
            if index < n_shards:
                per_shard[index].add(int(match.group(2)))
    missing = [i for i, seqs in enumerate(per_shard) if not seqs]
    if missing:
        raise ShardRecoveryError(
            f"cannot resume from {directory}: no snapshots for "
            f"shard(s) {missing} (need one per shard for a consistent cut)"
        )
    common = set.intersection(*per_shard)
    if not common:
        raise ShardRecoveryError(
            f"cannot resume from {directory}: shards share no common "
            f"snapshot seq (per shard: "
            f"{[sorted(s) for s in per_shard]})"
        )
    for seq in sorted(common, reverse=True):
        try:
            for index in range(n_shards):
                read_checkpoint(_snapshot_path(directory, index, seq),
                                kind="shard")
        except CheckpointError:
            continue  # torn by a mid-write crash; fall back one cut
        return seq
    raise ShardRecoveryError(
        f"cannot resume from {directory}: every common snapshot seq "
        f"{sorted(common)} has at least one unreadable file"
    )


def _cleanup_snapshots(directory: str) -> None:
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if _SNAPSHOT_RE.match(name):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
    try:
        os.rmdir(directory)
    except OSError:
        pass  # foreign files or shared directory: leave it


def run_sharded(config, workload: str, warmup_instructions: int,
                measure_instructions: int, n_shards: Optional[int] = None,
                check: Optional[bool] = None,
                check_interval: int = 2000,
                _max_measure_cycles: Optional[int] = None,
                checkpoint_dir: Optional[str] = None,
                checkpoint_interval: Optional[int] = None,
                resume: bool = False,
                timeout: Optional[float] = None,
                respawn_limit: Optional[int] = None,
                _chaos: Optional[dict] = None) -> ShardResult:
    """Execute one CMP run split across ``n_shards`` worker processes.

    Bit-identical (stats, finish cycle) to building the same system in
    one process and running warmup + measurement there.  ``check``
    attaches a shard-aware :class:`InvariantMonitor` in every worker
    (default: the ``REPRO_CHECK`` environment flag, matching
    ``run_experiment``).

    Self-healing is always on: workers snapshot to ``checkpoint_dir``
    (a private temporary directory when not given) every
    ``checkpoint_interval`` simulated cycles, and a worker that dies or
    goes silent past ``timeout`` seconds is respawned from its snapshot
    and the coordinator's replay log - at most ``respawn_limit`` times
    per shard, after which :class:`ShardRecoveryError` is raised.
    ``resume=True`` restarts a run whose *coordinator* died from the
    newest snapshot seq common to all shards in ``checkpoint_dir``.
    Recovered and resumed runs stay bit-identical.
    """
    from repro.noc.topology import build_topology
    from repro.partition import shard_assignment

    if n_shards is None:
        n_shards = resolve_shards(config)
    topo = build_topology(config)
    assignment = shard_assignment(topo, n_shards)
    if check is None:
        check = os.environ.get("REPRO_CHECK", "") not in ("", "0")
    timeout = resolve_shard_timeout(config, timeout)
    respawn_limit = _resolve_respawn_limit(respawn_limit)
    snapshot_interval = _resolve_snapshot_interval(config,
                                                   checkpoint_interval)
    owned_dir = checkpoint_dir is None
    if owned_dir:
        if resume:
            raise ValueError(
                "resume=True needs an explicit checkpoint_dir: a private "
                "temporary directory cannot outlive its coordinator"
            )
        checkpoint_dir = tempfile.mkdtemp(prefix="repro-shard-ckpt-")
    else:
        os.makedirs(checkpoint_dir, exist_ok=True)
    params = {
        "config": config,
        "workload": workload,
        "warmup_instructions": warmup_instructions,
        "measure_instructions": measure_instructions,
        "assignment": assignment,
        "window": shard_window(config.noc.link_latency),
        "check": check,
        "check_interval": check_interval,
        "max_measure_cycles": _max_measure_cycles,
        "snapshot_dir": checkpoint_dir,
        "snapshot_interval": snapshot_interval,
        "config_hash": fingerprint(config, workload, warmup_instructions,
                                   measure_instructions, n_shards),
    }

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    supervisor = _Supervisor(ctx, params, n_shards, timeout, respawn_limit,
                             _chaos)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        resume_seq = _find_resume_seq(checkpoint_dir, n_shards) \
            if resume else None
        supervisor.spawn_all(resume_seq=resume_seq)

        done: List[Optional[dict]] = [None] * n_shards
        watchdog_last: Optional[Tuple[int, int]] = None  # (value, cycle)
        while any(result is None for result in done):
            messages = supervisor.recv_round()
            failed = next(
                (i for i, msg in enumerate(messages) if msg[0] == "error"),
                None,
            )
            if failed is not None:
                supervisor.abort_all(messages, "another shard failed")
                _kind, err_kind, err_message = messages[failed]
                _reraise_worker_error(failed, err_kind, err_message)
            if all(msg[0] == "done" for msg in messages):
                for i, msg in enumerate(messages):
                    done[i] = msg[1]
                break
            # A barrier round: every worker runs the same deterministic
            # phase script, so mixed barrier/done rounds cannot happen.
            assert all(msg[0] == "b" for msg in messages), messages
            seq = messages[0][1]
            cycle = messages[0][2]
            assert all(msg[1] == seq and msg[2] == cycle
                       for msg in messages), (
                "shards desynchronised: "
                + str([(m[1], m[2]) for m in messages])
            )
            supervisor.ack_snapshots(messages)
            # Route boundary blobs untouched (bytes pass through; only
            # the destination worker unpickles).  Sender order is shard
            # index order, so application order is deterministic.
            inbound: List[List[bytes]] = [[] for _ in range(n_shards)]
            for msg in messages:
                for dest, blob in msg[3].items():
                    inbound[dest].append(blob)
            flags = [msg[4] for msg in messages]
            if any(flag is None for flag in flags):
                global_flag = None
            else:
                global_flag = all(flags)
            # Global deadlock watchdog, active while every shard runs an
            # instruction phase (mirrors the single-process
            # ProgressWatchdog at the coordinator level).  Window and
            # chunk barriers both report progress during those phases,
            # so the stall clock accumulates across rounds; only drain
            # rounds (wd=False) pause it.
            if all(msg[6] for msg in messages):
                progress = sum(msg[5] for msg in messages)
                if watchdog_last is None or progress != watchdog_last[0]:
                    watchdog_last = (progress, cycle)
                elif cycle - watchdog_last[1] >= _WATCHDOG_WINDOW:
                    supervisor.abort_all(messages, "global progress stall")
                    raise DeadlockError(
                        f"no progress across {n_shards} shards for "
                        f"{_WATCHDOG_WINDOW} cycles (cycle {cycle}, last "
                        f"progress at cycle {watchdog_last[1]})",
                        cycle=cycle,
                        last_progress_cycle=watchdog_last[1],
                    )
            else:
                watchdog_last = None
            for index in range(n_shards):
                reply = ("b", inbound[index], global_flag)
                # Log before send: if the worker dies mid-send, its
                # replacement replays this reply from the log.
                supervisor.logs[index].append((seq, (inbound[index],
                                                     global_flag)))
                supervisor.send(index, reply)
    finally:
        supervisor.shutdown()
        if owned_dir:
            shutil.rmtree(checkpoint_dir, ignore_errors=True)

    if not owned_dir:
        _cleanup_snapshots(checkpoint_dir)  # success: recovery data is moot
    wall = time.perf_counter() - wall_start
    coordinator_cpu = time.process_time() - cpu_start
    starts = {result["start"] for result in done}
    assert len(starts) == 1, f"shards disagree on the start cycle: {starts}"
    ends = {result["end_cycle"] for result in done}
    assert len(ends) == 1, f"shards disagree on the end cycle: {ends}"
    merged = Stats()
    for result in done:  # ascending shard index: deterministic merge
        merged.merge(_stats_restore(result["stats"]))
    return ShardResult(
        stats=merged,
        start_cycle=starts.pop(),
        finish_cycle=max(result["finish"] for result in done),
        end_cycle=ends.pop(),
        n_shards=n_shards,
        window=params["window"],
        wall_seconds=wall,
        coordinator_cpu_seconds=coordinator_cpu,
        worker_cpu_seconds=[result["cpu_seconds"] for result in done],
        worker_cpu_seconds_measure=[
            result["cpu_seconds_measure"] for result in done
        ],
        respawns=supervisor.respawns,
    )
