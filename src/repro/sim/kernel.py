"""Activity-driven simulation kernel.

The whole system is simulated with a single global clock.  Every component
registers with the :class:`Simulator` and exposes a ``tick(cycle)`` method.
Components communicate exclusively through pipelined channels (links and
queues) whose minimum latency is one cycle, so the order in which components
tick within a cycle does not change the architecture-visible behaviour.

The kernel is *activity-driven*: components that also implement the
:class:`ClockedV2` protocol report, after each tick, the next cycle at
which they could possibly do observable work.  The simulator keeps the
awake components in a registration-ordered set, sleeping components in a
min-heap of scheduled wakeups, and skips ticking anything asleep.  When
*every* component sleeps, the global clock fast-forwards straight to the
earliest scheduled event (bounded by watchdog/invariant-monitor due
cycles, so hook behaviour is unchanged).

Correctness contract (see ``docs/architecture.md``):

* a sleeping component's ``tick`` would have been a no-op on every skipped
  cycle - guaranteed because every cross-component channel carries >= 1
  cycle of latency and every producer pokes its consumer's ``kernel_wake``
  with the arrival cycle;
* awake components still tick in exact registration order, so runs are
  bit-identical (same stats, same finish cycles) to a kernel that ticks
  everything every cycle.  :meth:`Simulator.set_always_tick` forces the
  old behaviour for A/B equivalence tests and benchmarks.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Callable, List, Optional, Protocol, Tuple

_SLOT_ORDER = attrgetter("order")


class Clocked(Protocol):
    """Anything advanced once per cycle by the simulator."""

    def tick(self, cycle: int) -> None:
        """Perform this component's work for ``cycle``."""


class ClockedV2(Clocked, Protocol):
    """A clocked component that can report idleness to the kernel.

    ``next_wake(cycle)`` is called right after ``tick(cycle)`` and returns
    the earliest future cycle at which this component could do observable
    work on its own:

    * ``cycle + 1`` (or anything ``<= cycle + 1``): stay awake;
    * some later cycle ``d``: sleep until ``d`` (scheduled wakeup);
    * ``None``: sleep indefinitely - only an external ``kernel_wake`` poke
      (e.g. a flit arriving on a link) can wake it.

    Plain :class:`Clocked` objects without ``next_wake`` are adapted
    transparently: they simply never sleep.
    """

    def next_wake(self, cycle: int) -> Optional[int]:
        """Earliest cycle this component needs to tick again, or None."""


class SimulationError(RuntimeError):
    """Raised when the simulated system reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the system makes no forward progress for too long.

    ``cycle`` and ``last_progress_cycle`` locate the stall in time;
    ``report`` is filled in by higher layers (``repro.validate``) with a
    structured crash report when forensics are available.
    """

    def __init__(
        self,
        message: str,
        cycle: Optional[int] = None,
        last_progress_cycle: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.last_progress_cycle = last_progress_cycle
        self.report = None


class _Slot:
    """Kernel bookkeeping for one registered component."""

    __slots__ = ("component", "order", "awake", "wake_at", "next_wake", "tick",
                 "tick_wake")

    def __init__(self, component: Clocked, order: int) -> None:
        self.component = component
        self.order = order
        #: Components start awake; their first ``next_wake`` may sleep them.
        self.awake = True
        #: Earliest scheduled wakeup while asleep (None = external only).
        self.wake_at: Optional[int] = None
        #: Bound ``component.next_wake`` or None for plain Clocked objects.
        self.next_wake = getattr(component, "next_wake", None)
        #: Bound ``component.tick``; the hot loops call through this slot
        #: attribute so instrumentation (the telemetry kernel profiler)
        #: can interpose a timing wrapper without touching the component.
        self.tick = component.tick
        #: Optional fused fast path: ``tick_wake(cycle)`` performs the
        #: tick AND returns what ``next_wake(cycle)`` would have - one
        #: call per awake component-cycle instead of two.  ``None`` when
        #: the component does not provide it (plain tick + next_wake).
        self.tick_wake = getattr(component, "tick_wake", None)


class Simulator:
    """Owns the global clock and the ordered list of clocked components.

    Components tick in registration order.  Registration order is chosen by
    the system builder so that producers of same-cycle events (e.g. routers
    feeding ejection queues) run before their consumers when that matters
    for modelling; all cross-component channels still carry >= 1 cycle of
    latency.

    Sleeping components are skipped entirely; see the module docstring for
    the wake/sleep contract.  ``ticks_run`` and ``cycles_skipped`` expose
    how much work the activity tracking saved (:meth:`skip_ratio`).
    """

    def __init__(self) -> None:
        self.cycle = 0
        self._slots: List[_Slot] = []
        #: Awake slots in registration order; step() touches only these.
        self._awake: List[_Slot] = []
        self._wake_heap: List[Tuple[int, int, _Slot]] = []
        self._watchdogs: List[Callable[[int], None]] = []
        self._always_tick = False
        #: Component tick() calls actually executed.
        self.ticks_run = 0
        #: Cycles the global clock jumped over with nothing awake.
        self.cycles_skipped = 0

    # -- registration --------------------------------------------------
    def add(self, component: Clocked) -> None:
        """Register ``component`` to be ticked every awake cycle.

        The component is handed a ``kernel_wake(at=None)`` callable so that
        producers (links, protocol calls) can wake it for cycle ``at``
        (``None`` = as soon as possible).  Objects that cannot take the
        attribute (``__slots__``) simply stay externally unwakeable.
        """
        slot = _Slot(component, len(self._slots))
        self._slots.append(slot)
        self._awake.append(slot)
        try:
            component.kernel_wake = self._make_wake(slot)
        except AttributeError:  # pragma: no cover - slotted component
            pass

    def _make_wake(self, slot: _Slot) -> Callable[[Optional[int]], None]:
        def wake(at: Optional[int] = None) -> None:
            if slot.awake:
                return
            target = self.cycle if at is None else at
            if target < self.cycle:
                target = self.cycle
            if slot.wake_at is not None and slot.wake_at <= target:
                return  # an earlier (or equal) wakeup is already queued
            slot.wake_at = target
            heapq.heappush(self._wake_heap, (target, slot.order, slot))

        return wake

    def rewire_wakes(self) -> None:
        """Re-attach every component's ``kernel_wake`` closure.

        Wake closures are wiring, not state: checkpointing
        (:mod:`repro.sim.checkpoint`) drops them at pickle time and calls
        this after unpickling so the restored graph pokes the restored
        simulator.  Slot membership, the awake set and the wake heap are
        ordinary data and round-trip through pickle untouched.
        """
        for slot in self._slots:
            try:
                slot.component.kernel_wake = self._make_wake(slot)
            except AttributeError:  # pragma: no cover - slotted component
                pass

    # -- checkpointing ------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle everything except the watchdog hooks.

        Watchdogs (progress, invariants, checkpointing) are re-attached
        fresh by the run control that resumes a checkpoint; they are
        observation-only, so dropping them cannot change simulated
        behaviour.
        """
        state = self.__dict__.copy()
        state["_watchdogs"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def checkpoint(self) -> bytes:
        """Serialise this simulator (and its component graph) to bytes.

        The bytes contain the complete kernel state - clock, slots, awake
        set, wake heap, skip counters - plus every registered component
        reachable from it.  See :mod:`repro.sim.checkpoint` for the
        closure policy and the typed errors raised for unpicklable state.
        """
        from repro.sim.checkpoint import dumps_state

        return dumps_state(self)

    @staticmethod
    def restore(blob: bytes) -> "Simulator":
        """Rebuild a simulator from :meth:`checkpoint` bytes and rewire it."""
        from repro.sim.checkpoint import loads_state

        sim = loads_state(blob)
        if not isinstance(sim, Simulator):  # pragma: no cover - misuse trap
            raise SimulationError(
                f"checkpoint blob holds {type(sim).__name__}, not a Simulator"
            )
        sim.rewire_wakes()
        return sim

    def add_watchdog(self, hook: Callable[[int], None]) -> None:
        """Register a hook invoked after every executed cycle.

        Hooks may expose ``next_due(cycle) -> int`` (the next cycle at
        which skipping them would change their behaviour); hooks without
        it disable clock fast-forwarding entirely, which is always safe.
        """
        self._watchdogs.append(hook)

    def remove_watchdog(self, hook: Callable[[int], None]) -> None:
        """Unregister a hook previously passed to :meth:`add_watchdog`."""
        self._watchdogs.remove(hook)

    def set_always_tick(self, enabled: bool = True) -> None:
        """Force the legacy cycle-driven behaviour: tick everything, skip
        nothing.  Used by A/B equivalence tests and kernel benchmarks."""
        self._always_tick = enabled
        if not enabled:
            # Re-arm activity tracking from a clean slate: everything
            # awake, every component re-decides via its next next_wake.
            for slot in self._slots:
                slot.awake = True
                slot.wake_at = None
            self._wake_heap.clear()
            self._awake = list(self._slots)

    # -- introspection -------------------------------------------------
    def skip_ratio(self) -> float:
        """Fraction of component-ticks avoided vs. an always-tick kernel."""
        possible = len(self._slots) * self.cycle
        if possible <= 0:
            return 0.0
        return 1.0 - self.ticks_run / possible

    def sleeping(self) -> List[Clocked]:
        """Currently sleeping components (debug/invariant auditing)."""
        return [slot.component for slot in self._slots if not slot.awake]

    def sleeping_slots(self) -> List[Tuple[Clocked, Optional[int]]]:
        """``(component, scheduled_wake_cycle)`` for every sleeper.

        ``scheduled_wake_cycle`` is None for components waiting purely on
        an external ``kernel_wake`` poke.  Used by the ``kernel_sleep``
        invariant check to audit the wake bookkeeping.
        """
        return [
            (slot.component, slot.wake_at)
            for slot in self._slots
            if not slot.awake
        ]

    # -- the clock -----------------------------------------------------
    def step(self) -> None:
        """Advance the whole system by exactly one cycle."""
        cycle = self.cycle
        if self._always_tick:
            for slot in self._slots:
                slot.tick(cycle)
            self.ticks_run += len(self._slots)
        else:
            self._step_awake(cycle)
        for hook in self._watchdogs:
            hook(cycle)
        self.cycle = cycle + 1

    def _step_awake(self, cycle: int) -> None:
        """Tick the awake set for ``cycle`` and apply sleep decisions."""
        heap = self._wake_heap
        heappush = heapq.heappush
        awake = self._awake
        if heap and heap[0][0] <= cycle:
            woken: List[_Slot] = []
            while heap and heap[0][0] <= cycle:
                slot = heapq.heappop(heap)[2]
                if not slot.awake:
                    slot.awake = True
                    slot.wake_at = None
                    woken.append(slot)
            if woken:
                # Timsort spots the two pre-sorted runs, so the merge
                # back into registration order is linear in len(awake).
                awake = awake + woken
                awake.sort(key=_SLOT_ORDER)
                self._awake = awake
        self.ticks_run += len(awake)
        wake_bound = cycle + 1
        slept = False
        for slot in awake:
            tick_wake = slot.tick_wake
            if tick_wake is not None:
                due = tick_wake(cycle)
            else:
                slot.tick(cycle)
                next_wake = slot.next_wake
                if next_wake is None:
                    continue
                due = next_wake(cycle)
            if due is not None and due <= wake_bound:
                continue
            slot.awake = False
            slept = True
            if due is not None:
                slot.wake_at = due
                heappush(heap, (due, slot.order, slot))
        if slept:
            self._awake = [slot for slot in awake if slot.awake]

    def _next_event(self, horizon: int) -> int:
        """Earliest cycle in ``(self.cycle, horizon]`` anything is due.

        Only meaningful when no component is awake.  Considers the wake
        heap and every watchdog's ``next_due``; a watchdog without one
        pins the result to the current cycle (no skipping).
        """
        cycle = self.cycle
        nxt = horizon
        heap = self._wake_heap
        while heap and heap[0][2].awake:
            heapq.heappop(heap)  # stale entry for an already-awake slot
        if heap and heap[0][0] < nxt:
            nxt = heap[0][0]
        for hook in self._watchdogs:
            next_due = getattr(hook, "next_due", None)
            if next_due is None:
                return cycle
            due = next_due(cycle)
            if due is not None and due < nxt:
                nxt = due
        return nxt if nxt > cycle else cycle

    def _advance(self, target: int) -> None:
        """Advance the clock to ``target``, skipping globally-quiet gaps.

        This is :meth:`step` unrolled for the run loops: identical
        per-cycle operations, with the mode check and hook list hoisted
        out of the hot loop.  ``self._watchdogs`` is mutated in place by
        add/remove_watchdog, so the hoisted binding stays current.
        """
        hooks = self._watchdogs
        if self._always_tick:
            slots = self._slots
            n_slots = len(slots)
            while self.cycle < target:
                cycle = self.cycle
                for slot in slots:
                    slot.tick(cycle)
                self.ticks_run += n_slots
                for hook in hooks:
                    hook(cycle)
                self.cycle = cycle + 1
            return
        heap = self._wake_heap
        while self.cycle < target:
            if not self._awake:
                if hooks:
                    nxt = self._next_event(target)
                else:
                    # Hook-free inline of _next_event: drop stale heap
                    # entries, then jump to the earliest wakeup (or the
                    # whole way to target if nothing is scheduled).
                    while heap and heap[0][2].awake:
                        heapq.heappop(heap)
                    nxt = heap[0][0] if heap and heap[0][0] < target else target
                if nxt > self.cycle:
                    # Nothing can tick and no hook is due before nxt:
                    # every skipped cycle would have executed zero
                    # component work.
                    self.cycles_skipped += nxt - self.cycle
                    self.cycle = nxt
                    continue
            cycle = self.cycle
            self._step_awake(cycle)
            for hook in hooks:
                hook(cycle)
            self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance the system by ``cycles`` cycles."""
        self._advance(self.cycle + cycles)

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int,
        check_interval: int = 64,
    ) -> int:
        """Run until ``done()`` returns True, checking every ``check_interval``.

        Returns the cycle count at completion and raises
        :class:`DeadlockError` if ``max_cycles`` elapse first.

        ``done()`` is evaluated on exactly the same cycle boundaries as a
        plain cycle-driven loop would use (chunks of ``check_interval``
        clamped to the deadline), so completion cycles are bit-identical
        whether or not the clock fast-forwarded inside a chunk.
        """
        deadline = self.cycle + max_cycles
        if done():
            return self.cycle
        while self.cycle < deadline:
            # clamp the chunk so we never step past the deadline and
            # report success for work done on borrowed cycles
            self._advance(min(self.cycle + check_interval, deadline))
            if done():
                return self.cycle
        raise DeadlockError(
            f"simulation did not complete within {max_cycles} cycles",
            cycle=self.cycle,
        )


class ProgressWatchdog:
    """Detects global deadlock: no observable progress for ``window`` cycles.

    ``probe`` returns a monotonically increasing progress measure (for a CMP
    run we use total retired instructions plus delivered messages).

    ``on_deadlock``, when given, is called with the stalled cycle just
    before the :class:`DeadlockError` is raised and may return a string
    of extra context (in-flight flits, live circuit entries, ...) that is
    appended to the error message.
    """

    def __init__(
        self,
        probe: Callable[[], int],
        window: int = 200_000,
        on_deadlock: Optional[Callable[[int], Optional[str]]] = None,
    ) -> None:
        self._probe = probe
        self._window = window
        self._on_deadlock = on_deadlock
        self._last_value = -1
        self._last_change = 0

    def next_due(self, cycle: int) -> int:
        """Earliest cycle this hook could act (kernel fast-forward bound).

        During a globally-quiet gap the probe cannot change (no component
        runs), so the only cycle that matters is the one where the stall
        window expires.  If the probe already moved since the last call,
        the hook must run now to record the change.
        """
        if self._probe() != self._last_value:
            return cycle
        return self._last_change + self._window

    def __call__(self, cycle: int) -> None:
        value = self._probe()
        if value != self._last_value:
            self._last_value = value
            self._last_change = cycle
        elif cycle - self._last_change >= self._window:
            message = (
                f"no progress for {self._window} cycles (cycle {cycle}, "
                f"last progress at cycle {self._last_change}, "
                f"progress value {value})"
            )
            if self._on_deadlock is not None:
                extra = self._on_deadlock(cycle)
                if extra:
                    message = f"{message}; {extra}"
            raise DeadlockError(
                message,
                cycle=cycle,
                last_progress_cycle=self._last_change,
            )
