"""Cycle-driven simulation kernel.

The whole system is simulated with a single global clock.  Every component
registers with the :class:`Simulator` and exposes a ``tick(cycle)`` method.
Components communicate exclusively through pipelined channels (links and
queues) whose minimum latency is one cycle, so the order in which components
tick within a cycle does not change the architecture-visible behaviour.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol


class Clocked(Protocol):
    """Anything advanced once per cycle by the simulator."""

    def tick(self, cycle: int) -> None:
        """Perform this component's work for ``cycle``."""


class SimulationError(RuntimeError):
    """Raised when the simulated system reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the system makes no forward progress for too long.

    ``cycle`` and ``last_progress_cycle`` locate the stall in time;
    ``report`` is filled in by higher layers (``repro.validate``) with a
    structured crash report when forensics are available.
    """

    def __init__(
        self,
        message: str,
        cycle: Optional[int] = None,
        last_progress_cycle: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.last_progress_cycle = last_progress_cycle
        self.report = None


class Simulator:
    """Owns the global clock and the ordered list of clocked components.

    Components tick in registration order.  Registration order is chosen by
    the system builder so that producers of same-cycle events (e.g. routers
    feeding ejection queues) run before their consumers when that matters
    for modelling; all cross-component channels still carry >= 1 cycle of
    latency.
    """

    def __init__(self) -> None:
        self.cycle = 0
        self._components: List[Clocked] = []
        self._watchdogs: List[Callable[[int], None]] = []

    def add(self, component: Clocked) -> None:
        """Register ``component`` to be ticked every cycle."""
        self._components.append(component)

    def add_watchdog(self, hook: Callable[[int], None]) -> None:
        """Register a hook invoked after every cycle (progress checks)."""
        self._watchdogs.append(hook)

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        cycle = self.cycle
        for component in self._components:
            component.tick(cycle)
        for hook in self._watchdogs:
            hook(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance the system by ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int,
        check_interval: int = 64,
    ) -> int:
        """Run until ``done()`` returns True, checking every ``check_interval``.

        Returns the cycle count at completion and raises
        :class:`DeadlockError` if ``max_cycles`` elapse first.
        """
        deadline = self.cycle + max_cycles
        if done():
            return self.cycle
        while self.cycle < deadline:
            # clamp the chunk so we never step past the deadline and
            # report success for work done on borrowed cycles
            for _ in range(min(check_interval, deadline - self.cycle)):
                self.step()
            if done():
                return self.cycle
        raise DeadlockError(
            f"simulation did not complete within {max_cycles} cycles",
            cycle=self.cycle,
        )


class ProgressWatchdog:
    """Detects global deadlock: no observable progress for ``window`` cycles.

    ``probe`` returns a monotonically increasing progress measure (for a CMP
    run we use total retired instructions plus delivered messages).

    ``on_deadlock``, when given, is called with the stalled cycle just
    before the :class:`DeadlockError` is raised and may return a string
    of extra context (in-flight flits, live circuit entries, ...) that is
    appended to the error message.
    """

    def __init__(
        self,
        probe: Callable[[], int],
        window: int = 200_000,
        on_deadlock: Optional[Callable[[int], Optional[str]]] = None,
    ) -> None:
        self._probe = probe
        self._window = window
        self._on_deadlock = on_deadlock
        self._last_value = -1
        self._last_change = 0

    def __call__(self, cycle: int) -> None:
        value = self._probe()
        if value != self._last_value:
            self._last_value = value
            self._last_change = cycle
        elif cycle - self._last_change >= self._window:
            message = (
                f"no progress for {self._window} cycles (cycle {cycle}, "
                f"last progress at cycle {self._last_change}, "
                f"progress value {value})"
            )
            if self._on_deadlock is not None:
                extra = self._on_deadlock(cycle)
                if extra:
                    message = f"{message}; {extra}"
            raise DeadlockError(
                message,
                cycle=cycle,
                last_progress_cycle=self._last_change,
            )
