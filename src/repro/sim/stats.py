"""Statistics accumulation shared by all subsystems.

A :class:`Stats` object is a flat namespace of integer counters plus mean
accumulators, deliberately simple so hot paths can bump plain dict entries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Mapping, Tuple


class MeanStat:
    """Streaming mean (sum + count), mergeable across runs."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: float, weight: int = 1) -> None:
        self.total += value
        self.count += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "MeanStat") -> None:
        self.total += other.total
        self.count += other.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeanStat(mean={self.mean:.3f}, n={self.count})"


class Histogram:
    """Sparse fixed-width-bucket histogram with percentile queries.

    Values are collapsed onto a bucket grid at ``add()`` time: a sample
    ``v`` lands in bucket ``int(v / bucket_width)``, so with the default
    ``bucket_width`` of 1 every value is truncated to its integer part
    and percentile/mean/max answers are exact only to whole units
    (integer-cycle latencies lose nothing).  Pass a finer
    ``bucket_width`` (e.g. 0.25) when sub-unit resolution matters -
    percentile answers are then exact to that granularity.  All query
    methods report a bucket's lower edge (``bucket * bucket_width``).
    """

    __slots__ = ("buckets", "count", "bucket_width")

    def __init__(self, bucket_width: float = 1) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.bucket_width = bucket_width

    def add(self, value: float) -> None:
        bucket = int(value / self.bucket_width)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100] (0 for empty histograms).

        Answers snap to the bucket grid documented in the class
        docstring: the returned value is the lower edge of the bucket
        containing the requested rank.
        """
        if not self.count:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        target = max(1, int(round(self.count * p / 100.0)))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return bucket * self.bucket_width
        return max(self.buckets) * self.bucket_width

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        width = self.bucket_width
        return sum(b * width * n for b, n in self.buckets.items()) / self.count

    @property
    def max(self) -> float:
        if not self.buckets:
            return 0.0
        return max(self.buckets) * self.bucket_width

    def merge(self, other: "Histogram") -> None:
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge histograms with different bucket widths "
                f"({self.bucket_width} vs {other.bucket_width})"
            )
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.count += other.count


class Stats:
    """Counters, means and histograms, keyed by plain strings.

    Use ``bump`` for event counts, ``observe`` for latency-style samples,
    and ``record`` when the full distribution matters (percentiles).  Keys
    use a ``subsystem.metric`` convention, e.g. ``noc.flits_injected`` or
    ``circuit.replies_on_circuit``.

    Hot components (routers, NIs) batch their per-flit counters in plain
    int attributes and register a *flusher* here; every read-style method
    calls :meth:`flush` first, so observers (samplers, invariant checkers,
    forensics, result builders) always see complete counts.  A flusher
    must move its pending deltas into ``counters`` and zero itself, and
    must not add keys whose pending delta is zero (snapshot equality with
    unbatched runs depends on it).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.means: Dict[str, MeanStat] = defaultdict(MeanStat)
        self.histograms: Dict[str, Histogram] = defaultdict(Histogram)
        self._flushers: List[Callable[[], None]] = []

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] += amount

    def add_flusher(self, flusher: Callable[[], None]) -> None:
        """Register a callback that drains batched counters into us."""
        self._flushers.append(flusher)

    def flush(self) -> None:
        """Drain every registered batcher so ``counters`` is complete."""
        for flusher in self._flushers:
            flusher()

    def observe(self, key: str, value: float, weight: int = 1) -> None:
        self.means[key].add(value, weight)

    def record(self, key: str, value: float) -> None:
        """Observe into both the mean and the distribution for ``key``."""
        self.means[key].add(value)
        self.histograms[key].add(value)

    def percentile(self, key: str, p: float) -> float:
        hist = self.histograms.get(key)
        return hist.percentile(p) if hist else 0.0

    def counter(self, key: str) -> int:
        if self._flushers:
            self.flush()
        return self.counters.get(key, 0)

    def mean(self, key: str) -> float:
        stat = self.means.get(key)
        return stat.mean if stat else 0.0

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        if self._flushers:
            self.flush()
        return {
            key: value
            for key, value in self.counters.items()
            if key.startswith(prefix)
        }

    def reset(self) -> None:
        """Clear all accumulated statistics (used after cache warmup).

        Registered batchers are flushed first so their accumulators are
        zeroed too; their pre-reset deltas are discarded along with
        everything else.
        """
        self.flush()
        self.counters.clear()
        self.means.clear()
        self.histograms.clear()

    def merge(self, other: "Stats") -> None:
        self.flush()
        other.flush()
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, stat in other.means.items():
            self.means[key].merge(stat)
        for key, hist in other.histograms.items():
            self.histograms[key].merge(hist)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to plain floats (counters verbatim, means as averages)."""
        if self._flushers:
            self.flush()
        out: Dict[str, float] = dict(self.counters)
        for key, stat in self.means.items():
            out[f"{key}.mean"] = stat.mean
        return out

    def share(self, keys: Iterable[str], of: Iterable[str]) -> float:
        """Fraction contributed by ``keys`` within the ``of`` population."""
        if self._flushers:
            self.flush()
        num = sum(self.counters.get(k, 0) for k in keys)
        den = sum(self.counters.get(k, 0) for k in of)
        return num / den if den else 0.0


def weighted_fractions(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalise a counter mapping to fractions that sum to 1 (or empty)."""
    total = sum(counts.values())
    if total == 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def mean_and_stderr(values: Iterable[float]) -> Tuple[float, float]:
    """Sample mean and standard error (0 stderr for n < 2)."""
    data = list(values)
    n = len(data)
    if n == 0:
        return 0.0, 0.0
    mean = sum(data) / n
    if n < 2:
        return mean, 0.0
    var = sum((x - mean) ** 2 for x in data) / (n - 1)
    return mean, (var / n) ** 0.5
