"""System configuration.

Defaults follow the paper's Tables 2 (CMP) and 4 (baseline NoC) exactly.
The named Reactive Circuits configurations evaluated in the paper are
exposed through :class:`Variant`, each of which expands to an orthogonal
:class:`CircuitConfig` via :func:`variant_config`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple


class CircuitMode(enum.Enum):
    """How reply circuits are reserved (paper section 4.2 / 4.8)."""

    NONE = "none"  # baseline packet-switched network
    FRAGMENTED = "fragmented"  # partial reservations kept, buffered circuit VCs
    COMPLETE = "complete"  # all-or-nothing reservations, bufferless circuit VC
    IDEAL = "ideal"  # upper bound: every eligible reply rides a circuit


@dataclass(frozen=True)
class CircuitConfig:
    """Reactive-circuit policy knobs (orthogonal axes of section 4)."""

    mode: CircuitMode = CircuitMode.NONE
    #: Max simultaneous circuits stored per input port (paper: 5 complete,
    #: 2 fragmented - the fragmented limit equals the number of circuit VCs).
    max_circuits_per_input: int = 5
    #: Eliminate L1_DATA_ACK when the data reply used a complete circuit.
    no_ack: bool = False
    #: Allow scrounger messages to reuse live circuits (section 4.5).
    reuse: bool = False
    #: Timed reservations (section 4.7): reserve only the estimated slot.
    timed: bool = False
    #: Extra reserved cycles per path hop (Slack_ variants).
    slack_per_hop: int = 0
    #: Try shifting a conflicting slot later within the slack (SlackDelay_).
    allow_delay: bool = False
    #: Reserve an exact-length slot 'postpone_per_hop' cycles/hop later and
    #: make the reply wait for it (Postponed_ variants).
    postponed: bool = False
    postpone_per_hop: int = 0
    #: Ablation of section 4.4: undo circuits when the L2 misses (the paper
    #: measured keep-built to be better, so the default is False).
    undo_on_l2_miss: bool = False

    def __post_init__(self) -> None:
        if self.mode is CircuitMode.NONE:
            if self.no_ack or self.reuse or self.timed:
                raise ValueError("baseline network cannot enable circuit options")
        if self.timed and self.mode is not CircuitMode.COMPLETE:
            raise ValueError("timed reservations require complete circuits")
        if self.no_ack and self.mode not in (CircuitMode.COMPLETE, CircuitMode.IDEAL):
            raise ValueError("L1_DATA_ACK elimination requires complete circuits")
        if self.reuse and (self.mode is not CircuitMode.COMPLETE or self.timed):
            raise ValueError("circuit reuse requires non-timed complete circuits")
        if self.allow_delay and self.slack_per_hop <= 0:
            raise ValueError("delayed reservation needs a positive slack")
        if self.postponed and (self.slack_per_hop or self.allow_delay):
            raise ValueError("postponed circuits exclude slack/delay")
        if self.postponed and self.postpone_per_hop <= 0:
            raise ValueError("postponed circuits need postpone_per_hop > 0")

    @property
    def uses_circuits(self) -> bool:
        return self.mode is not CircuitMode.NONE


@dataclass(frozen=True)
class NocConfig:
    """Baseline NoC per the paper's Table 4."""

    #: Virtual channels per virtual network: (requests VN, replies VN).
    #: Fragmented circuits grow the reply VN to 3 VCs (section 4.2).
    vcs_per_vn: Tuple[int, int] = (2, 2)
    buffer_depth_flits: int = 5
    flit_bytes: int = 16
    link_latency: int = 1
    #: Router pipeline depth: RC+buffer write, VA, SA, ST.
    router_stages: int = 4
    #: DOR orientation: True = requests XY / replies YX (the paper's
    #: choice); False swaps them.  Either works - section 4.2 only needs
    #: the two VNs to use opposite dimension orders.
    request_xy: bool = True
    #: Build the optimised router/NI hot path (default).  False builds the
    #: pre-overhaul reference pipeline, which A/B equivalence tests use to
    #: prove the fast path bit-identical (stats, histograms, finish cycle).
    fastpath: bool = True
    #: Network topology: "mesh" (default), "torus" or "cmesh".  The empty
    #: string defers to the ``REPRO_TOPOLOGY`` environment variable;
    #: :class:`SystemConfig` resolves it eagerly so pickled configs (shard
    #: workers, checkpoints) are independent of the worker's environment.
    topology: str = ""
    #: Per-hop cycles for a packet-switched head flit (4 router + 1 link).
    @property
    def packet_hop_cycles(self) -> int:
        return self.router_stages + self.link_latency

    #: Per-hop cycles for a flit riding a circuit (1 router + 1 link).
    @property
    def circuit_hop_cycles(self) -> int:
        return 1 + self.link_latency


@dataclass(frozen=True)
class CacheConfig:
    """Memory hierarchy per the paper's Table 2."""

    line_bytes: int = 64
    l1_size_bytes: int = 32 * 1024
    l1_assoc: int = 4
    l1_hit_cycles: int = 2
    l2_bank_size_bytes: int = 1024 * 1024
    l2_assoc: int = 16
    l2_hit_cycles: int = 7
    memory_latency_cycles: int = 160
    num_memory_controllers: int = 4

    @property
    def l1_sets(self) -> int:
        return self.l1_size_bytes // (self.line_bytes * self.l1_assoc)

    @property
    def l2_bank_sets(self) -> int:
        return self.l2_bank_size_bytes // (self.line_bytes * self.l2_assoc)


class Variant(enum.Enum):
    """Named configurations evaluated in the paper's section 5."""

    BASELINE = "Baseline"
    FRAGMENTED = "Fragmented"
    COMPLETE = "Complete"
    COMPLETE_NOACK = "Complete_NoAck"
    REUSE = "Reuse"
    REUSE_NOACK = "Reuse_NoAck"
    TIMED_NOACK = "Timed_NoAck"
    SLACK1_NOACK = "Slack1_NoAck"
    SLACK2_NOACK = "Slack2_NoAck"
    SLACK4_NOACK = "Slack4_NoAck"
    SLACKDELAY1_NOACK = "SlackDelay1_NoAck"
    SLACKDELAY2_NOACK = "SlackDelay2_NoAck"
    POSTPONED1_NOACK = "Postponed1_NoAck"
    POSTPONED2_NOACK = "Postponed2_NoAck"
    IDEAL = "Ideal"


_VARIANT_CIRCUITS: Dict[Variant, CircuitConfig] = {
    Variant.BASELINE: CircuitConfig(mode=CircuitMode.NONE),
    Variant.FRAGMENTED: CircuitConfig(
        mode=CircuitMode.FRAGMENTED, max_circuits_per_input=2
    ),
    Variant.COMPLETE: CircuitConfig(mode=CircuitMode.COMPLETE),
    Variant.COMPLETE_NOACK: CircuitConfig(mode=CircuitMode.COMPLETE, no_ack=True),
    Variant.REUSE: CircuitConfig(mode=CircuitMode.COMPLETE, reuse=True),
    Variant.REUSE_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE, reuse=True, no_ack=True
    ),
    Variant.TIMED_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE, timed=True, no_ack=True
    ),
    Variant.SLACK1_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE, timed=True, no_ack=True, slack_per_hop=1
    ),
    Variant.SLACK2_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE, timed=True, no_ack=True, slack_per_hop=2
    ),
    Variant.SLACK4_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE, timed=True, no_ack=True, slack_per_hop=4
    ),
    Variant.SLACKDELAY1_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE,
        timed=True,
        no_ack=True,
        slack_per_hop=1,
        allow_delay=True,
    ),
    Variant.SLACKDELAY2_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE,
        timed=True,
        no_ack=True,
        slack_per_hop=2,
        allow_delay=True,
    ),
    Variant.POSTPONED1_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE,
        timed=True,
        no_ack=True,
        postponed=True,
        postpone_per_hop=1,
    ),
    Variant.POSTPONED2_NOACK: CircuitConfig(
        mode=CircuitMode.COMPLETE,
        timed=True,
        no_ack=True,
        postponed=True,
        postpone_per_hop=2,
    ),
    Variant.IDEAL: CircuitConfig(mode=CircuitMode.IDEAL, no_ack=True),
}


def variant_config(variant: Variant) -> CircuitConfig:
    """Expand a named paper configuration into its CircuitConfig."""
    return _VARIANT_CIRCUITS[variant]


@dataclass(frozen=True)
class SimConfig:
    """Execution-engine knobs (how the model is simulated, not what it is).

    Nothing here may change simulated behaviour: any legal ``SimConfig``
    must produce bit-identical stats and finish cycles.  The sharded
    engine (``repro.sim.shard``) enforces that with A/B equivalence
    tests.
    """

    #: Number of single-process shards the mesh is split across.
    #: ``0`` defers to the ``REPRO_SHARDS`` environment variable
    #: (unset = 1 = the plain single-process engine).
    shards: int = 0

    #: Cycles between durable checkpoints (``repro.sim.checkpoint``).
    #: ``0`` defers to the ``REPRO_CHECKPOINT`` environment variable
    #: (unset = no periodic checkpoints).  Checkpoints are captured on
    #: run-control chunk boundaries, so restored runs stay bit-identical.
    checkpoint_interval: int = 0

    #: Seconds the shard coordinator waits for a worker's barrier
    #: message before declaring it unresponsive.  ``0.0`` defers to the
    #: ``REPRO_SHARD_TIMEOUT`` environment variable (unset = 1200s).
    shard_timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise ValueError("sim.shards must be >= 0 (0 = use REPRO_SHARDS)")
        if self.checkpoint_interval < 0:
            raise ValueError(
                "sim.checkpoint_interval must be >= 0 "
                "(0 = use REPRO_CHECKPOINT)")
        if self.shard_timeout < 0:
            raise ValueError(
                "sim.shard_timeout must be >= 0 (0 = use REPRO_SHARD_TIMEOUT)")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a simulated CMP."""

    n_cores: int = 16
    seed: int = 1
    noc: NocConfig = field(default_factory=NocConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    circuit: CircuitConfig = field(default_factory=CircuitConfig)
    sim: SimConfig = field(default_factory=SimConfig)

    def __post_init__(self) -> None:
        # Resolve the topology eagerly (consulting REPRO_TOPOLOGY once)
        # so pickled configs reaching shard workers or checkpoints do not
        # depend on the receiving process's environment.  Imported here:
        # repro.noc pulls in modules that import this one at load time.
        from repro.noc.topology import resolve_topology, topology_grid_side

        topology = resolve_topology(self.noc.topology)
        if topology != self.noc.topology:
            object.__setattr__(
                self, "noc", replace(self.noc, topology=topology))
        side = topology_grid_side(topology, self.n_cores)
        if self.cache.num_memory_controllers > self.n_cores:
            raise ValueError("more memory controllers than tiles")
        if self.sim.shards > side:
            raise ValueError(
                f"sim.shards={self.sim.shards} exceeds the router-grid "
                f"height {side} (shards are horizontal row bands of "
                ">= 1 row)"
            )
        # Fragmented circuits grow the reply VN to 3 VCs; enforce coherence
        # between the two sub-configs here so callers cannot desynchronise.
        expected = 3 if self.circuit.mode is CircuitMode.FRAGMENTED else 2
        if self.noc.vcs_per_vn[1] != expected:
            object.__setattr__(
                self, "noc", replace(self.noc, vcs_per_vn=(self.noc.vcs_per_vn[0], expected))
            )

    @property
    def mesh_side(self) -> int:
        """Router-grid side (the name predates non-mesh topologies)."""
        from repro.noc.topology import topology_grid_side

        return topology_grid_side(self.noc.topology, self.n_cores)

    def with_variant(self, variant: Variant) -> "SystemConfig":
        """Return a copy configured for the given paper variant."""
        return replace(self, circuit=variant_config(variant))

    def with_circuit(self, circuit: CircuitConfig) -> "SystemConfig":
        return replace(self, circuit=circuit)


def small_test_config(
    n_cores: int = 16,
    variant: Variant = Variant.BASELINE,
    seed: int = 1,
) -> SystemConfig:
    """A scaled-down config for fast unit/integration tests.

    Shrinks caches so misses and evictions occur within short runs while
    keeping the NoC parameters identical to the paper's baseline.
    """
    cache = CacheConfig(
        l1_size_bytes=2 * 1024,
        l2_bank_size_bytes=16 * 1024,
        memory_latency_cycles=60,
    )
    return SystemConfig(
        n_cores=n_cores, seed=seed, cache=cache
    ).with_variant(variant)
