"""DSENT-substitute analytical area and energy models for the NoC."""

from repro.power.area import RouterAreaModel, router_area, area_savings
from repro.power.energy import NetworkEnergyModel, network_energy

__all__ = [
    "NetworkEnergyModel",
    "RouterAreaModel",
    "area_savings",
    "network_energy",
    "router_area",
]
