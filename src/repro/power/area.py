"""Analytical router area model (DSENT substitute).

The paper evaluates router area with DSENT at 32 nm.  We replace it with a
component-level analytical model whose inputs are exactly the per-variant
structural differences of sections 4.2 and 4.7:

* input buffer SRAM bits (fragmented adds a reply-VN VC; complete removes
  the circuit VC's buffers entirely),
* circuit-information storage (B bit, destination id, block address and
  output port per entry - Fig. 3), in denser flip-flop cells,
* timed reservations add two countdown timers per entry,
* match/build logic scaling with entry count and key width,
* crossbar and allocators, unchanged across variants.

Constants are calibrated so the *baseline proportions* match what the
paper's DSENT results imply (its -19 % figure for one extra VC implies a
strongly buffer-dominated router area); the per-variant deltas then fall
out of the actual bit counts rather than being hard-coded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.noc.topology import build_topology
from repro.sim.config import CircuitMode, SystemConfig

#: Relative cell areas (SRAM bit == 1).
SRAM_BIT_AREA = 1.0
REGISTER_BIT_AREA = 1.8
#: Match/build logic per circuit-table entry, per key bit.
MATCH_LOGIC_PER_KEY_BIT = 0.6
#: Crossbar area per (input x output x datapath bit).
CROSSBAR_FACTOR = 2.0
#: Allocator area: arbiter cells per (requester x resource) pair.
ALLOCATOR_FACTOR = 0.5
ALLOCATOR_PORT_FACTOR = 12.0
#: Comparator logic per timer bit (timed reservations).
TIMER_LOGIC_PER_BIT = 0.3
#: Physical address width assumed for block identifiers.
ADDRESS_BITS = 32


@dataclass(frozen=True)
class RouterAreaModel:
    """Per-component area breakdown of one (5-port) router."""

    buffers: float
    crossbar: float
    allocators: float
    circuit_storage: float
    circuit_logic: float

    @property
    def total(self) -> float:
        return (self.buffers + self.crossbar + self.allocators
                + self.circuit_storage + self.circuit_logic)

    def as_dict(self) -> Dict[str, float]:
        return {
            "buffers": self.buffers,
            "crossbar": self.crossbar,
            "allocators": self.allocators,
            "circuit_storage": self.circuit_storage,
            "circuit_logic": self.circuit_logic,
        }


def _entry_bits(config: SystemConfig) -> int:
    """Bits of one circuit-table entry (Fig. 3): B, destID, block@, outport."""
    dest_bits = max(1, math.ceil(math.log2(config.n_cores)))
    block_bits = ADDRESS_BITS - int(math.log2(config.cache.line_bytes))
    out_bits = 3
    bits = 1 + dest_bits + block_bits + out_bits
    if config.circuit.mode is CircuitMode.FRAGMENTED:
        bits += 2  # reserved circuit-VC index
    return bits


def _timer_bits(config: SystemConfig) -> int:
    """Countdown width covering the common optimistic estimates (4.7).

    Sized for cache-hit turnarounds plus slack; reservations waiting on the
    160-cycle memory latency saturate the counter through a coarse prescale
    and do not widen the per-entry timers.
    """
    hops = build_topology(config).diameter
    horizon = 7 * hops + 8 * config.circuit.slack_per_hop * hops + 64
    return math.ceil(math.log2(horizon))


def router_area(config: SystemConfig, ports: int = 5) -> RouterAreaModel:
    """Area of one router under ``config`` (uniform 5-port worst case)."""
    noc = config.noc
    flit_bits = noc.flit_bytes * 8
    total_vcs = sum(noc.vcs_per_vn)
    # Buffer SRAM: every VC of every port, minus bufferless circuit VCs.
    bufferless = 0
    if config.circuit.mode in (CircuitMode.COMPLETE,):
        bufferless = 1  # the dedicated circuit VC loses its buffers (4.2)
    buffered_vcs = total_vcs - bufferless
    buffers = ports * buffered_vcs * noc.buffer_depth_flits * flit_bits * SRAM_BIT_AREA
    crossbar = ports * ports * flit_bits * CROSSBAR_FACTOR
    allocators = (
        ports * ports * ALLOCATOR_PORT_FACTOR
        + (ports * total_vcs) ** 2 * ALLOCATOR_FACTOR
    )
    storage = 0.0
    logic = 0.0
    if config.circuit.uses_circuits and config.circuit.mode is not CircuitMode.IDEAL:
        entries = ports * config.circuit.max_circuits_per_input
        bits = _entry_bits(config)
        if config.circuit.timed:
            bits += 2 * _timer_bits(config)
        storage = entries * bits * REGISTER_BIT_AREA
        key_bits = _entry_bits(config) - 4  # match on destID + block@
        logic = entries * key_bits * MATCH_LOGIC_PER_KEY_BIT
        if config.circuit.timed:
            # Window comparators on both counters of every entry.
            logic += entries * 2 * _timer_bits(config) * TIMER_LOGIC_PER_BIT
    return RouterAreaModel(buffers, crossbar, allocators, storage, logic)


def area_savings(config: SystemConfig) -> float:
    """Fractional router area saving vs. the paper's 4-VC baseline.

    Positive values mean the variant's router is smaller (Table 6).
    """
    from repro.sim.config import Variant

    base = router_area(config.with_variant(Variant.BASELINE)).total
    this = router_area(config).total
    return (base - this) / base
