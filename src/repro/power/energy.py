"""Analytical network energy model (DSENT substitute).

Network energy = dynamic energy (per-event costs multiplied by the event
counters the NoC accumulates while simulating) + static leakage
(proportional to router/link area and elapsed cycles).  The per-variant
differences therefore come from three real effects, exactly as in the
paper's Fig. 8:

* circuit flits skip buffer reads/writes and allocator activity,
* eliminated acknowledgements remove their flits entirely,
* execution-time changes scale the leakage term,
* and the per-variant router area scales leakage per cycle
  (fragmented's extra VC costs it the energy win).

Event energies are in femtojoule-scale arbitrary units chosen to match
DSENT-like proportions for a 16-byte-flit 32 nm router; only relative
energies (Fig. 8 is normalised to the baseline) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.noc.topology import build_topology
from repro.power.area import router_area
from repro.sim.config import SystemConfig
from repro.sim.stats import Stats

#: Dynamic energy per event.
E_BUFFER_WRITE = 0.70
E_BUFFER_READ = 0.60
E_XBAR = 1.00
E_LINK_FLIT = 1.20
E_ROUTE = 0.05
E_VA = 0.12
E_SA = 0.12
E_CREDIT = 0.05
E_TABLE_OP = 0.06
E_UNDO_HOP = 0.05

#: Static leakage per area unit per cycle (routers).
LEAK_PER_AREA_CYCLE = 1.9e-4
#: Static leakage per link per cycle (links are routed over logic and do
#: not count toward area, but they do leak drivers).
LEAK_PER_LINK_CYCLE = 0.02


@dataclass(frozen=True)
class NetworkEnergyModel:
    """Energy breakdown of one run."""

    dynamic: float
    static: float
    cycles: int

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def as_dict(self) -> Dict[str, float]:
        return {"dynamic": self.dynamic, "static": self.static,
                "total": self.total, "cycles": float(self.cycles)}


def _dynamic_energy(stats: Stats) -> float:
    stats.flush()  # drain batched router/NI counters before reading
    c = stats.counters
    return (
        c.get("noc.buffer_writes", 0) * E_BUFFER_WRITE
        + c.get("noc.buffer_reads", 0) * E_BUFFER_READ
        + c.get("noc.xbar_traversals", 0) * E_XBAR
        + c.get("noc.link_flits", 0) * E_LINK_FLIT
        + c.get("noc.route_computations", 0) * E_ROUTE
        + c.get("noc.va_grants", 0) * E_VA
        + c.get("noc.sa_grants", 0) * E_SA
        + c.get("noc.credits_sent", 0) * E_CREDIT
        + (c.get("circuit.reservations", 0)
           + c.get("circuit.entries_used", 0)
           + c.get("circuit.entries_undone", 0)) * E_TABLE_OP
        + c.get("circuit.undo_hops", 0) * E_UNDO_HOP
    )


def network_energy(config: SystemConfig, stats: Stats, cycles: int
                   ) -> NetworkEnergyModel:
    """Total network energy of a run of ``cycles`` cycles."""
    topo = build_topology(config)
    n_routers = topo.n_routers
    area = router_area(config, ports=topo.max_radix).total
    n_links = topo.n_links  # router-router links + per-node NI links
    static = cycles * (
        n_routers * area * LEAK_PER_AREA_CYCLE
        + n_links * LEAK_PER_LINK_CYCLE
    )
    return NetworkEnergyModel(_dynamic_energy(stats), static, cycles)
