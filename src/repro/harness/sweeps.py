"""Design-space sweep utilities built on the synthetic traffic driver.

These answer the scalability questions the paper raises in sections 5.2
and 5.5 - how circuit construction behaves as the chip grows, as load
rises, and as router buffering changes - without the cost of full
protocol simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import parallel
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import NocConfig, SystemConfig, Variant


@dataclass(frozen=True)
class SweepPoint:
    """One measured sweep configuration."""

    label: str
    circuit_success: float
    mean_reply_latency: float
    offered_load: float


def _measure(config: SystemConfig, rate: float, cycles: int, seed: int,
             label: str) -> SweepPoint:
    traffic = RequestReplyTraffic(config, rate, seed=seed)
    traffic.run(cycles)
    traffic.drain()
    return SweepPoint(
        label=label,
        circuit_success=traffic.circuit_success_rate() or 0.0,
        mean_reply_latency=traffic.mean_reply_latency(),
        offered_load=traffic.offered_load_flits_per_kcycle_node(),
    )


def _measure_task(payload: Tuple) -> SweepPoint:
    """Pool worker for one sweep point (module-level, hence picklable)."""
    return _measure(*payload)


def _measure_points(payloads: Sequence[Tuple],
                    jobs: Optional[int]) -> List[SweepPoint]:
    """Measure the points serially or across worker processes.

    Every point is an independent traffic simulation with its own seed,
    so the results are identical either way; they are re-ordered back to
    the input order after a parallel run.
    """
    n_jobs = parallel.resolve_jobs(jobs)
    if n_jobs <= 1 or len(payloads) <= 1:
        return [_measure(*payload) for payload in payloads]
    from repro import api

    done = api.map_tasks(
        {str(i): payload for i, payload in enumerate(payloads)},
        worker=_measure_task, jobs=n_jobs,
    )
    return [done[str(i)] for i in range(len(payloads))]


def mesh_scaling_sweep(
    sides: Sequence[int] = (4, 6, 8, 10),
    variant: Variant = Variant.COMPLETE_NOACK,
    rate: float = 6.0,
    cycles: int = 5_000,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Circuit success vs. chip size (the paper's scalability concern).

    Longer paths mean more routers where a reservation can conflict, so
    the success rate falls as the mesh grows - the effect behind the gap
    between the paper's Figures 6a and 6b.
    """
    payloads = [
        (SystemConfig(n_cores=side * side).with_variant(variant),
         rate, cycles, seed, f"{side * side} cores")
        for side in sides
    ]
    return _measure_points(payloads, jobs)


def load_sweep(
    rates: Sequence[float] = (2.0, 6.0, 12.0, 24.0, 48.0),
    variant: Variant = Variant.COMPLETE_NOACK,
    n_cores: int = 16,
    cycles: int = 5_000,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Circuit success and latency vs. injection rate (section 5.5)."""
    payloads = [
        (SystemConfig(n_cores=n_cores).with_variant(variant),
         rate, cycles, seed, f"{rate:g} req/kcyc")
        for rate in rates
    ]
    return _measure_points(payloads, jobs)


def buffer_depth_sweep(
    depths: Sequence[int] = (3, 5, 8),
    variant: Variant = Variant.BASELINE,
    n_cores: int = 16,
    rate: float = 24.0,
    cycles: int = 5_000,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> List[SweepPoint]:
    """Reply latency vs. router buffer depth (baseline sensitivity).

    The paper's Table 4 fixes 5-flit buffers ("enough to store a whole
    message"); this sweep shows what that choice buys under load.
    """
    base = SystemConfig(n_cores=n_cores).with_variant(variant)
    payloads = [
        (replace(base, noc=replace(base.noc, buffer_depth_flits=depth)),
         rate, cycles, seed, f"{depth}-flit buffers")
        for depth in depths
    ]
    return _measure_points(payloads, jobs)


def render_sweep(points: Sequence[SweepPoint], title: str) -> str:
    """Plain-text rendering of a sweep."""
    lines = [title]
    width = max(len(p.label) for p in points)
    for p in points:
        lines.append(
            f"  {p.label.ljust(width)}  success {100 * p.circuit_success:5.1f}%"
            f"  reply latency {p.mean_reply_latency:6.1f} cyc"
            f"  load {p.offered_load:6.1f} flits/kcyc/node"
        )
    return "\n".join(lines)
