"""Crash-safe, multiprocess-shared result cache (``REPRO_CACHE``).

The cache is a single JSON file mapping spec keys to serialised
:class:`~repro.harness.experiment.RunResult` dicts.  Several processes --
parallel workers, concurrent pytest invocations sharing ``REPRO_CACHE`` --
read and write it at once, so the layer guarantees:

* **atomic publication**: writers dump to a private temp file and
  ``os.replace`` it over the cache, so readers always see either the old
  or the new complete file, never a torn ``json.dump``;
* **merge-on-write**: writers re-read the file under an exclusive lock
  file before publishing, so concurrent writers union their entries
  instead of overwriting each other;
* **versioning**: the file carries a ``schema`` field; unknown schemas
  are never silently reinterpreted;
* **quarantine**: a corrupt or unreadable cache file is renamed to
  ``<path>.corrupt.<pid>.<n>`` (and a warning logged) instead of being
  silently ignored -- the evidence survives, and subsequent runs start
  from a clean file rather than re-quarantining forever.  Only the
  newest ``QUARANTINE_KEEP`` quarantined files are retained.

Files written by pre-versioning releases (a bare ``{key: entry}`` dict)
are still read, and upgraded to the current schema on the next write.
"""

from __future__ import annotations

import errno
import itertools
import json
import logging
import os
import time
from typing import Dict, Optional

logger = logging.getLogger("repro.harness.cache")

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: Quarantined ``.corrupt.*`` siblings kept per cache file; older ones
#: are pruned so a flaky disk cannot grow the directory without bound.
QUARANTINE_KEEP = 5


class CacheLockTimeout(RuntimeError):
    """Raised when the cache lock file cannot be acquired in time."""


class FileLock:
    """Exclusive inter-process lock based on ``O_CREAT | O_EXCL``.

    Portable (no ``fcntl`` dependency) and safe on every local
    filesystem.  A lock file older than ``stale_seconds`` is assumed to
    belong to a crashed writer and is broken.
    """

    def __init__(self, path: str, timeout: float = 30.0,
                 stale_seconds: float = 30.0) -> None:
        self.path = path
        self.timeout = timeout
        self.stale_seconds = stale_seconds
        self._fd: Optional[int] = None

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        delay = 0.001
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(self._fd, str(os.getpid()).encode())
                return
            except FileExistsError:
                self._break_if_stale()
            except OSError as exc:  # pragma: no cover - exotic filesystems
                if exc.errno != errno.EEXIST:
                    raise
            if time.monotonic() >= deadline:
                raise CacheLockTimeout(
                    f"could not lock {self.path!r} within {self.timeout:g}s; "
                    "remove the file if its owner crashed"
                )
            time.sleep(delay)
            delay = min(delay * 2, 0.05)

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # released between our open() and stat()
        if age > self.stale_seconds:
            logger.warning("breaking stale cache lock %s (%.0fs old)",
                           self.path, age)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def release(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultCache:
    """One JSON cache file with locking, merging and quarantine."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.lock_path = path + ".lock"

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        path = os.environ.get("REPRO_CACHE")
        return cls(path) if path else None

    # -- reading ---------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        """Return the entry stored under ``key``, or None."""
        return self.load_all().get(key)

    def load_all(self) -> Dict[str, dict]:
        """Read every entry; quarantines the file if it is corrupt."""
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return {}  # quarantined/removed by a concurrent process
        except (OSError, ValueError) as exc:
            self._quarantine(f"unreadable JSON ({exc})")
            return {}
        entries = self._extract_entries(data)
        if entries is None:
            return {}
        # drop (don't crash on) individually corrupt entries
        return {k: v for k, v in entries.items() if isinstance(v, dict)}

    def _extract_entries(self, data: object) -> Optional[Dict[str, dict]]:
        if not isinstance(data, dict):
            self._quarantine("top level is not an object")
            return None
        if "schema" not in data:
            return data  # legacy flat {key: entry} layout
        if data.get("schema") != SCHEMA_VERSION or not isinstance(
            data.get("entries"), dict
        ):
            self._quarantine(
                f"unsupported schema {data.get('schema')!r} "
                f"(this build writes schema {SCHEMA_VERSION})"
            )
            return None
        return data["entries"]

    def _quarantine(self, reason: str) -> None:
        for n in itertools.count():
            dest = f"{self.path}.corrupt.{os.getpid()}.{n}"
            if not os.path.exists(dest):
                break
        try:
            os.replace(self.path, dest)
        except OSError:
            return  # another process already moved or removed it
        logger.warning("quarantined corrupt result cache %s -> %s: %s",
                       self.path, dest, reason)
        self._prune_quarantine()

    def _prune_quarantine(self) -> None:
        """Keep only the newest ``QUARANTINE_KEEP`` quarantined files.

        A repeatedly-corrupted cache (bad disk, crashing writers) must
        not grow an unbounded pile of ``.corrupt.*`` siblings.
        """
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        prefix = os.path.basename(self.path) + ".corrupt."
        try:
            names = [n for n in os.listdir(directory)
                     if n.startswith(prefix)]
        except OSError:  # pragma: no cover - directory vanished
            return
        if len(names) <= QUARANTINE_KEEP:
            return

        def mtime(name: str) -> float:
            try:
                return os.path.getmtime(os.path.join(directory, name))
            except OSError:
                return 0.0

        names.sort(key=mtime, reverse=True)
        for name in names[QUARANTINE_KEEP:]:
            victim = os.path.join(directory, name)
            try:
                os.unlink(victim)
            except OSError:  # pragma: no cover - concurrent prune
                continue
            logger.warning("pruned old quarantined cache file %s "
                           "(keeping newest %d)", victim, QUARANTINE_KEEP)

    # -- writing ---------------------------------------------------------

    def store(self, key: str, entry: dict) -> None:
        self.store_many({key: entry})

    def store_many(self, entries: Dict[str, dict]) -> None:
        """Merge ``entries`` into the cache file atomically."""
        if not entries:
            return
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with FileLock(self.lock_path):
            merged = self.load_all()
            merged.update(entries)
            self._publish(merged)

    def _publish(self, entries: Dict[str, dict]) -> None:
        payload = {"schema": SCHEMA_VERSION, "entries": entries}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
