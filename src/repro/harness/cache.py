"""Crash-safe, multiprocess-shared result store (``REPRO_CACHE``).

Two on-disk backends share one interface (``load`` / ``load_all`` /
``store`` / ``store_many``):

* :class:`ResultCache` -- the legacy layout: a single JSON file mapping
  spec keys to serialised :class:`~repro.harness.experiment.RunResult`
  dicts;
* :class:`ShardedCache` -- a directory of ``shard-NNN.json`` files, each
  an independent :class:`ResultCache` with its own lock file.  Entries
  are routed by their spec-key *prefix* (``n_cores/variant/workload``),
  so hundreds of concurrent writers -- the service daemon's worker
  fleet, parallel sweeps, concurrent pytest invocations -- contend only
  when writing the same sweep cell instead of all serialising on one
  global file.

Both backends guarantee, per file:

* **atomic publication**: writers dump to a private temp file and
  ``os.replace`` it over the cache, so readers always see either the old
  or the new complete file, never a torn ``json.dump``;
* **merge-on-write**: writers re-read the file under an exclusive lock
  file before publishing, so concurrent writers union their entries
  instead of overwriting each other;
* **versioning**: the file carries a ``schema`` field; unknown schemas
  are never silently reinterpreted;
* **quarantine**: a corrupt or unreadable cache file is renamed to
  ``<path>.corrupt.<pid>.<n>`` (and a warning logged) instead of being
  silently ignored -- the evidence survives, and subsequent runs start
  from a clean file rather than re-quarantining forever.  Only the
  newest ``QUARANTINE_KEEP`` quarantined files are retained.

:func:`open_cache` picks the backend (a directory or trailing separator
means sharded; ``REPRO_CACHE_SHARDS > 0`` requests sharding explicitly)
and performs the **one-shot migration** of a legacy single-file cache
into the sharded layout.  Migration never drops data: entries whose spec
keys no longer parse under the current key schema (see
:func:`parse_spec_key`) are quarantined to ``quarantined-keys.*.json``
inside the new store -- pruned to the newest :data:`QUARANTINE_KEEP`
files like every other quarantine -- instead of being discarded.

Files written by pre-versioning releases (a bare ``{key: entry}`` dict)
are still read, and upgraded to the current schema on the next write.
"""

from __future__ import annotations

import errno
import itertools
import json
import logging
import os
import time
import zlib
from typing import Dict, Optional, Union

logger = logging.getLogger("repro.harness.cache")

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: Quarantined ``.corrupt.*`` siblings kept per cache file; older ones
#: are pruned so a flaky disk cannot grow the directory without bound.
QUARANTINE_KEEP = 5

#: Shard files created when a sharded store is built without an explicit
#: count (kwarg or ``REPRO_CACHE_SHARDS``).
DEFAULT_SHARDS = 16

#: Manifest file anchoring a sharded store's geometry; its presence also
#: marks a directory as a sharded cache.
MANIFEST_NAME = "shards.json"


class CacheLockTimeout(RuntimeError):
    """Raised when the cache lock file cannot be acquired in time."""


class FileLock:
    """Exclusive inter-process lock based on ``O_CREAT | O_EXCL``.

    Portable (no ``fcntl`` dependency) and safe on every local
    filesystem.  A lock file older than ``stale_seconds`` is assumed to
    belong to a crashed writer and is broken.
    """

    def __init__(self, path: str, timeout: float = 30.0,
                 stale_seconds: float = 30.0) -> None:
        self.path = path
        self.timeout = timeout
        self.stale_seconds = stale_seconds
        self._fd: Optional[int] = None

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        delay = 0.001
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.write(self._fd, str(os.getpid()).encode())
                return
            except FileExistsError:
                self._break_if_stale()
            except OSError as exc:  # pragma: no cover - exotic filesystems
                if exc.errno != errno.EEXIST:
                    raise
            if time.monotonic() >= deadline:
                raise CacheLockTimeout(
                    f"could not lock {self.path!r} within {self.timeout:g}s; "
                    "remove the file if its owner crashed"
                )
            time.sleep(delay)
            delay = min(delay * 2, 0.05)

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # released between our open() and stat()
        if age > self.stale_seconds:
            logger.warning("breaking stale cache lock %s (%.0fs old)",
                           self.path, age)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def release(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultCache:
    """One JSON cache file with locking, merging and quarantine."""

    def __init__(self, path: str, lock_timeout: float = 30.0,
                 lock_stale: float = 30.0) -> None:
        self.path = path
        self.lock_path = path + ".lock"
        self.lock_timeout = lock_timeout
        self.lock_stale = lock_stale

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        path = os.environ.get("REPRO_CACHE")
        return cls(path) if path else None

    # -- reading ---------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        """Return the entry stored under ``key``, or None."""
        return self.load_all().get(key)

    def load_all(self) -> Dict[str, dict]:
        """Read every entry; quarantines the file if it is corrupt."""
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return {}  # quarantined/removed by a concurrent process
        except (OSError, ValueError) as exc:
            self._quarantine(f"unreadable JSON ({exc})")
            return {}
        entries = self._extract_entries(data)
        if entries is None:
            return {}
        # drop (don't crash on) individually corrupt entries
        return {k: v for k, v in entries.items() if isinstance(v, dict)}

    def _extract_entries(self, data: object) -> Optional[Dict[str, dict]]:
        if not isinstance(data, dict):
            self._quarantine("top level is not an object")
            return None
        if "schema" not in data:
            return data  # legacy flat {key: entry} layout
        if data.get("schema") != SCHEMA_VERSION or not isinstance(
            data.get("entries"), dict
        ):
            self._quarantine(
                f"unsupported schema {data.get('schema')!r} "
                f"(this build writes schema {SCHEMA_VERSION})"
            )
            return None
        return data["entries"]

    def _quarantine(self, reason: str) -> None:
        for n in itertools.count():
            dest = f"{self.path}.corrupt.{os.getpid()}.{n}"
            if not os.path.exists(dest):
                break
        try:
            os.replace(self.path, dest)
        except OSError:
            return  # another process already moved or removed it
        logger.warning("quarantined corrupt result cache %s -> %s: %s",
                       self.path, dest, reason)
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        prune_quarantine(directory, os.path.basename(self.path) + ".corrupt.")

    # -- writing ---------------------------------------------------------

    def store(self, key: str, entry: dict) -> None:
        self.store_many({key: entry})

    def store_many(self, entries: Dict[str, dict]) -> None:
        """Merge ``entries`` into the cache file atomically."""
        if not entries:
            return
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with FileLock(self.lock_path, timeout=self.lock_timeout,
                      stale_seconds=self.lock_stale):
            merged = self.load_all()
            merged.update(entries)
            self._publish(merged)

    def _publish(self, entries: Dict[str, dict]) -> None:
        payload = {"schema": SCHEMA_VERSION, "entries": entries}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Quarantine pruning (shared by corrupt-file and migration quarantines).
# ----------------------------------------------------------------------

def prune_quarantine(directory: str, prefix: str,
                     keep: int = QUARANTINE_KEEP) -> None:
    """Keep only the newest ``keep`` files matching ``prefix``.

    A repeatedly-corrupted cache (bad disk, crashing writers) or a
    repeatedly re-run migration must not grow an unbounded pile of
    quarantined siblings.
    """
    try:
        names = [n for n in os.listdir(directory) if n.startswith(prefix)]
    except OSError:  # pragma: no cover - directory vanished
        return
    if len(names) <= keep:
        return

    def mtime(name: str) -> float:
        try:
            return os.path.getmtime(os.path.join(directory, name))
        except OSError:
            return 0.0

    names.sort(key=mtime, reverse=True)
    for name in names[keep:]:
        victim = os.path.join(directory, name)
        try:
            os.unlink(victim)
        except OSError:  # pragma: no cover - concurrent prune
            continue
        logger.warning("pruned old quarantined cache file %s "
                       "(keeping newest %d)", victim, keep)


# ----------------------------------------------------------------------
# Spec-key schema.
# ----------------------------------------------------------------------

def parse_spec_key(key: str) -> Dict[str, object]:
    """Parse a spec key under the current schema; raises ``ValueError``.

    The schema is the producer contract of
    :meth:`repro.harness.experiment.RunSpec.key`::

        n_cores/variant/workload/seed/measure/warmup[/topology]

    Used by the migration path to decide which legacy entries still mean
    anything to this build (unparseable ones are quarantined, never
    silently dropped) and by the service daemon to validate submitted
    keys.
    """
    parts = key.split("/")
    if len(parts) not in (6, 7):
        raise ValueError(
            f"spec key {key!r} has {len(parts)} components, expected "
            f"n_cores/variant/workload/seed/measure/warmup[/topology]"
        )
    n_cores_s, variant, workload, seed_s, measure_s, warmup_s = parts[:6]
    try:
        n_cores = int(n_cores_s)
        seed = int(seed_s)
        measure = int(measure_s)
        warmup = int(warmup_s)
    except ValueError:
        raise ValueError(
            f"spec key {key!r} has non-integer numeric components"
        ) from None
    if n_cores <= 0 or measure <= 0 or warmup < 0:
        raise ValueError(f"spec key {key!r} has out-of-range quanta")
    from repro.sim.config import Variant

    if variant not in {v.value for v in Variant}:
        raise ValueError(f"spec key {key!r} names unknown variant "
                         f"{variant!r}")
    if not workload:
        raise ValueError(f"spec key {key!r} has an empty workload")
    parsed: Dict[str, object] = {
        "n_cores": n_cores, "variant": variant, "workload": workload,
        "seed": seed, "measure_instructions": measure,
        "warmup_instructions": warmup,
    }
    if len(parts) == 7:
        from repro.noc.topology import TOPOLOGY_CHOICES

        topology = parts[6]
        # mesh keys never carry the suffix (historical-key compatibility)
        if topology == "mesh" or topology not in TOPOLOGY_CHOICES:
            raise ValueError(f"spec key {key!r} names unknown topology "
                             f"{topology!r}")
        parsed["topology"] = topology
    return parsed


def spec_key_shard(key: str, n_shards: int) -> int:
    """Stable shard index for ``key``: CRC32 of its cell prefix.

    The prefix is the first three components (``n_cores/variant/
    workload``), so every seed/quantum/topology variation of one sweep
    cell lands in the same shard file while different cells -- the axis
    concurrent sweeps actually fan out over -- spread across shards.
    """
    prefix = "/".join(key.split("/")[:3])
    return zlib.crc32(prefix.encode()) % n_shards


# ----------------------------------------------------------------------
# Sharded store.
# ----------------------------------------------------------------------

class ShardedCache:
    """A directory of per-shard :class:`ResultCache` files.

    Geometry is anchored by a ``shards.json`` manifest written when the
    store is created; later openers follow the manifest regardless of
    their own ``n_shards`` argument, so concurrent processes with
    different environments always agree on the key -> shard routing.
    """

    def __init__(self, root: str, n_shards: Optional[int] = None,
                 lock_timeout: float = 30.0,
                 lock_stale: float = 30.0) -> None:
        self.root = root
        self.lock_timeout = lock_timeout
        self.lock_stale = lock_stale
        os.makedirs(root, exist_ok=True)
        self.n_shards = self._anchor_manifest(n_shards)
        self._shards: Dict[int, ResultCache] = {}

    def _anchor_manifest(self, n_shards: Optional[int]) -> int:
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        with FileLock(manifest_path + ".lock", timeout=self.lock_timeout,
                      stale_seconds=self.lock_stale):
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
                existing = int(manifest["n_shards"])
                if manifest.get("schema") != SCHEMA_VERSION or existing < 1:
                    raise ValueError(f"bad manifest {manifest!r}")
            except FileNotFoundError:
                chosen = n_shards if n_shards else DEFAULT_SHARDS
                if chosen < 1:
                    raise ValueError(
                        f"a sharded cache needs >= 1 shard, got {chosen}")
                tmp = f"{manifest_path}.tmp.{os.getpid()}"
                with open(tmp, "w") as handle:
                    json.dump({"schema": SCHEMA_VERSION,
                               "n_shards": chosen}, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, manifest_path)
                return chosen
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"unreadable sharded-cache manifest {manifest_path!r}: "
                    f"{exc}"
                ) from None
        if n_shards and n_shards != existing:
            logger.warning(
                "sharded cache %s has %d shards (manifest); ignoring the "
                "requested %d", self.root, existing, n_shards)
        return existing

    def _shard(self, index: int) -> ResultCache:
        cache = self._shards.get(index)
        if cache is None:
            cache = ResultCache(
                os.path.join(self.root, f"shard-{index:03d}.json"),
                lock_timeout=self.lock_timeout, lock_stale=self.lock_stale,
            )
            self._shards[index] = cache
        return cache

    def shard_for(self, key: str) -> ResultCache:
        return self._shard(spec_key_shard(key, self.n_shards))

    # -- reading ---------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        return self.shard_for(key).load(key)

    def load_all(self) -> Dict[str, dict]:
        merged: Dict[str, dict] = {}
        for index in range(self.n_shards):
            merged.update(self._shard(index).load_all())
        return merged

    # -- writing ---------------------------------------------------------

    def store(self, key: str, entry: dict) -> None:
        self.store_many({key: entry})

    def store_many(self, entries: Dict[str, dict]) -> None:
        """Group entries by shard; each shard publishes atomically.

        Writers touching disjoint shards never contend; writers sharing
        a shard serialise only on that shard's lock file.
        """
        by_shard: Dict[int, Dict[str, dict]] = {}
        for key, entry in entries.items():
            by_shard.setdefault(
                spec_key_shard(key, self.n_shards), {})[key] = entry
        for index, group in sorted(by_shard.items()):
            self._shard(index).store_many(group)

    # -- migration quarantine -------------------------------------------

    def quarantine_entries(self, entries: Dict[str, dict],
                           reason: str) -> Optional[str]:
        """Preserve unmigratable entries inside the store; returns path."""
        if not entries:
            return None
        for n in itertools.count():
            dest = os.path.join(
                self.root, f"quarantined-keys.{os.getpid()}.{n}.json")
            if not os.path.exists(dest):
                break
        tmp = f"{dest}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump({"schema": SCHEMA_VERSION, "reason": reason,
                       "entries": entries}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, dest)
        logger.warning(
            "quarantined %d legacy cache entr%s with unparseable spec "
            "keys -> %s: %s", len(entries),
            "y" if len(entries) == 1 else "ies", dest, reason)
        prune_quarantine(self.root, "quarantined-keys.")
        return dest


CacheBackend = Union[ResultCache, ShardedCache]


def migrate_legacy_file(path: str, n_shards: Optional[int] = None
                        ) -> ShardedCache:
    """One-shot migration: legacy single-file cache -> sharded store.

    Entries whose spec keys parse under the current schema are routed to
    their shards; the rest are *quarantined* inside the new store (never
    dropped).  The legacy file is preserved as ``<path>.migrated``.
    Concurrent migrators serialise on a lock file; the loser finds a
    directory and simply opens it.
    """
    with FileLock(path + ".migrate.lock", timeout=60.0):
        if os.path.isdir(path):  # somebody else migrated while we waited
            return ShardedCache(path, n_shards)
        legacy = ResultCache(path)
        entries = legacy.load_all()
        good: Dict[str, dict] = {}
        bad: Dict[str, dict] = {}
        errors = []
        for key, entry in entries.items():
            try:
                parse_spec_key(key)
            except ValueError as exc:
                bad[key] = entry
                if len(errors) < 3:
                    errors.append(str(exc))
                continue
            good[key] = entry
        # Build the sharded store beside the file, move the legacy file
        # aside, then claim its path.  A crash in between leaves the
        # fully-populated temp directory and the .migrated backup; no
        # window loses entries that existed in only one place.
        tmp_root = f"{path}.tmp-shards.{os.getpid()}"
        store = ShardedCache(tmp_root, n_shards)
        store.store_many(good)
        store.quarantine_entries(
            bad, "; ".join(errors) if errors else "unparseable spec keys")
        if os.path.exists(path):
            os.replace(path, path + ".migrated")
        os.rename(tmp_root, path)
        logger.warning(
            "migrated legacy result cache %s -> sharded store "
            "(%d entr%s, %d quarantined; original kept as %s)",
            path, len(good), "y" if len(good) == 1 else "ies", len(bad),
            path + ".migrated")
        return ShardedCache(path, n_shards)


def open_cache(path: str, n_shards: Optional[int] = None) -> CacheBackend:
    """Open the result store at ``path``, picking the right backend.

    * an existing directory (or a path with a trailing separator, or an
      explicit ``n_shards``/``REPRO_CACHE_SHARDS`` > 0) -> sharded store;
    * an existing legacy *file* with sharding requested -> one-shot
      migration into a sharded store at the same path;
    * anything else -> the legacy single-file :class:`ResultCache`.
    """
    if n_shards is None:
        from repro import config as repro_config

        n_shards = repro_config.resolve("cache_shards")
    wants_dir = (
        path.endswith(os.sep) or path.endswith("/")
        or os.path.isdir(path)
        or (n_shards or 0) > 0
    )
    clean = path.rstrip("/").rstrip(os.sep) or path
    if not wants_dir:
        return ResultCache(clean)
    if os.path.isfile(clean):
        return migrate_legacy_file(clean, n_shards or None)
    return ShardedCache(clean, n_shards or None)


def cache_from_env() -> Optional[CacheBackend]:
    """The shared result store named by ``REPRO_CACHE``, if configured."""
    path = os.environ.get("REPRO_CACHE")
    return open_cache(path) if path else None
