"""Multiprocess experiment engine.

Every :class:`~repro.harness.experiment.RunSpec` is independent (own
system, own deterministic RNG seeded from the spec), so a sweep is
embarrassingly parallel.  This module schedules specs across a
:class:`concurrent.futures.ProcessPoolExecutor` and feeds the results
back into the in-process memo, so the serial table/figure assembly code
consumes them exactly as if it had computed them itself:

* worker count from ``REPRO_JOBS`` (``0`` = one worker per CPU core,
  which is also the default when the engine is invoked explicitly);
* a per-run timeout enforced *inside* the worker via ``SIGALRM`` (the
  pool slot is freed, the pool survives);
* one retry when a worker process dies (segfault, OOM kill, ...);
* progress / ETA logging through the ``repro.harness.parallel`` logger
  and an optional ``echo`` callback.

Determinism: a run's measurements depend only on its spec (seeds
included), never on scheduling, and results are assembled by spec key,
so parallel and serial execution produce bit-identical
:class:`RunResult` values.

Crash recovery composes with checkpointing (``REPRO_CHECKPOINT`` /
``REPRO_RESUME``, see :mod:`repro.sim.checkpoint`): workers inherit the
environment and checkpoint directories are keyed by spec key, so each
run in a parallel sweep checkpoints independently and a re-submitted
sweep resumes every interrupted run from its own newest snapshot —
completed runs come straight from the result cache.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Optional

logger = logging.getLogger("repro.harness.parallel")


class ParallelError(RuntimeError):
    """Base class for experiment-engine failures."""


class RunTimeoutError(ParallelError):
    """A run exceeded its per-run timeout."""


class WorkerCrashError(ParallelError):
    """A run kept killing its worker process after the allowed retries."""


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Worker-process count: explicit value, else ``REPRO_JOBS``, else
    ``default``.  ``0`` means one worker per CPU core.
    """
    if jobs is None:
        from repro import config as repro_config

        jobs = repro_config.resolve("jobs")
        if jobs is None:
            jobs = default
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"REPRO_JOBS / --jobs must be >= 0 "
            f"(0 = one worker per CPU core), got {jobs}"
        )
    return jobs


def _invoke(worker: Callable, payload, timeout: Optional[float]):
    """Run ``worker(payload)`` in the child, enforcing the per-run timeout.

    ``SIGALRM`` interrupts the simulation loop wherever it is, the
    resulting :class:`RunTimeoutError` pickles back through the future,
    and the worker process stays alive for the next task.
    """
    if timeout and timeout > 0 and hasattr(signal, "SIGALRM"):
        def _alarm(signum, frame):
            raise RunTimeoutError(f"run exceeded the {timeout:g}s timeout")

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return worker(payload)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return worker(payload)


def run_tasks(
    tasks: Dict[str, object],
    worker: Callable,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    crash_retries: int = 1,
    echo: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run ``worker(payload)`` for every ``{key: payload}`` task.

    Returns ``{key: result}``.  Raises :class:`RunTimeoutError` if any
    run times out, :class:`WorkerCrashError` if any run is still killing
    its worker process after ``crash_retries`` retries, and re-raises
    the first ordinary worker exception.

    Crash accounting: at most ``jobs`` tasks are in flight at a time, so
    when a worker death breaks the pool only the tasks actually running
    are charged an attempt - the queued backlog is retried for free.  A
    task that exhausts its retries is dropped (and reported at the end)
    while the remaining tasks keep running; one poisonous configuration
    cannot abort the innocent rest of a sweep.
    """
    jobs = resolve_jobs(jobs)
    todo = dict(tasks)
    results: Dict[str, object] = {}
    attempts = {key: 0 for key in todo}
    timed_out: Dict[str, RunTimeoutError] = {}
    crashed: Dict[str, int] = {}
    total = len(todo)
    started = time.monotonic()

    def _progress() -> None:
        # "done" counts terminal outcomes - successes AND timeouts -
        # so the ETA stays truthful when runs hit the timeout.
        done = len(results) + len(timed_out)
        elapsed = time.monotonic() - started
        eta = elapsed / done * (total - done) if done else float("inf")
        message = (f"[repro] {done}/{total} runs done, "
                   f"{elapsed:.0f}s elapsed, ETA {eta:.0f}s")
        logger.info(message)
        if echo is not None:
            echo(message)

    while todo:
        pool_broke = False
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            backlog = deque(todo.items())
            futures: Dict[object, str] = {}  # in-flight future -> key

            def _fill() -> None:
                # Submission is throttled to the worker count: every
                # in-flight task owns a worker, so on a pool break the
                # in-flight set is exactly the candidate-killer set.
                while backlog and len(futures) < jobs:
                    key, payload = backlog.popleft()
                    futures[pool.submit(_invoke, worker, payload,
                                        timeout)] = key

            _fill()
            while futures:
                finished, _ = wait(set(futures),
                                   return_when=FIRST_COMPLETED)
                for future in finished:
                    key = futures.pop(future)
                    try:
                        results[key] = future.result()
                    except RunTimeoutError as exc:
                        # no retry: a deterministic run that timed out
                        # once will time out again
                        timed_out[key] = exc
                        todo.pop(key)
                        _progress()
                    except BrokenProcessPool:
                        # only the tasks in flight when the pool broke
                        # land here; the backlog was never submitted and
                        # is not charged an attempt
                        pool_broke = True
                        attempts[key] += 1
                    except Exception:
                        # an ordinary worker error is deterministic;
                        # don't wait for the rest of the matrix before
                        # raising it
                        for pending in futures:
                            pending.cancel()
                        raise
                    else:
                        todo.pop(key)
                        _progress()
                if not pool_broke:
                    _fill()
        if pool_broke:
            exhausted = sorted(
                key for key in todo if attempts[key] > crash_retries
            )
            for key in exhausted:
                # drop the culprit, keep running everything else
                crashed[key] = attempts[key]
                todo.pop(key)
            if exhausted:
                logger.warning(
                    "giving up on %d run(s) after repeated worker "
                    "deaths: %s", len(exhausted), ", ".join(exhausted),
                )
            if todo:
                logger.warning(
                    "worker process died; retrying %d unfinished run(s)",
                    len(todo),
                )
    if crashed:
        keys = ", ".join(sorted(crashed))
        raise WorkerCrashError(
            f"worker process died repeatedly (> {crash_retries} "
            f"retries) while running: {keys}"
        )
    if timed_out:
        keys = ", ".join(sorted(timed_out))
        raise RunTimeoutError(
            f"{len(timed_out)} run(s) exceeded the {timeout:g}s "
            f"per-run timeout: {keys}"
        )
    return results


def _run_one(spec) -> object:
    """Pool worker: simulate one spec (module-level, hence picklable)."""
    from repro.harness.experiment import run_experiment

    return run_experiment(spec)


def _run_one_safe(spec) -> object:
    """Pool worker with graceful degradation: a simulation failure comes
    back as a failure RunResult (plus saved crash report) instead of an
    exception that would abort the whole sweep."""
    from repro.harness.experiment import run_experiment_safe

    return run_experiment_safe(spec)


def run_specs(
    specs: Iterable,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    echo: Optional[Callable[[str], None]] = None,
    safe: bool = False,
):
    """Compute every spec across worker processes; seed the local memo.

    Returns ``{scaled spec key: RunResult}``.  Specs already memoised in
    this process are served locally; the rest are deduplicated by key and
    farmed out.  Afterwards ``run_experiment`` on any of these specs is a
    memo hit, so serial assembly code (tables, figures) transparently
    consumes parallel results.

    With ``safe=True`` workers degrade simulation failures to failure
    RunResults (see :func:`experiment.run_experiment_safe`) instead of
    aborting the sweep.
    """
    from repro.harness import experiment

    jobs = resolve_jobs(jobs, default=0)
    unique: Dict[str, object] = {}
    for spec in specs:
        unique.setdefault(spec.scaled().key(), spec)

    results = {}
    pending: Dict[str, object] = {}
    for key, spec in unique.items():
        if key in experiment._memo:
            results[key] = experiment._memo[key]
        else:
            pending[key] = spec

    runner = experiment.run_experiment_safe if safe else experiment.run_experiment
    if pending:
        if jobs <= 1 or len(pending) == 1:
            # The serial fallback must uphold this function's memo
            # contract itself (not rely on the runner's internals), so
            # both execution paths seed the memo identically.
            for key, spec in pending.items():
                result = runner(spec)
                experiment._memo[key] = result
                results[key] = result
        else:
            logger.info("running %d spec(s) across %d worker processes",
                        len(pending), jobs)
            computed = run_tasks(pending,
                                 worker=_run_one_safe if safe else _run_one,
                                 jobs=jobs, timeout=timeout, echo=echo)
            for key, result in computed.items():
                experiment._memo[key] = result
                results[key] = result
    return results
