"""Reproduction of the paper's Figures 6-10 (evaluation section)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuits.outcomes import OUTCOME_ORDER
from repro.harness.experiment import (
    RunSpec,
    env_flag,
    run_experiment,
    run_experiment_safe,
)
from repro.noc.topology import TOPOLOGY_CHOICES
from repro.sim.config import Variant
from repro.sim.stats import mean_and_stderr


def _run(spec: RunSpec):
    """Graceful-degradation runner (``REPRO_FAILFAST=1`` restores raising)."""
    if env_flag("REPRO_FAILFAST"):
        return run_experiment(spec)
    return run_experiment_safe(spec)


def _ratio(value: float, reference: float) -> float:
    """NaN-safe ratio: a failed run contributes NaN instead of crashing."""
    if not value or not reference:
        return float("nan")
    return value / reference

#: Circuit-building configurations of Fig. 6 (both chip sizes).
FIG6_VARIANTS = [
    Variant.FRAGMENTED,
    Variant.COMPLETE,
    Variant.COMPLETE_NOACK,
    Variant.REUSE_NOACK,
    Variant.TIMED_NOACK,
    Variant.SLACK1_NOACK,
    Variant.SLACK2_NOACK,
    Variant.SLACK4_NOACK,
    Variant.SLACKDELAY1_NOACK,
    Variant.SLACKDELAY2_NOACK,
    Variant.POSTPONED1_NOACK,
    Variant.POSTPONED2_NOACK,
    Variant.IDEAL,
]

#: Latency comparison configurations of Fig. 7.
FIG7_VARIANTS = [
    Variant.BASELINE,
    Variant.FRAGMENTED,
    Variant.COMPLETE,
    Variant.COMPLETE_NOACK,
    Variant.REUSE_NOACK,
    Variant.TIMED_NOACK,
    Variant.SLACKDELAY1_NOACK,
    Variant.POSTPONED1_NOACK,
    Variant.IDEAL,
]

#: Energy configurations of Fig. 8 (paper excludes Ideal and Postponed).
FIG8_VARIANTS = [
    Variant.FRAGMENTED,
    Variant.COMPLETE,
    Variant.COMPLETE_NOACK,
    Variant.REUSE_NOACK,
    Variant.TIMED_NOACK,
    Variant.SLACKDELAY1_NOACK,
]

#: Speedup configurations of Fig. 9.
FIG9_VARIANTS = [
    Variant.FRAGMENTED,
    Variant.COMPLETE,
    Variant.COMPLETE_NOACK,
    Variant.REUSE_NOACK,
    Variant.TIMED_NOACK,
    Variant.SLACKDELAY1_NOACK,
    Variant.IDEAL,
]

#: Paper headline numbers for cross-checking (EXPERIMENTS.md).
PAPER_ENERGY_REDUCTION = {16: 15.2, 64: 20.8}  # Complete_NoAck, percent
PAPER_SPEEDUP = {
    (Variant.COMPLETE_NOACK, 16): 3.8,
    (Variant.COMPLETE_NOACK, 64): 4.8,
    (Variant.SLACKDELAY1_NOACK, 16): 4.4,
    (Variant.SLACKDELAY1_NOACK, 64): 6.0,
}


def figure6(workloads: List[str], n_cores: int, seed: int = 1
            ) -> Dict[str, Dict[str, float]]:
    """Reply outcome breakdown per variant (averaged over workloads)."""
    out: Dict[str, Dict[str, float]] = {}
    for variant in FIG6_VARIANTS:
        sums = {o.value: 0.0 for o in OUTCOME_ORDER}
        for workload in workloads:
            result = _run(RunSpec(n_cores, variant, workload, seed))
            for key, value in result.outcomes.items():
                sums[key] += value
        out[variant.value] = {
            key: value / len(workloads) for key, value in sums.items()
        }
    return out


def figure7(workloads: List[str], n_cores: int, seed: int = 1
            ) -> Dict[str, Dict[str, Tuple[float, float, float]]]:
    """Message latency by class per variant.

    Per class: (mean network latency, mean queueing latency, network
    latency p95), workload-averaged.  The p95 comes from the full
    distributions that :meth:`RunResult.percentile` now carries, so the
    tail is measured, not approximated from means.
    """
    out: Dict[str, Dict[str, Tuple[float, float, float]]] = {}
    for variant in FIG7_VARIANTS:
        per_class = {cls: [0.0, 0.0, 0.0] for cls in ("req", "crep", "norep")}
        for workload in workloads:
            result = _run(RunSpec(n_cores, variant, workload, seed))
            for cls in per_class:
                per_class[cls][0] += result.mean(f"lat.net.{cls}")
                per_class[cls][1] += result.mean(f"lat.queue.{cls}")
                per_class[cls][2] += result.percentile(f"lat.net.{cls}", 95)
        out[variant.value] = {
            cls: tuple(value / len(workloads) for value in vals)
            for cls, vals in per_class.items()
        }
    return out


def figure8(workloads: List[str], n_cores: int, seed: int = 1
            ) -> Dict[str, Tuple[float, float]]:
    """Network energy normalised to baseline: (mean, stderr) per variant."""
    base = {
        w: _run(RunSpec(n_cores, Variant.BASELINE, w, seed))
        for w in workloads
    }
    out: Dict[str, Tuple[float, float]] = {"Baseline": (1.0, 0.0)}
    for variant in FIG8_VARIANTS:
        ratios = []
        for workload in workloads:
            result = _run(RunSpec(n_cores, variant, workload, seed))
            ratios.append(_ratio(result.energy_total, base[workload].energy_total))
        out[variant.value] = mean_and_stderr(ratios)
    return out


def figure9(workloads: List[str], n_cores: int, seed: int = 1
            ) -> Dict[str, Tuple[float, float]]:
    """Speedup vs. baseline: (mean, stderr) per variant."""
    base = {
        w: _run(RunSpec(n_cores, Variant.BASELINE, w, seed))
        for w in workloads
    }
    out: Dict[str, Tuple[float, float]] = {}
    for variant in FIG9_VARIANTS:
        speedups = []
        for workload in workloads:
            result = _run(RunSpec(n_cores, variant, workload, seed))
            speedups.append(_ratio(base[workload].exec_cycles, result.exec_cycles))
        out[variant.value] = mean_and_stderr(speedups)
    return out


def figure10(workloads: List[str], n_cores: int = 64, seed: int = 1,
             variant: Variant = Variant.SLACKDELAY1_NOACK
             ) -> Dict[str, float]:
    """Per-application speedup for timed circuits with slack+delay of 1."""
    out: Dict[str, float] = {}
    for workload in workloads:
        base = _run(RunSpec(n_cores, Variant.BASELINE, workload, seed))
        result = _run(RunSpec(n_cores, variant, workload, seed))
        out[workload] = _ratio(base.exec_cycles, result.exec_cycles)
    return out


def figure_topology(workloads: List[str], n_cores: int = 16, seed: int = 1,
                    topologies: Tuple[str, ...] = TOPOLOGY_CHOICES,
                    variant: Variant = Variant.COMPLETE_NOACK
                    ) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Circuit effectiveness per topology (BASELINE vs ``variant``).

    Per topology: workload-averaged (mean, stderr) of the speedup over
    that topology's own baseline, of the circuit success rate, and of
    the mean circuit-reply network latency.  The paper's mechanism only
    needs deterministic same-routers routing, so the comparison shows it
    carrying over from the mesh to the torus and concentrated mesh.
    """
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for topology in topologies:
        speedups, success, latency = [], [], []
        for workload in workloads:
            base = _run(RunSpec(n_cores, Variant.BASELINE, workload, seed,
                                topology=topology))
            result = _run(RunSpec(n_cores, variant, workload, seed,
                                  topology=topology))
            speedups.append(_ratio(base.exec_cycles, result.exec_cycles))
            replies = result.counter("circuit.replies_total")
            success.append(
                result.counter("circuit.outcome.on_circuit") / replies
                if replies else float("nan")
            )
            latency.append(result.mean("lat.net.crep"))
        out[topology] = {
            "speedup": mean_and_stderr(speedups),
            "circuit_success": mean_and_stderr(success),
            "reply_latency": mean_and_stderr(latency),
        }
    return out
