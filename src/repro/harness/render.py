"""Plain-text rendering of reproduced tables and figures."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Tuple

from repro.circuits.outcomes import OUTCOME_ORDER


def format_table(headers: List[str], rows: Iterable[List[str]]) -> str:
    """Monospace table with column alignment."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def render_table1(measured: Mapping[str, float],
                  paper: Mapping[str, float]) -> str:
    rows = []
    for key in measured:
        rows.append([
            key,
            f"{measured[key]:.1f}%",
            f"{paper.get(key, float('nan')):.1f}%" if key in paper else "-",
        ])
    return format_table(["message class", "measured", "paper"], rows)


def render_table5(measured: Mapping[object, float],
                  paper: Mapping[object, float]) -> str:
    rows = []
    for key in (1, 2, 3, 4, 5, "failed"):
        label = f"{key}th circuit" if isinstance(key, int) else "failed"
        rows.append([
            label,
            f"{measured.get(key, 0.0):.1f}%",
            f"{paper.get(key, 0.0):.1f}%",
        ])
    return format_table(["reservation", "measured", "paper"], rows)


def render_table6(measured: Mapping[Tuple[str, int], float],
                  paper: Mapping[Tuple[str, int], float]) -> str:
    rows = []
    for (label, cores), value in measured.items():
        rows.append([
            label, f"{cores} cores", f"{value:+.2f}%",
            f"{paper.get((label, cores), float('nan')):+.2f}%",
        ])
    return format_table(["version", "chip", "measured", "paper"], rows)


def render_figure6(data: Mapping[str, Mapping[str, float]]) -> str:
    headers = ["variant"] + [o.value for o in OUTCOME_ORDER]
    rows = []
    for variant, outcomes in data.items():
        rows.append([variant] + [
            f"{100 * outcomes.get(o.value, 0.0):.1f}%" for o in OUTCOME_ORDER
        ])
    return format_table(headers, rows)


def render_figure7(
    data: Mapping[str, Mapping[str, Tuple[float, ...]]]
) -> str:
    headers = ["variant", "req net+q", "circuit-rep net+q",
               "no-circuit net+q", "crep p95"]

    def cell(values: Tuple[float, ...]) -> str:
        return "{:.1f}+{:.1f}".format(values[0], values[1])

    rows = []
    for variant, classes in data.items():
        crep = classes["crep"]
        p95 = f"{crep[2]:.1f}" if len(crep) > 2 else "-"
        rows.append([
            variant,
            cell(classes["req"]),
            cell(crep),
            cell(classes["norep"]),
            p95,
        ])
    return format_table(headers, rows)


def render_ratio_figure(data: Mapping[str, Tuple[float, float]],
                        value_label: str) -> str:
    rows = [
        [variant, f"{mean:.3f}", f"±{err:.3f}"]
        for variant, (mean, err) in data.items()
    ]
    return format_table(["variant", value_label, "stderr"], rows)


def render_figure10(data: Mapping[str, float]) -> str:
    rows = [
        [workload, f"{speedup:.3f}", f"{100 * (speedup - 1):+.1f}%"]
        for workload, speedup in sorted(data.items(), key=lambda kv: -kv[1])
    ]
    return format_table(["application", "speedup", "gain"], rows)


def render_figure_topology(
    data: Mapping[str, Mapping[str, Tuple[float, float]]]
) -> str:
    rows = []
    for topology, metrics in data.items():
        speedup, speedup_err = metrics["speedup"]
        success, _ = metrics["circuit_success"]
        latency, _ = metrics["reply_latency"]
        rows.append([
            topology,
            f"{speedup:.3f}",
            f"±{speedup_err:.3f}",
            f"{100 * success:.1f}%",
            f"{latency:.1f}",
        ])
    return format_table(
        ["topology", "speedup", "stderr", "circuit hit rate",
         "crep latency (cycles)"],
        rows,
    )
