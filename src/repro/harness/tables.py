"""Reproduction of the paper's Tables 1, 5 and 6."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.coherence.messages import Kind, REPLY_KINDS, REQUEST_KINDS
from repro.harness.experiment import RunResult, RunSpec, run_experiment
from repro.power.area import area_savings, router_area
from repro.sim.config import SystemConfig, Variant

#: The paper's Table 1 (64-core averages, % of all network messages).
TABLE1_PAPER = {
    "requests": 47.0,
    Kind.L2_REPLY: 22.6,
    Kind.L1_DATA_ACK: 23.0,
    Kind.L2_WB_ACK: 4.7,
    Kind.L1_INV_ACK: 1.1,
    "MEMORY": 0.9,
    Kind.L1_TO_L1: 0.7,
}

#: The paper's Table 5 (Complete+NoAck, 64 cores).
TABLE5_PAPER = {1: 48.0, 2: 24.0, 3: 7.0, 4: 6.0, 5: 6.0, "failed": 9.0}

#: The paper's Table 6 (% router area savings; negative = larger).
TABLE6_PAPER = {
    ("Fragmented", 16): -19.28,
    ("Fragmented", 64): -18.96,
    ("Complete", 16): 6.21,
    ("Complete", 64): 5.77,
    ("Complete Timed", 16): 3.38,
    ("Complete Timed", 64): 1.09,
}


def _message_counts(results: Iterable[RunResult]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for result in results:
        for key, value in result.counters_with_prefix("msg.count.").items():
            kind = key[len("msg.count."):]
            total[kind] = total.get(kind, 0) + value
    return total


def table1(workloads: List[str], n_cores: int = 64, seed: int = 1
           ) -> Dict[str, float]:
    """Message-type percentages on the baseline network (paper Table 1)."""
    results = [
        run_experiment(RunSpec(n_cores, Variant.BASELINE, w, seed))
        for w in workloads
    ]
    counts = _message_counts(results)
    counts.pop(f"{Kind.L1_DATA_ACK}_eliminated", None)  # baseline: none
    total = sum(counts.values())
    if total == 0:
        return {}
    pct = {kind: 100.0 * value / total for kind, value in counts.items()}
    requests = sum(pct.get(kind, 0.0) for kind in REQUEST_KINDS)
    replies = sum(pct.get(kind, 0.0) for kind in REPLY_KINDS)
    return {
        "requests": requests,
        "replies": replies,
        Kind.L2_REPLY: pct.get(Kind.L2_REPLY, 0.0),
        Kind.L1_DATA_ACK: pct.get(Kind.L1_DATA_ACK, 0.0),
        Kind.L2_WB_ACK: pct.get(Kind.L2_WB_ACK, 0.0),
        Kind.L1_INV_ACK: pct.get(Kind.L1_INV_ACK, 0.0),
        "MEMORY": pct.get(Kind.MEMORY_DATA, 0.0) + pct.get(Kind.MEMORY_ACK, 0.0),
        Kind.L1_TO_L1: pct.get(Kind.L1_TO_L1, 0.0),
    }


def table5(workloads: List[str], n_cores: int = 64, seed: int = 1
           ) -> Dict[object, float]:
    """Ordinal distribution of circuit reservations (paper Table 5)."""
    ordinals = {i: 0 for i in range(1, 6)}
    failed = 0
    for workload in workloads:
        result = run_experiment(
            RunSpec(n_cores, Variant.COMPLETE_NOACK, workload, seed)
        )
        for i in ordinals:
            ordinals[i] += result.counter(f"circuit.reservation_ordinal.{i}")
        failed += result.counter("circuit.reservation_failed")
    total = sum(ordinals.values()) + failed
    if total == 0:
        return {}
    out: Dict[object, float] = {
        i: 100.0 * count / total for i, count in ordinals.items()
    }
    out["failed"] = 100.0 * failed / total
    return out


def table6() -> Dict[Tuple[str, int], float]:
    """Router area savings per variant and chip size (paper Table 6)."""
    rows = {}
    for label, variant in (
        ("Fragmented", Variant.FRAGMENTED),
        ("Complete", Variant.COMPLETE),
        ("Complete Timed", Variant.TIMED_NOACK),
    ):
        for n_cores in (16, 64):
            config = SystemConfig(n_cores=n_cores).with_variant(variant)
            rows[(label, n_cores)] = 100.0 * area_savings(config)
    return rows


def table6_breakdown(n_cores: int = 64) -> Dict[str, Dict[str, float]]:
    """Per-component router area for each variant (model introspection)."""
    out = {}
    for variant in (Variant.BASELINE, Variant.FRAGMENTED, Variant.COMPLETE,
                    Variant.TIMED_NOACK):
        config = SystemConfig(n_cores=n_cores).with_variant(variant)
        out[variant.value] = router_area(config).as_dict()
    return out
