"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1 [--cores 64] [--full]
    python -m repro.harness fig9 --cores 16
    python -m repro.harness all

Environment:
    REPRO_SCALE  simulation-length multiplier (default 1.0)
    REPRO_FULL   1 = sweep all 22 workloads (default: 6-workload subset)
    REPRO_CACHE  path of a JSON result cache reused across invocations
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures, render, tables
from repro.harness.experiment import default_workloads


def _workloads(args) -> list:
    return default_workloads(full=args.full or None)


def cmd_table1(args) -> None:
    measured = tables.table1(_workloads(args), args.cores, args.seed)
    print(f"Table 1 - message mix ({args.cores} cores, baseline)")
    print(render.render_table1(measured, tables.TABLE1_PAPER))


def cmd_table5(args) -> None:
    measured = tables.table5(_workloads(args), args.cores, args.seed)
    print(f"Table 5 - circuit reservation ordinals ({args.cores} cores)")
    print(render.render_table5(measured, tables.TABLE5_PAPER))


def cmd_table6(args) -> None:
    measured = tables.table6()
    print("Table 6 - router area savings")
    print(render.render_table6(measured, tables.TABLE6_PAPER))


def cmd_fig6(args) -> None:
    data = figures.figure6(_workloads(args), args.cores, args.seed)
    print(f"Figure 6 - reply outcomes ({args.cores} cores)")
    print(render.render_figure6(data))


def cmd_fig7(args) -> None:
    data = figures.figure7(_workloads(args), args.cores, args.seed)
    print(f"Figure 7 - message latency ({args.cores} cores)")
    print(render.render_figure7(data))


def cmd_fig8(args) -> None:
    data = figures.figure8(_workloads(args), args.cores, args.seed)
    print(f"Figure 8 - normalised network energy ({args.cores} cores)")
    print(render.render_ratio_figure(data, "energy vs baseline"))


def cmd_fig9(args) -> None:
    data = figures.figure9(_workloads(args), args.cores, args.seed)
    print(f"Figure 9 - speedup ({args.cores} cores)")
    print(render.render_ratio_figure(data, "speedup"))


def cmd_fig10(args) -> None:
    data = figures.figure10(_workloads(args), args.cores, args.seed)
    print(f"Figure 10 - per-application speedup ({args.cores} cores, "
          "SlackDelay1 + NoAck)")
    print(render.render_figure10(data))


COMMANDS = {
    "table1": cmd_table1,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("what", choices=list(COMMANDS) + ["all"])
    parser.add_argument("--cores", type=int, default=16,
                        help="chip size (16 or 64; default 16)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--full", action="store_true",
                        help="sweep all 22 workloads")
    args = parser.parse_args(argv)
    if args.what == "all":
        for name, command in COMMANDS.items():
            command(args)
            print()
    else:
        COMMANDS[args.what](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
