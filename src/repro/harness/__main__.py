"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1 [--cores 64] [--full]
    python -m repro.harness fig9 --cores 16 --jobs 4
    python -m repro.harness all --jobs 0      # one worker per CPU core
    python -m repro.harness table1 --check    # audit invariants while running
    python -m repro.harness check             # monitored clean variant sweep
    python -m repro.harness inject            # seeded fault-injection campaign
    python -m repro.harness chaos             # process-level chaos campaign:
                                              # kill/wedge/corrupt, prove
                                              # recovery is bit-identical
    python -m repro.harness trace --workload fft    # telemetry: Perfetto
                                              # trace + metric time series
    python -m repro.harness profile           # kernel wall-time profile
    python -m repro.harness topology          # BASELINE vs Complete_NoAck
                                              # per topology (mesh/torus/
                                              # cmesh comparison figure)
    python -m repro.harness check --topology  # static topology self-check
                                              # (adjacency + route tables)
    python -m repro.harness serve --socket /tmp/repro.sock --workers 4
                                              # job daemon (repro.service);
                                              # point clients at it with
                                              # REPRO_SERVICE=/tmp/repro.sock
    python -m repro.harness env               # print the effective resolved
                                              # configuration (value + source)

Environment (resolved through repro.config; `env` shows the result):
    REPRO_SCALE      simulation-length multiplier (default 1.0)
    REPRO_TOPOLOGY   network topology: mesh (default), torus or cmesh
    REPRO_FULL       1 = sweep all 22 workloads (default: 6-workload subset)
    REPRO_CACHE      path of a JSON result cache reused across invocations
    REPRO_JOBS       worker processes when --jobs is not given (0 = all cores)
    REPRO_CHECK      1 = run the invariant monitor inside every experiment
    REPRO_FAILFAST   1 = abort sweeps on the first failing run
    REPRO_CRASH_DIR  where crash reports land (default out/crash)
    REPRO_SHARDS     split each run across N worker processes (bit-identical)
    REPRO_CHECKPOINT cycles between durable checkpoints (0/unset = off)
    REPRO_CHECKPOINT_DIR  checkpoint root (default out/checkpoint)
    REPRO_RESUME     1 = resume interrupted runs from their checkpoints
    REPRO_SHARD_TIMEOUT   seconds before a silent shard worker is declared
                          dead and respawned (default 1200)
    REPRO_SHARD_RESPAWNS  respawn budget per shard worker (default 2)
    REPRO_SERVICE    job-daemon address (socket path or host:port); when
                     set, sweeps run through the shared daemon fleet
    REPRO_SERVICE_WORKERS daemon worker-fleet size (0 = one per CPU core)
    REPRO_CACHE_SHARDS    shard count when creating a sharded result store
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.harness import figures, parallel, render, tables
from repro.harness.experiment import (
    RunSpec,
    crash_dir,
    default_workloads,
    last_telemetry,
    run_experiment,
)
from repro.sim.config import Variant
from repro.telemetry import TelemetryConfig


def _workloads(args) -> list:
    return default_workloads(full=args.full or None)


def cmd_table1(args) -> None:
    measured = tables.table1(_workloads(args), args.cores, args.seed)
    print(f"Table 1 - message mix ({args.cores} cores, baseline)")
    print(render.render_table1(measured, tables.TABLE1_PAPER))


def cmd_table5(args) -> None:
    measured = tables.table5(_workloads(args), args.cores, args.seed)
    print(f"Table 5 - circuit reservation ordinals ({args.cores} cores)")
    print(render.render_table5(measured, tables.TABLE5_PAPER))


def cmd_table6(args) -> None:
    measured = tables.table6()
    print("Table 6 - router area savings")
    print(render.render_table6(measured, tables.TABLE6_PAPER))


def cmd_fig6(args) -> None:
    data = figures.figure6(_workloads(args), args.cores, args.seed)
    print(f"Figure 6 - reply outcomes ({args.cores} cores)")
    print(render.render_figure6(data))


def cmd_fig7(args) -> None:
    data = figures.figure7(_workloads(args), args.cores, args.seed)
    print(f"Figure 7 - message latency ({args.cores} cores)")
    print(render.render_figure7(data))


def cmd_fig8(args) -> None:
    data = figures.figure8(_workloads(args), args.cores, args.seed)
    print(f"Figure 8 - normalised network energy ({args.cores} cores)")
    print(render.render_ratio_figure(data, "energy vs baseline"))


def cmd_fig9(args) -> None:
    data = figures.figure9(_workloads(args), args.cores, args.seed)
    print(f"Figure 9 - speedup ({args.cores} cores)")
    print(render.render_ratio_figure(data, "speedup"))


def cmd_fig10(args) -> None:
    data = figures.figure10(_workloads(args), args.cores, args.seed)
    print(f"Figure 10 - per-application speedup ({args.cores} cores, "
          "SlackDelay1 + NoAck)")
    print(render.render_figure10(data))


def cmd_check_topology(args) -> int:
    """Static self-check of registered topologies: port/opposite symmetry,
    neighbor reciprocity, route-table reachability of every (src, dst)
    pair, and the request/reply same-routers invariant."""
    from repro.noc.topology import TOPOLOGY_CHOICES
    from repro.validate import check_topology

    names = (TOPOLOGY_CHOICES if args.topology in (None, "all")
             else [args.topology])
    print(f"Topology self-check ({args.cores} cores)")
    failures = 0
    for name in names:
        try:
            report = check_topology(name, args.cores)
        except ValueError as exc:
            failures += 1
            print(f"  {name:8s} ERROR: {exc}")
            continue
        if report.ok:
            print(f"  {name:8s} OK  {report.checks_run} checks, "
                  f"{report.n_routers} routers")
        else:
            failures += 1
            print(f"  {name:8s} {len(report.problems)} problem(s):")
            for problem in report.problems[:10]:
                print(f"      {problem}")
    if failures:
        print(f"{failures} topology check(s) FAILED")
        return 1
    print("all topologies clean: adjacency and route tables verified")
    return 0


def cmd_check(args) -> int:
    """Monitored clean sweep across switching variants (zero violations)."""
    from repro.sim.kernel import SimulationError
    from repro.validate import CHECK_VARIANTS, measure_overhead, run_clean

    cycles = args.cycles or 5000
    failures = 0
    print(f"Invariant-checked clean sweep ({cycles} cycles/variant)")
    for variant in CHECK_VARIANTS:
        try:
            report = run_clean(variant, cycles=cycles)
        except SimulationError as exc:
            failures += 1
            print(f"  {variant.value:22s} VIOLATION: {exc}")
            continue
        print(f"  {report.variant:22s} OK  {report.checks_run} checks, "
              f"{report.requests_sent} requests, "
              f"{report.wall_seconds:.1f}s")
    overhead = measure_overhead(cycles=min(cycles, 5000))
    print(f"monitor overhead at production cadence (interval 2000): "
          f"{(overhead - 1) * 100:+.1f}%")
    if failures:
        print(f"{failures} variant(s) FAILED")
        return 1
    print("all variants clean: zero violations")
    return 0


def cmd_inject(args) -> int:
    """Seeded fault-injection campaign: one fault per class, each must be
    caught by its own checker."""
    from repro.validate import FaultKind, run_campaign, run_fault

    directory = crash_dir()
    if args.inject and args.inject != "all":
        try:
            kinds = [FaultKind(args.inject)]
        except ValueError:
            choices = ", ".join(k.value for k in FaultKind)
            print(f"error: unknown fault {args.inject!r} (choose from "
                  f"{choices} or all)", file=sys.stderr)
            return 2
        outcomes = [run_fault(kinds[0], seed=args.seed,
                              crash_dir=directory)]
    else:
        outcomes = run_campaign(seed=args.seed, crash_dir=directory)
    print("Fault-injection campaign "
          f"(seed {args.seed}, crash reports in {directory})")
    print(f"  {'fault':18s} {'variant':20s} {'detected by':20s} "
          f"{'expected':20s} verdict")
    failures = 0
    for o in outcomes:
        verdict = "OK" if o.ok else "FAIL"
        if not o.ok:
            failures += 1
        print(f"  {o.fault:18s} {o.variant:20s} {str(o.checker):20s} "
              f"{o.expected_checker:20s} {verdict}")
        if o.report_path:
            print(f"      report: {o.report_path}")
        if not o.ok:
            print(f"      injected={o.injected} error={o.error}")
    if failures:
        print(f"{failures} fault class(es) escaped their checker")
        return 1
    print("every fault class was detected by its checker")
    return 0


def cmd_chaos(args) -> int:
    """Process-level chaos campaign: every injected fault must either
    recover bit-identically or fail with its precise typed error."""
    from repro.validate import run_chaos_campaign
    from repro.validate.chaos import PIPELINES

    pipelines = PIPELINES if args.full else ("fastpath",)
    print(f"Chaos campaign (pipelines: {', '.join(pipelines)})", flush=True)
    outcomes = run_chaos_campaign(
        pipelines=pipelines,
        echo=lambda msg: print(msg, flush=True),
    )
    failures = [o for o in outcomes if not o.ok]
    if failures:
        print(f"{len(failures)} chaos scenario(s) FAILED", flush=True)
        return 1
    print(f"all {len(outcomes)} chaos scenarios held: recovery is "
          f"deterministic", flush=True)
    return 0


def _parse_variant(name: str):
    try:
        return Variant(name)
    except ValueError:
        choices = ", ".join(v.value for v in Variant)
        print(f"error: unknown variant {name!r} (choose from {choices})",
              file=sys.stderr)
        return None


def _observed_run(args, variant, config: TelemetryConfig):
    """Run one telemetry-enabled experiment; returns (result, info)."""
    spec = RunSpec(args.cores, variant, args.workload, args.seed,
                   telemetry=config)
    result = run_experiment(spec)
    return result, last_telemetry()


def cmd_trace(args) -> int:
    """Telemetry-enabled baseline vs. reactive run: Chrome-trace JSON
    (Perfetto-loadable), metric time series, latency breakdown."""
    variant = _parse_variant(args.variant)
    if variant is None:
        return 2
    config = TelemetryConfig(
        interval=args.interval, profile=False,
        per_router=args.per_router,
    )
    variants = [Variant.BASELINE]
    if variant is not Variant.BASELINE:
        variants.append(variant)
    print(f"Telemetry trace: {args.workload}, {args.cores} cores, "
          f"sampling every {config.interval} cycles")
    for v in variants:
        result, info = _observed_run(args, v, config)
        telem = info["telemetry"]
        registry = telem.registry
        replies = result.counter("circuit.replies_total")
        hits = result.counter("circuit.outcome.on_circuit")
        print(f"\n== {v.value}: {result.exec_cycles} cycles, "
              f"{len(registry)} samples x {len(registry.names())} streams, "
              f"circuit hit rate "
              f"{hits / replies if replies else 0.0:.1%} ==")
        print(telem.spans.breakdown_table())
        for kind, path in sorted(info["paths"].items()):
            print(f"  {kind:12s} {path}")
    print("\nload a trace at https://ui.perfetto.dev (Open trace file)")
    return 0


def cmd_topology(args) -> int:
    """Topology-comparison figure: BASELINE vs Complete_NoAck speedup,
    circuit hit rate and reply latency on mesh, torus and cmesh."""
    data = figures.figure_topology(_workloads(args), args.cores, args.seed)
    text = render.render_figure_topology(data)
    print(f"Topology comparison - Complete_NoAck vs Baseline "
          f"({args.cores} cores)")
    print(text)
    out_path = os.path.join("out", "figure_topology.txt")
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as fh:
        fh.write(f"Topology comparison - Complete_NoAck vs Baseline "
                 f"({args.cores} cores)\n")
        fh.write(text + "\n")
    print(f"  written: {out_path}")
    return 0


def cmd_profile(args) -> int:
    """Kernel self-profile of one run: wall-time and ticks per component
    class, plus activity-driven skip effectiveness."""
    variant = _parse_variant(args.variant)
    if variant is None:
        return 2
    config = TelemetryConfig(
        metrics=False, spans=False, interval=args.interval,
    )
    result, info = _observed_run(args, variant, config)
    print(f"Kernel profile: {variant.value}, {args.workload}, "
          f"{args.cores} cores, {result.exec_cycles} cycles")
    print(info["telemetry"].profiler.table())
    print(f"  report: {info['paths']['profile']}")
    return 0


def cmd_serve(args) -> int:
    """Run the job daemon (:mod:`repro.service`) in the foreground."""
    import logging

    from repro.service import Daemon

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    address = args.socket or os.environ.get("REPRO_SERVICE") \
        or os.path.join("out", "repro.sock")
    directory = os.path.dirname(address)
    if directory and ":" not in address:
        os.makedirs(directory, exist_ok=True)
    daemon = Daemon(address, workers=args.workers)
    print(f"job daemon on {address} ({daemon.n_workers} workers); "
          f"clients: REPRO_SERVICE={address}  (ctrl-C to stop)", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.shutdown()
    return 0


def cmd_env(args) -> int:
    """Print the effective resolved configuration, one row per setting."""
    from repro import config as repro_config

    rows = repro_config.describe()
    name_w = max(len(row[0]) for row in rows)
    env_w = max(len(row[1]) for row in rows)
    value_w = max(len(row[2]) for row in rows)
    print("Effective configuration (precedence: kwargs > environment "
          "> defaults)")
    for name, env, value, source in rows:
        print(f"  {name:<{name_w}s}  {env:<{env_w}s}  "
              f"{value:<{value_w}s}  [{source}]")
    return 0


COMMANDS = {
    "table1": cmd_table1,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
}

#: Variants each command simulates (table6 is a pure area model: none).
COMMAND_VARIANTS = {
    "table1": [Variant.BASELINE],
    "table5": [Variant.COMPLETE_NOACK],
    "table6": [],
    "fig6": figures.FIG6_VARIANTS,
    "fig7": figures.FIG7_VARIANTS,
    "fig8": [Variant.BASELINE] + figures.FIG8_VARIANTS,
    "fig9": [Variant.BASELINE] + figures.FIG9_VARIANTS,
    "fig10": [Variant.BASELINE, Variant.SLACKDELAY1_NOACK],
}


def _prefetch(names, args, jobs: int) -> None:
    """Warm the memo across worker processes before serial rendering."""
    variants = []
    for name in names:
        for variant in COMMAND_VARIANTS[name]:
            if variant not in variants:
                variants.append(variant)
    specs = [
        RunSpec(args.cores, variant, workload, args.seed)
        for variant in variants
        for workload in _workloads(args)
    ]
    if len(specs) <= 1:
        return
    from repro import api

    if api.service_address():
        # Daemon mode: the shared fleet computes (and dedups) the batch;
        # results() seeds the memo for the serial rendering below.
        print(f"submitting {len(specs)} spec(s) to the job daemon at "
              f"{api.service_address()}", file=sys.stderr, flush=True)
        api.results(api.submit(specs))
    else:
        parallel.run_specs(
            specs, jobs=jobs,
            echo=lambda msg: print(msg, file=sys.stderr, flush=True),
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("what", nargs="?", default=None,
                        choices=list(COMMANDS) + ["all", "check", "inject",
                                                  "chaos", "trace",
                                                  "profile", "topology",
                                                  "serve", "env"])
    parser.add_argument("--cores", type=int, default=16,
                        help="chip size (16 or 64; default 16)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--full", action="store_true",
                        help="sweep all 22 workloads")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulations "
                             "(0 = one per CPU core; default: REPRO_JOBS "
                             "or serial)")
    parser.add_argument("--check", action="store_true",
                        help="with a table/figure: audit invariants inside "
                             "every run (REPRO_CHECK=1); alone: run the "
                             "clean validation sweep")
    parser.add_argument("--inject", metavar="FAULT", nargs="?", const="all",
                        default=None,
                        help="run the seeded fault-injection campaign "
                             "(optionally a single fault class)")
    parser.add_argument("--fail-fast", dest="fail_fast", action="store_true",
                        help="abort a sweep on the first failing run "
                             "instead of recording a failure result")
    parser.add_argument("--cycles", type=int, default=None,
                        help="cycles per clean-sweep run (check command)")
    parser.add_argument("--workload", default="fft",
                        help="workload for trace/profile (default fft)")
    parser.add_argument("--variant", default=Variant.COMPLETE_NOACK.value,
                        help="circuit variant for trace/profile "
                             "(default Complete_NoAck)")
    parser.add_argument("--interval", type=int, default=1000,
                        help="telemetry sampling cadence in cycles "
                             "(trace/profile; default 1000)")
    parser.add_argument("--per-router", dest="per_router",
                        action="store_true",
                        help="trace: one buffer-occupancy stream per router")
    parser.add_argument("--topology", metavar="NAME", nargs="?",
                        const="all", default=None,
                        help="with check: statically verify the named "
                             "topology (default: all registered ones)")
    parser.add_argument("--socket", default=None,
                        help="serve: daemon address (socket path or "
                             "host:port; default out/repro.sock)")
    parser.add_argument("--workers", type=int, default=None,
                        help="serve: worker-fleet size (default: "
                             "REPRO_SERVICE_WORKERS or one per CPU core)")
    args = parser.parse_args(argv)
    if args.what == "env":
        return cmd_env(args)
    if args.what == "serve":
        return cmd_serve(args)
    try:
        jobs = parallel.resolve_jobs(args.jobs)
    except ValueError as exc:
        # malformed --jobs / REPRO_JOBS: a message beats a traceback
        parser.error(str(exc))
    if args.what == "inject" or (args.what is None and args.inject):
        return cmd_inject(args)
    if args.topology is not None and args.what in (None, "check"):
        return cmd_check_topology(args)
    if args.what == "check" or (args.what is None and args.check):
        return cmd_check(args)
    if args.what == "chaos":
        return cmd_chaos(args)
    if args.what == "trace":
        return cmd_trace(args)
    if args.what == "profile":
        return cmd_profile(args)
    if args.what == "topology":
        return cmd_topology(args)
    if args.what is None:
        parser.error("nothing to do: name a table/figure, or use "
                     "--check / --inject")
    if args.check:
        os.environ["REPRO_CHECK"] = "1"
    if args.fail_fast:
        os.environ["REPRO_FAILFAST"] = "1"
    names = list(COMMANDS) if args.what == "all" else [args.what]
    try:
        if jobs > 1:
            _prefetch(names, args, jobs)
        for name in names:
            COMMANDS[name](args)
            if args.what == "all":
                print()
    except ValueError as exc:
        if "REPRO_" not in str(exc):
            raise  # a real bug, keep the traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
