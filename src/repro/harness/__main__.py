"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1 [--cores 64] [--full]
    python -m repro.harness fig9 --cores 16 --jobs 4
    python -m repro.harness all --jobs 0      # one worker per CPU core

Environment:
    REPRO_SCALE  simulation-length multiplier (default 1.0)
    REPRO_FULL   1 = sweep all 22 workloads (default: 6-workload subset)
    REPRO_CACHE  path of a JSON result cache reused across invocations
    REPRO_JOBS   worker processes when --jobs is not given (0 = all cores)
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures, parallel, render, tables
from repro.harness.experiment import RunSpec, default_workloads
from repro.sim.config import Variant


def _workloads(args) -> list:
    return default_workloads(full=args.full or None)


def cmd_table1(args) -> None:
    measured = tables.table1(_workloads(args), args.cores, args.seed)
    print(f"Table 1 - message mix ({args.cores} cores, baseline)")
    print(render.render_table1(measured, tables.TABLE1_PAPER))


def cmd_table5(args) -> None:
    measured = tables.table5(_workloads(args), args.cores, args.seed)
    print(f"Table 5 - circuit reservation ordinals ({args.cores} cores)")
    print(render.render_table5(measured, tables.TABLE5_PAPER))


def cmd_table6(args) -> None:
    measured = tables.table6()
    print("Table 6 - router area savings")
    print(render.render_table6(measured, tables.TABLE6_PAPER))


def cmd_fig6(args) -> None:
    data = figures.figure6(_workloads(args), args.cores, args.seed)
    print(f"Figure 6 - reply outcomes ({args.cores} cores)")
    print(render.render_figure6(data))


def cmd_fig7(args) -> None:
    data = figures.figure7(_workloads(args), args.cores, args.seed)
    print(f"Figure 7 - message latency ({args.cores} cores)")
    print(render.render_figure7(data))


def cmd_fig8(args) -> None:
    data = figures.figure8(_workloads(args), args.cores, args.seed)
    print(f"Figure 8 - normalised network energy ({args.cores} cores)")
    print(render.render_ratio_figure(data, "energy vs baseline"))


def cmd_fig9(args) -> None:
    data = figures.figure9(_workloads(args), args.cores, args.seed)
    print(f"Figure 9 - speedup ({args.cores} cores)")
    print(render.render_ratio_figure(data, "speedup"))


def cmd_fig10(args) -> None:
    data = figures.figure10(_workloads(args), args.cores, args.seed)
    print(f"Figure 10 - per-application speedup ({args.cores} cores, "
          "SlackDelay1 + NoAck)")
    print(render.render_figure10(data))


COMMANDS = {
    "table1": cmd_table1,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
}

#: Variants each command simulates (table6 is a pure area model: none).
COMMAND_VARIANTS = {
    "table1": [Variant.BASELINE],
    "table5": [Variant.COMPLETE_NOACK],
    "table6": [],
    "fig6": figures.FIG6_VARIANTS,
    "fig7": figures.FIG7_VARIANTS,
    "fig8": [Variant.BASELINE] + figures.FIG8_VARIANTS,
    "fig9": [Variant.BASELINE] + figures.FIG9_VARIANTS,
    "fig10": [Variant.BASELINE, Variant.SLACKDELAY1_NOACK],
}


def _prefetch(names, args, jobs: int) -> None:
    """Warm the memo across worker processes before serial rendering."""
    variants = []
    for name in names:
        for variant in COMMAND_VARIANTS[name]:
            if variant not in variants:
                variants.append(variant)
    specs = [
        RunSpec(args.cores, variant, workload, args.seed)
        for variant in variants
        for workload in _workloads(args)
    ]
    if len(specs) > 1:
        parallel.run_specs(
            specs, jobs=jobs,
            echo=lambda msg: print(msg, file=sys.stderr, flush=True),
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("what", choices=list(COMMANDS) + ["all"])
    parser.add_argument("--cores", type=int, default=16,
                        help="chip size (16 or 64; default 16)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--full", action="store_true",
                        help="sweep all 22 workloads")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the simulations "
                             "(0 = one per CPU core; default: REPRO_JOBS "
                             "or serial)")
    args = parser.parse_args(argv)
    try:
        jobs = parallel.resolve_jobs(args.jobs)
    except ValueError as exc:
        # malformed --jobs / REPRO_JOBS: a message beats a traceback
        parser.error(str(exc))
    names = list(COMMANDS) if args.what == "all" else [args.what]
    try:
        if jobs > 1:
            _prefetch(names, args, jobs)
        for name in names:
            COMMANDS[name](args)
            if args.what == "all":
                print()
    except ValueError as exc:
        if "REPRO_" not in str(exc):
            raise  # a real bug, keep the traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
