"""Experiment runner: (variant, workload, chip size) -> measured results.

One :class:`RunResult` feeds every table/figure that needs that
configuration, so results are memoised per process and optionally on disk
(``REPRO_CACHE=<path>``, crash-safe and shareable between concurrent
processes -- see :mod:`repro.harness.cache`).  Independent specs can be
computed across worker processes (``REPRO_JOBS`` /
:mod:`repro.harness.parallel`).  Simulation length is scaled by ``REPRO_SCALE``
(default 1.0): the default quanta are sized for laptop-speed pure-Python
cycle simulation; the paper's 500M-cycle windows correspond to very large
scales.  The synthetic workloads are stationary, so modest windows already
produce stable averages.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro import config as repro_config
from repro.circuits.outcomes import outcome_fractions
from repro.noc.topology import resolve_topology
from repro.cpu.workloads import ALL_WORKLOADS, workload_by_name
from repro.harness.cache import CacheBackend, cache_from_env
from repro.power.energy import network_energy
from repro.sim.config import SystemConfig, Variant
from repro.sim.stats import Histogram, Stats
from repro.system import build_system
from repro.telemetry import Telemetry, TelemetryConfig

#: Baseline measurement quantum (instructions per core) at scale 1.0.
MEASURE_INSTRUCTIONS = 3_000
WARMUP_INSTRUCTIONS = 800

#: Representative subset used when a full 22-workload sweep is too slow.
DEFAULT_WORKLOAD_SUBSET = [
    "blackscholes",  # compute-bound, low sharing
    "canneal",  # memory-bound, heavily shared
    "fluidanimate",  # fine-grained write sharing
    "fft",  # streaming, memory bound
    "water_spatial",  # light, low-miss
    "mix",  # multiprogrammed SPEC-style
]


#: Environment-variable name -> repro.config setting name, so the legacy
#: ``env_flag("REPRO_CHECK")`` spelling keeps working while all parsing
#: and error reporting happens in one place (:mod:`repro.config`).
_ENV_TO_SETTING = {
    entry.env: name for name, entry in repro_config.SETTINGS.items()
}


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean environment variable, rejecting garbage loudly.

    Delegates to :func:`repro.config.resolve`; ``name`` is the
    environment-variable spelling (e.g. ``"REPRO_CHECK"``).
    """
    setting_name = _ENV_TO_SETTING.get(name)
    if setting_name is None:
        raise KeyError(f"unknown configuration variable {name}")
    return bool(repro_config.resolve(setting_name, default=default))


def scale() -> float:
    """Global simulation-length multiplier (env ``REPRO_SCALE``)."""
    return repro_config.resolve("scale")


def default_workloads(full: Optional[bool] = None) -> List[str]:
    """Workload names to sweep (env ``REPRO_FULL=1`` for all 22)."""
    if full is None:
        full = env_flag("REPRO_FULL")
    if full:
        return [w.name for w in ALL_WORKLOADS]
    return list(DEFAULT_WORKLOAD_SUBSET)


@dataclass(frozen=True)
class RunSpec:
    """Everything defining one measured simulation."""

    n_cores: int
    variant: Variant
    workload: str
    seed: int = 1
    measure_instructions: int = MEASURE_INSTRUCTIONS
    warmup_instructions: int = WARMUP_INSTRUCTIONS
    #: Attach a :class:`~repro.telemetry.Telemetry` bundle to the measured
    #: phase.  Telemetry is observation-only (results are bit-identical),
    #: so this field is deliberately NOT part of :meth:`key`: observed and
    #: unobserved runs share cache entries.
    telemetry: Optional[TelemetryConfig] = None
    #: Network topology ("mesh"/"torus"/"cmesh").  The empty string
    #: defers to ``REPRO_TOPOLOGY`` (then mesh), mirroring
    #: ``config.noc.topology``.
    topology: str = ""

    def scaled(self) -> "RunSpec":
        factor = scale()
        if factor == 1.0:
            return self
        return RunSpec(
            self.n_cores, self.variant, self.workload, self.seed,
            max(200, int(self.measure_instructions * factor)),
            max(100, int(self.warmup_instructions * factor)),
            self.telemetry,
            self.topology,
        )

    def resolved_topology(self) -> str:
        """Effective topology name (resolving '' through the environment)."""
        return resolve_topology(self.topology)

    def key(self) -> str:
        base = (
            f"{self.n_cores}/{self.variant.value}/{self.workload}/{self.seed}/"
            f"{self.measure_instructions}/{self.warmup_instructions}"
        )
        # Mesh runs keep their historical keys so existing disk caches
        # stay valid; other topologies get their own cache entries even
        # when selected through REPRO_TOPOLOGY.
        topology = self.resolved_topology()
        return base if topology == "mesh" else f"{base}/{topology}"

    @property
    def observed(self) -> bool:
        return self.telemetry is not None and self.telemetry.enabled

    def label(self) -> str:
        """Filesystem-safe name for telemetry artifacts of this run."""
        base = (
            f"{self.variant.value}_{self.workload}_{self.n_cores}c"
            f"_s{self.seed}"
        )
        topology = self.resolved_topology()
        return base if topology == "mesh" else f"{base}_{topology}"


@dataclass
class RunResult:
    """Flattened measurements of one run (everything the figures need).

    A failed run (deadlock / invariant violation under graceful
    degradation) carries ``error``/``error_kind``/``crash_report``
    instead of measurements; consumers must check :attr:`failed` before
    dividing by ``exec_cycles``.
    """

    spec_key: str
    n_cores: int
    variant: str
    workload: str
    exec_cycles: int
    counters: Dict[str, int] = field(default_factory=dict)
    means: Dict[str, float] = field(default_factory=dict)
    outcomes: Dict[str, float] = field(default_factory=dict)
    #: Full latency distributions, JSON-serialised (string bucket keys);
    #: use :meth:`histogram` / :meth:`percentile` to query them.
    histograms: Dict[str, dict] = field(default_factory=dict)
    energy_dynamic: float = 0.0
    energy_static: float = 0.0
    error: Optional[str] = None
    error_kind: Optional[str] = None
    crash_report: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def energy_total(self) -> float:
        return self.energy_dynamic + self.energy_static

    def counter(self, key: str) -> int:
        return self.counters.get(key, 0)

    def mean(self, key: str) -> float:
        return self.means.get(key, 0.0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            key: value
            for key, value in self.counters.items()
            if key.startswith(prefix)
        }

    def histogram(self, key: str) -> Optional[Histogram]:
        """The recorded distribution for ``key`` (None if not recorded)."""
        data = self.histograms.get(key)
        if data is None:
            return None
        hist = Histogram(data.get("bucket_width", 1))
        hist.count = data["count"]
        hist.buckets = {int(b): n for b, n in data["buckets"].items()}
        return hist

    def percentile(self, key: str, p: float) -> float:
        """Percentile ``p`` of the recorded distribution for ``key``.

        Prefers the full histogram; results loaded from pre-histogram
        cache entries fall back to the precomputed ``<key>.p<p>`` means
        (0.0 when neither exists).
        """
        hist = self.histogram(key)
        if hist is not None:
            return hist.percentile(p)
        return self.means.get(f"{key}.p{int(p)}", 0.0)

    def to_json(self) -> dict:
        return self.__dict__.copy()

    @staticmethod
    def from_json(data: dict) -> "RunResult":
        return RunResult(**data)


_memo: Dict[str, RunResult] = {}

#: Instruments + artifact paths of the most recent telemetry-enabled run
#: in this process (the CLI ``trace``/``profile`` commands read it).
_last_telemetry: Optional[dict] = None


def last_telemetry() -> Optional[dict]:
    """``{"telemetry": Telemetry, "paths": {...}, "spec_key": str}`` of the
    most recent observed run, or None if none ran in this process."""
    return _last_telemetry


def _serialize_histograms(stats: Stats) -> Dict[str, dict]:
    """Stats histograms -> the JSON-stable shape RunResult carries."""
    return {
        key: {
            "bucket_width": hist.bucket_width,
            "count": hist.count,
            "buckets": {str(b): n for b, n in hist.buckets.items()},
        }
        for key, hist in stats.histograms.items()
    }


def _disk_cache() -> Optional[CacheBackend]:
    """The shared result store (env ``REPRO_CACHE``), if configured.

    Either a legacy single-file :class:`~repro.harness.cache.ResultCache`
    or a :class:`~repro.harness.cache.ShardedCache` directory -- see
    :func:`repro.harness.cache.open_cache` for how the backend is picked.
    """
    return cache_from_env()


def _load_disk(key: str) -> Optional[RunResult]:
    cache = _disk_cache()
    if cache is None:
        return None
    entry = cache.load(key)
    if entry is None:
        return None
    try:
        return RunResult.from_json(entry)
    except TypeError:
        return None  # entry from an incompatible RunResult shape


def _store_disk(result: RunResult) -> None:
    cache = _disk_cache()
    if cache is not None:
        cache.store(result.spec_key, result.to_json())


def crash_dir() -> str:
    """Directory for crash reports (env ``REPRO_CRASH_DIR``)."""
    return repro_config.resolve("crash_dir")


def _check_interval() -> int:
    return repro_config.resolve("check_interval")


def _assemble_result(spec: RunSpec, key: str, config: SystemConfig,
                     stats: Stats, exec_cycles: int) -> RunResult:
    """Measured stats -> the flattened RunResult the figures consume.

    Shared by the single-process engine and the sharded engine
    (:mod:`repro.sim.shard`) so both produce byte-identical results.
    """
    energy = network_energy(config, stats, exec_cycles)
    means = {k: m.mean for k, m in stats.means.items()}
    for cls in ("req", "crep", "norep"):
        for p in (50, 95, 99):
            means[f"lat.net.{cls}.p{p}"] = stats.percentile(
                f"lat.net.{cls}", p
            )
    return RunResult(
        spec_key=key,
        n_cores=spec.n_cores,
        variant=spec.variant.value,
        workload=spec.workload,
        exec_cycles=exec_cycles,
        counters=dict(stats.counters),  # flushed by run/drain
        means=means,
        outcomes={o.value: f for o, f in outcome_fractions(stats).items()},
        histograms=_serialize_histograms(stats),
        energy_dynamic=energy.dynamic,
        energy_static=energy.static,
    )


def _checkpoint_interval(config: SystemConfig) -> int:
    """Cycles between durable checkpoints (0 = periodic checkpoints off).

    ``config.sim.checkpoint_interval`` wins; otherwise the
    ``REPRO_CHECKPOINT`` environment variable.  Checkpointing is an
    execution-engine concern: results are bit-identical with or without
    it, so it is deliberately absent from cache keys.
    """
    if config.sim.checkpoint_interval:
        return config.sim.checkpoint_interval
    return repro_config.resolve("checkpoint")


def _checkpoint_base_dir() -> str:
    return repro_config.resolve("checkpoint_dir")


def _checkpoint_dir(spec_key: str) -> str:
    """Per-run checkpoint directory, keyed by the run's spec key."""
    return os.path.join(_checkpoint_base_dir(), spec_key.replace("/", "_"))


_warned_observed_shards = False


def _resolved_shards(spec: RunSpec, config: SystemConfig) -> int:
    """Shard count for this run (1 = classic single-process engine).

    Observed (telemetry-attached) runs always execute in one process:
    instruments hold references to live simulation objects, which cannot
    span processes.  Results are bit-identical either way, so this is
    purely an execution-engine decision.
    """
    from repro.sim.shard import resolve_shards

    shards = resolve_shards(config)
    if shards > 1 and spec.observed:
        global _warned_observed_shards
        if not _warned_observed_shards:
            _warned_observed_shards = True
            import logging

            logging.getLogger("repro.harness.experiment").info(
                "telemetry-observed runs execute single-process; "
                "ignoring the configured %d shards for them", shards,
            )
        return 1
    return shards


def run_experiment(spec: RunSpec) -> RunResult:
    """Simulate one configuration (memoised per process and on disk).

    With ``REPRO_CHECK=1`` an :class:`~repro.validate.InvariantMonitor`
    audits the run every ``REPRO_CHECK_INTERVAL`` cycles (default 2000).
    The monitor is read-only, so checked results are bit-identical to
    unchecked ones and share the same cache entries.

    With ``REPRO_SHARDS=<n>`` (or ``config.sim.shards``) the run executes
    on the sharded engine (:mod:`repro.sim.shard`): the mesh is split into
    ``n`` row bands simulated in ``n`` worker processes.  Sharded results
    are bit-identical to single-process ones, so they share the same memo
    and disk-cache entries.

    With ``REPRO_CHECKPOINT=<cycles>`` (or ``config.sim.checkpoint_interval``)
    the run writes periodic durable checkpoints (:mod:`repro.sim.checkpoint`)
    under ``REPRO_CHECKPOINT_DIR`` (default ``out/checkpoint``), keyed by
    the spec key; ``REPRO_RESUME=1`` restarts an interrupted run from its
    newest checkpoint.  Checkpointed, resumed and plain runs are all
    bit-identical, so they share cache entries too.  Telemetry-observed
    runs never checkpoint.
    """
    spec = spec.scaled()
    key = spec.key()
    if not spec.observed:
        # Observed runs bypass the cache READ on purpose: their whole
        # point is regenerating trace/metric artifacts.  Results stay
        # bit-identical, so they still land in the same cache entries.
        if key in _memo:
            return _memo[key]
        cached = _load_disk(key)
        if cached is not None:
            _memo[key] = cached
            return cached

    config = SystemConfig(n_cores=spec.n_cores, seed=spec.seed).with_variant(
        spec.variant
    )
    if spec.topology:
        config = replace(config, noc=replace(config.noc,
                                             topology=spec.topology))
    shards = _resolved_shards(spec, config)
    if shards > 1:
        from repro.sim.shard import _SNAPSHOT_RE, run_sharded

        ckpt_kwargs = {}
        interval = _checkpoint_interval(config)
        if interval:
            # A persistent directory lets a killed *coordinator* be
            # resumed; without one the engine still self-heals worker
            # deaths via a private temporary directory.
            directory = _checkpoint_dir(key)
            resume = env_flag("REPRO_RESUME") and os.path.isdir(directory) \
                and any(_SNAPSHOT_RE.match(name)
                        for name in os.listdir(directory))
            ckpt_kwargs = dict(checkpoint_dir=directory,
                               checkpoint_interval=interval, resume=resume)
        sharded = run_sharded(
            config, spec.workload, spec.warmup_instructions,
            spec.measure_instructions, n_shards=shards,
            check=env_flag("REPRO_CHECK"),
            check_interval=_check_interval(),
            **ckpt_kwargs,
        )
        result = _assemble_result(spec, key, config, sharded.stats,
                                  sharded.exec_cycles)
        _memo[key] = result
        _store_disk(result)
        return result

    interval = 0 if spec.observed else _checkpoint_interval(config)
    if interval:
        # Checkpointed single-process run: phase-for-phase equivalent of
        # the plain path below, so results (and cache entries) are
        # bit-identical.  Observed runs never checkpoint - instruments
        # hold live object references that cannot be restored.
        from repro.sim.checkpoint import (
            CheckpointPolicy,
            fingerprint,
            read_checkpoint,
            restore_system,
            resume_checkpointed,
            run_checkpointed,
        )

        policy = CheckpointPolicy(
            _checkpoint_dir(key), interval,
            fingerprint(config, spec.workload, spec.warmup_instructions,
                        spec.measure_instructions),
        )
        if env_flag("REPRO_RESUME") and policy.has_checkpoint():
            _header, payload = read_checkpoint(
                policy.path, kind="run", config_hash=policy.config_hash
            )
            data = restore_system(payload)
            system = data["system"]
            if env_flag("REPRO_CHECK"):
                from repro.validate import InvariantMonitor

                InvariantMonitor(
                    system.network, system=system,
                    interval=_check_interval(),
                ).attach(system.sim)
            start, finish = resume_checkpointed(system, data["run"], policy)
        else:
            system = build_system(config, workload_by_name(spec.workload))
            if env_flag("REPRO_CHECK"):
                from repro.validate import InvariantMonitor

                InvariantMonitor(
                    system.network, system=system,
                    interval=_check_interval(),
                ).attach(system.sim)
            start, finish = run_checkpointed(
                system, spec.warmup_instructions,
                spec.measure_instructions, policy,
            )
        policy.discard()  # completed: recovery data is moot
        result = _assemble_result(spec, key, config, system.stats,
                                  finish - start)
        _memo[key] = result
        _store_disk(result)
        return result

    system = build_system(config, workload_by_name(spec.workload))
    if env_flag("REPRO_CHECK"):
        from repro.validate import InvariantMonitor

        InvariantMonitor(
            system.network, system=system, interval=_check_interval()
        ).attach(system.sim)
    if spec.warmup_instructions:
        system.warmup(spec.warmup_instructions)
    telem: Optional[Telemetry] = None
    if spec.observed:
        # After warmup: warmup ends with a stats reset, which would
        # corrupt the interval-delta probes.
        telem = Telemetry(spec.telemetry).attach(system)
    start = system.sim.cycle
    try:
        finish = system.run_instructions(spec.measure_instructions)
    finally:
        if telem is not None:
            telem.detach()
    if telem is not None:
        global _last_telemetry
        _last_telemetry = {
            "telemetry": telem,
            "paths": telem.export(spec.label()),
            "spec_key": key,
        }
    result = _assemble_result(spec, key, config, system.stats,
                              finish - start)
    _memo[key] = result
    _store_disk(result)
    return result


def run_experiment_safe(spec: RunSpec) -> RunResult:
    """Like :func:`run_experiment`, but degrade simulation failures.

    A :class:`~repro.sim.kernel.SimulationError` (deadlock, invariant
    violation, ...) becomes a failure :class:`RunResult` with the crash
    report saved under :func:`crash_dir`, so one sick configuration
    cannot abort a whole sweep.  Failure results are memoised in-process
    only - never written to the shared disk cache.
    """
    from repro.sim.kernel import SimulationError

    # scaled() is not idempotent, so the key is computed on a scaled
    # copy while run_experiment (which scales internally) receives the
    # original spec -- otherwise REPRO_SCALE would be applied twice.
    scaled = spec.scaled()
    key = scaled.key()
    if key in _memo:
        return _memo[key]
    try:
        return run_experiment(spec)
    except SimulationError as exc:
        result = RunResult(
            spec_key=key,
            n_cores=scaled.n_cores,
            variant=scaled.variant.value,
            workload=scaled.workload,
            exec_cycles=0,
            error=str(exc),
            error_kind=type(exc).__name__,
            crash_report=_save_crash(scaled, exc),
        )
        _memo[key] = result
        return result


def _save_crash(spec: RunSpec, exc: BaseException) -> Optional[str]:
    from repro.validate.forensics import save_crash_report

    report = getattr(exc, "report", None)
    if report is None:
        report = {"kind": type(exc).__name__, "error": str(exc)}
    elif hasattr(report, "data"):
        report.data["spec"] = spec.key()
    try:
        return save_crash_report(report, crash_dir(), spec.key())
    except OSError:
        return None  # an unwritable crash dir must not mask the failure


def run_matrix(n_cores: int, variants: Iterable[Variant],
               workloads: Iterable[str], seed: int = 1,
               jobs: Optional[int] = None,
               fail_fast: Optional[bool] = None,
               ) -> Dict[Variant, Dict[str, RunResult]]:
    """Deprecated alias for :func:`repro.api.run_matrix`."""
    warnings.warn(
        "repro.harness.experiment.run_matrix is deprecated; "
        "use repro.api.run_matrix",
        DeprecationWarning, stacklevel=2,
    )
    from repro import api

    return api.run_matrix(n_cores, variants, workloads, seed=seed,
                          jobs=jobs, fail_fast=fail_fast)


def compare_variants(workload: str, n_cores: int = 16,
                     variants: Optional[Iterable[Variant]] = None,
                     seed: int = 1,
                     jobs: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Deprecated alias for :func:`repro.api.compare_variants`."""
    warnings.warn(
        "repro.harness.experiment.compare_variants is deprecated; "
        "use repro.api.compare_variants",
        DeprecationWarning, stacklevel=2,
    )
    from repro import api

    return api.compare_variants(workload, n_cores=n_cores,
                                variants=variants, seed=seed, jobs=jobs)
