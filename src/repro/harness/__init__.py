"""Experiment harness reproducing every table and figure of the paper."""

from repro.harness.experiment import (
    RunResult,
    RunSpec,
    compare_variants,
    default_workloads,
    run_experiment,
    run_matrix,
    scale,
)

__all__ = [
    "RunResult",
    "RunSpec",
    "compare_variants",
    "default_workloads",
    "run_experiment",
    "run_matrix",
    "scale",
]
