"""Experiment harness reproducing every table and figure of the paper."""

from repro.harness.cache import ResultCache
from repro.harness.experiment import (
    RunResult,
    RunSpec,
    compare_variants,
    default_workloads,
    env_flag,
    run_experiment,
    run_matrix,
    scale,
)
from repro.harness.parallel import (
    ParallelError,
    RunTimeoutError,
    WorkerCrashError,
    resolve_jobs,
    run_specs,
)

__all__ = [
    "ParallelError",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "RunTimeoutError",
    "WorkerCrashError",
    "compare_variants",
    "default_workloads",
    "env_flag",
    "resolve_jobs",
    "run_experiment",
    "run_matrix",
    "run_specs",
    "scale",
]
