"""Experiment harness reproducing every table and figure of the paper.

``run_matrix`` / ``compare_variants`` here are the deprecated legacy
spellings (they forward to :mod:`repro.api`, the canonical home, with a
:class:`DeprecationWarning`).
"""

from repro.harness.cache import ResultCache, ShardedCache, open_cache
from repro.harness.experiment import (
    RunResult,
    RunSpec,
    compare_variants,
    default_workloads,
    env_flag,
    run_experiment,
    run_matrix,
    scale,
)
from repro.harness.parallel import (
    ParallelError,
    RunTimeoutError,
    WorkerCrashError,
    resolve_jobs,
    run_specs,
)

__all__ = [
    "ParallelError",
    "ResultCache",
    "ShardedCache",
    "open_cache",
    "RunResult",
    "RunSpec",
    "RunTimeoutError",
    "WorkerCrashError",
    "compare_variants",
    "default_workloads",
    "env_flag",
    "resolve_jobs",
    "run_experiment",
    "run_matrix",
    "run_specs",
    "scale",
]
