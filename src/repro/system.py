"""Full-chip assembly: cores + caches + directory + NoC on one clock.

This is the top of the substrate stack - the equivalent of the paper's
Simics/GEMS/Garnet tool chain.  :class:`CmpSystem` builds every tile
(core, private L1, shared L2 bank with directory slice, optional memory
controller, network interface) for a :class:`~repro.sim.config.SystemConfig`
and provides run/warmup/drain control for experiments.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.coherence.l1 import L1Controller
from repro.coherence.l2dir import L2BankController
from repro.coherence.memory import MemoryController
from repro.coherence.messages import Kind, MessageFactory
from repro.cpu.core import Core
from repro.cpu.workloads import WorkloadProfile
from repro.noc.flit import Message
from repro.noc.network import Network
from repro.noc.topology import memory_controller_nodes
from repro.sim.config import SystemConfig
from repro.sim.kernel import ProgressWatchdog, SimulationError, Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import Stats

_L1_KINDS = frozenset({
    Kind.L2_REPLY, Kind.L1_TO_L1, Kind.L2_WB_ACK, Kind.INV,
    Kind.FWD_GETS, Kind.FWD_GETX,
})
_L2_KINDS = frozenset({
    Kind.GETS, Kind.GETX, Kind.WB_L1, Kind.L1_DATA_ACK, Kind.L1_INV_ACK,
    Kind.MEMORY_DATA, Kind.MEMORY_ACK,
})
_MC_KINDS = frozenset({Kind.MEM_READ, Kind.WB_L2})


class Tile:
    """One node: router-attached NI plus the tile components."""

    __slots__ = ("node", "ni", "l1", "l2", "mc", "core")

    def __init__(self, node: int, ni, l1: L1Controller, l2: L2BankController,
                 mc: Optional[MemoryController], core: Optional[Core]) -> None:
        self.node = node
        self.ni = ni
        self.l1 = l1
        self.l2 = l2
        self.mc = mc
        self.core = core


class CmpSystem:
    """A complete simulated CMP executing a workload."""

    def __init__(self, config: SystemConfig,
                 workload: Optional[WorkloadProfile] = None,
                 streams: Optional[list] = None,
                 home_of: Optional[Callable[[int], int]] = None,
                 local_nodes: Optional[frozenset] = None) -> None:
        self.config = config
        #: Shard-local node set (None = whole chip).  The sharded engine
        #: builds the complete system in every worker (construction and
        #: functional prewarm must consume RNG streams identically), but
        #: registers only the local slice with the kernel: foreign
        #: components keep ``kernel_wake = None`` and never tick.
        self.local_nodes = frozenset(local_nodes) if local_nodes is not None \
            else None
        self.stats = Stats()
        self.sim = Simulator()
        self.network = Network(config, self.stats)
        self.rng = DeterministicRng(config.seed)
        self.factory = MessageFactory(config)
        mesh = self.network.mesh
        line = config.cache.line_bytes
        n_nodes = mesh.n_nodes
        self.mc_nodes = memory_controller_nodes(
            mesh, config.cache.num_memory_controllers
        )

        #: Whether the default address-interleaving map is in use.  A
        #: custom ``home_of`` (partition experiments) cannot be rebuilt
        #: after a checkpoint restore; the checkpoint pickler rejects it
        #: with a typed error instead.
        self._default_home = home_of is None
        self.home_of = self._make_home_of() if home_of is None else home_of
        self.mc_of = self._make_mc_of()

        if streams is None and workload is not None:
            streams = workload.streams(
                n_nodes, line, self.rng.stream(f"workload/{workload.name}")
            )
        self.tiles: List[Tile] = []
        for node in range(n_nodes):
            ni = self.network.interface(node)
            l2 = L2BankController(node, config, self.factory, ni,
                                  self.mc_of, self.stats)
            l1 = L1Controller(node, config, self.factory, ni,
                              self.home_of, self.stats)
            mc = None
            if node in self.mc_nodes:
                mc = MemoryController(node, config, self.factory, ni, self.stats)
            core = None
            if streams is not None:
                core = Core(node, l1, streams[node], self.stats)
            tile = Tile(node, ni, l1, l2, mc, core)
            self.tiles.append(tile)
            ni.deliver = self._make_dispatch(tile)
        # Tick order: cores issue, controllers run due handlers, then the
        # network moves flits.  All channels carry >= 1 cycle so the order
        # only defines intra-cycle convention, not semantics.
        local = self.local_nodes
        for tile in self.tiles:
            if tile.core is not None and (local is None or tile.node in local):
                self.sim.add(tile.core)
        for tile in self.tiles:
            if local is not None and tile.node not in local:
                continue
            self.sim.add(tile.l1)
            self.sim.add(tile.l2)
            if tile.mc is not None:
                self.sim.add(tile.mc)
        # Routers and NIs register individually (same order as
        # Network.tick) so the kernel can sleep each one on its own.
        self.network.register(self.sim, nodes=local)

    def _make_home_of(self) -> Callable[[int], int]:
        """The default block-interleaved L2 home map (recreatable wiring)."""
        line = self.config.cache.line_bytes
        n_nodes = self.network.mesh.n_nodes

        def home_of(addr: int) -> int:
            return (addr // line) % n_nodes

        return home_of

    def _make_mc_of(self) -> Callable[[int], int]:
        """The block-interleaved memory-controller map (recreatable wiring)."""
        line = self.config.cache.line_bytes

        def mc_of(addr: int) -> int:
            return self.mc_nodes[(addr // line) % len(self.mc_nodes)]

        return mc_of

    def reattach(self) -> None:
        """Rebuild every wiring closure after a checkpoint restore.

        The checkpoint pickler (:mod:`repro.sim.checkpoint`) reduces the
        known wire-up closures - address maps, tile dispatch, kernel wake
        hooks - to None, because closures carry no state that is not
        recreatable from the restored object graph.  This re-creates all
        of them against the restored objects.
        """
        if self._default_home:
            self.home_of = self._make_home_of()
        self.mc_of = self._make_mc_of()
        for tile in self.tiles:
            tile.l1.home_of = self.home_of
            tile.l2.mc_of = self.mc_of
            tile.ni.deliver = self._make_dispatch(tile)
        self.sim.rewire_wakes()

    def _make_dispatch(self, tile: Tile) -> Callable[[Message, int], None]:
        l1, l2, mc = tile.l1, tile.l2, tile.mc

        def dispatch(msg: Message, cycle: int) -> None:
            kind = msg.kind
            if kind in _L2_KINDS:
                l2.receive(msg, cycle)
            elif kind in _L1_KINDS:
                l1.receive(msg, cycle)
            elif kind in _MC_KINDS:
                if mc is None:  # pragma: no cover - address-mapping bug trap
                    raise ValueError(f"node {tile.node} has no MC for {kind}")
                mc.receive(msg, cycle)
            else:  # pragma: no cover
                raise ValueError(f"unroutable message kind {kind}")

        return dispatch

    # ------------------------------------------------------------------
    # Run control.
    # ------------------------------------------------------------------
    @property
    def cores(self) -> List[Core]:
        return [tile.core for tile in self.tiles if tile.core is not None]

    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)

    def _progress(self) -> int:
        return self.total_retired() + self.stats.counter("noc.msgs_delivered")

    def run_cycles(self, cycles: int) -> None:
        self.sim.run(cycles)

    def controller_backlog(self) -> int:
        """Scheduled-but-unexecuted controller actions chip-wide
        (telemetry probe: pressure inside the coherence layer)."""
        total = 0
        for tile in self.tiles:
            total += tile.l1.pending_events() + tile.l2.pending_events()
            if tile.mc is not None:
                total += tile.mc.pending_events()
        return total

    def _deadlock_context(self, cycle: int) -> str:
        """Extra context for DeadlockError messages (watchdog hook)."""
        return (
            f"in flight: {self.network.in_flight()}, "
            f"live circuit entries: "
            f"{self.network.live_circuit_entries(cycle)}"
        )

    def _attach_crash_report(self, error: BaseException) -> None:
        """Attach a forensic crash report to a dying run's exception."""
        if getattr(error, "report", None) is not None:
            return
        try:
            from repro.validate.forensics import crash_report

            error.report = crash_report(
                self.network, system=self, error=error,
                cycle=self.sim.cycle,
            )
        except Exception:  # pragma: no cover - diagnosis must not mask
            pass           # the original failure

    def run_instructions(self, per_core: int, max_cycles: int = 50_000_000,
                         watchdog_window: int = 500_000) -> int:
        """Run until every core retires ``per_core`` more instructions.

        Returns the cycle at which the last core finished (the execution
        time used for the paper's speedup comparisons).
        """
        for core in self.cores:
            core.set_target(per_core)
        return self.continue_instructions(self.sim.cycle + max_cycles,
                                          watchdog_window)

    def continue_instructions(self, deadline: int,
                              watchdog_window: int = 500_000) -> int:
        """Run already-armed cores until all are done or ``deadline``.

        The checkpoint/resume path of :func:`run_instructions`: restored
        cores still carry their targets, so re-arming them would change
        semantics.  ``deadline`` is an absolute cycle, which keeps the
        ``run_until`` chunk boundaries identical to the uninterrupted
        run's (chunks restart from the current - boundary-aligned -
        cycle).
        """
        watchdog = ProgressWatchdog(self._progress, watchdog_window,
                                    on_deadlock=self._deadlock_context)
        self.sim.add_watchdog(watchdog)
        try:
            self.sim.run_until(
                lambda: all(core.done for core in self.cores),
                deadline - self.sim.cycle,
            )
        except SimulationError as error:
            self._attach_crash_report(error)
            raise
        finally:
            self.sim.remove_watchdog(watchdog)
            self.stats.flush()
        return max(core.finish_cycle for core in self.cores)

    def continue_drain(self, deadline: int) -> int:
        """Absolute-deadline variant of :meth:`drain` (checkpoint resume)."""
        return self.drain(deadline - self.sim.cycle)

    def functional_prewarm(self) -> None:
        """Install steady-state cache/directory contents directly.

        Stands in for the paper's 200M-cycle warmup phase, which a pure
        Python cycle simulator cannot afford: each core's hot set is placed
        in its L1 (exclusively owned), its mid region and the shared region
        in the L2, so measurement starts from a steady state.
        """
        from repro.coherence.l1 import L1State

        rng = self.rng.stream("prewarm")
        shared_done = set()
        l1_capacity = self.config.cache.l1_sets * self.config.cache.l1_assoc
        for tile in self.tiles:
            core = tile.core
            if core is None:
                continue
            stream = core.stream
            if not hasattr(stream, "hot_lines"):
                # Replayed trace files carry no region metadata; such
                # systems warm up purely by timing simulation.
                continue
            write_frac = stream.params.write_frac

            def warm_state() -> L1State:
                # Lines written during their residency are MODIFIED at
                # steady state (their eviction produces a writeback).
                if rng.random() < write_frac:
                    return L1State.MODIFIED
                return L1State.EXCLUSIVE

            installed = 0
            for addr in stream.hot_lines():
                home = self.home_of(addr)
                if self.tiles[home].l2.prewarm_line(addr, owner=tile.node):
                    if tile.l1.prewarm_line(addr, warm_state()):
                        installed += 1
            # Fill the rest of the L1 with mid-region lines so measurement
            # starts with a full cache (every miss evicts, as at steady
            # state); the remaining mid lines go to the L2 only.
            for addr in stream.mid_lines():
                home = self.home_of(addr)
                if installed < l1_capacity:
                    if self.tiles[home].l2.prewarm_line(addr, owner=tile.node):
                        if tile.l1.prewarm_line(addr, warm_state()):
                            installed += 1
                        continue
                self.tiles[home].l2.prewarm_line(addr)
            if stream.params.shared_frac:
                n = self.config.n_cores
                for addr in stream.shared_lines():
                    if addr not in shared_done:
                        shared_done.add(addr)
                        # Pre-mark (stale) sharers so first readers get S
                        # grants, as at steady state, instead of a cold
                        # E-grant-then-forward on every line.
                        stale = {(addr // 64) % n, (addr // 64 + 7) % n}
                        self.tiles[self.home_of(addr)].l2.prewarm_line(
                            addr, sharers=stale
                        )

    def warmup(self, per_core: int, max_cycles: int = 50_000_000) -> None:
        """Warm caches/directory, then clear statistics (paper sec. 5.1).

        Combines a functional prewarm (cache/directory contents) with a
        short timing warmup (queues, PLRU state, in-flight traffic).
        """
        self.functional_prewarm()
        self.run_instructions(per_core, max_cycles)
        self.drain()
        self.stats.reset()

    def drain(self, max_cycles: int = 2_000_000) -> int:
        """Run until no message is in flight and no controller is busy."""

        def idle() -> bool:
            if self.network.in_flight():
                return False
            return all(
                not tile.l1.busy() and not tile.l2.busy()
                and (tile.mc is None or not tile.mc.busy())
                for tile in self.tiles
            )

        try:
            return self.sim.run_until(idle, max_cycles, check_interval=16)
        except SimulationError as error:
            self._attach_crash_report(error)
            raise
        finally:
            self.stats.flush()


def build_system(config: SystemConfig,
                 workload: Optional[WorkloadProfile] = None) -> CmpSystem:
    """Public constructor (kept stable for downstream users)."""
    return CmpSystem(config, workload)
