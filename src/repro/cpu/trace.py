"""Synthetic memory reference streams.

The paper drives its CMP with PARSEC/SPLASH-2 parallel applications and a
SPEC CPU2006 multiprogrammed mix under Simics.  Those traces are
proprietary full-system artifacts; we substitute parameterised synthetic
streams that reproduce the traffic characteristics the NoC actually sees.

Each core's private accesses draw from three regions:

* **hot** - small enough to live in the L1 (hits; the IPC-1 common case),
* **mid** - larger than the L1 but L2-resident (the steady L1-miss stream
  that generates the request/reply/ack traffic of Table 1),
* **cold** - a monotonically advancing pointer into untouched memory (the
  steady trickle of L2 misses, memory traffic and L2 writebacks).

plus a globally **shared** region with skewed line popularity whose writes
produce invalidations, exclusive ownership and L1-to-L1 forwards.

The sequence drawn by a stream depends only on (seed, core, parameters) -
never on timing - so every Reactive Circuits variant executes the same
instruction stream and execution times are directly comparable.

The per-region footprints (hot_lines / mid_lines / shared_lines) let
the system functionally pre-warm caches and directory, standing in for
the paper's 200M-cycle warmup, which pure-Python simulation cannot afford.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Iterable, Tuple


@dataclass(frozen=True)
class StreamParams:
    """Knobs of one core's synthetic access stream."""

    #: Fraction of instructions that access memory.
    mem_ratio: float = 0.3
    #: Fraction of memory accesses that are stores (private regions).
    write_frac: float = 0.25
    #: Fraction of accesses targeting the shared region (0 for SPEC mixes).
    shared_frac: float = 0.0
    #: Fraction of private accesses hitting the L2-resident mid region.
    mid_frac: float = 0.06
    #: Fraction of private accesses streaming into untouched (cold) memory.
    cold_frac: float = 0.0008
    #: Per-core hot set (lines) - sized to stay L1-resident.
    hot_lines: int = 128
    #: Per-core mid region (lines) - L1-evicting, L2-resident.
    mid_lines: int = 4096
    #: Shared hot region (lines) common to every core.
    shared_lines: int = 512
    #: Fraction of shared accesses that are stores (contention knob).
    shared_write_frac: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ValueError("mem_ratio must be in (0, 1]")
        for name in ("write_frac", "shared_frac", "mid_frac", "cold_frac",
                     "shared_write_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.mid_frac + self.cold_frac > 1.0:
            raise ValueError("mid_frac + cold_frac must not exceed 1")
        if min(self.hot_lines, self.mid_lines, self.shared_lines) < 1:
            raise ValueError("region sizes must be positive")


#: Shared region occupies low addresses; private regions live above it.
_PRIVATE_BASE_LINE = 1 << 24
#: Cold (never-revisited) space starts far above all warm regions.
_COLD_BASE_LINE = 1 << 32
#: Gap between consecutive cores' private regions.  The extra odd prime
#: staggers each core's region across the L2 banks' sets: power-of-two
#: spacing would alias every core's footprint onto the same sets and
#: thrash the (inclusive) L2.
_PRIVATE_SPAN_LINES = (1 << 20) + 8209


class AccessStream:
    """Deterministic per-core generator of (gap, is_write, address)."""

    def __init__(self, params: StreamParams, core: int, line_bytes: int,
                 rng: Random, shared_base_line: int = 0) -> None:
        self.params = params
        self.core = core
        self.line_bytes = line_bytes
        self.rng = rng
        #: First line of the shared region (per-partition on split chips).
        self.shared_base_line = shared_base_line
        base = _PRIVATE_BASE_LINE + core * _PRIVATE_SPAN_LINES
        self._hot_base = base
        self._mid_base = base + params.hot_lines
        self._cold_next = _COLD_BASE_LINE + core * _PRIVATE_SPAN_LINES
        self._gap_p = params.mem_ratio

    def next_access(self) -> Tuple[int, bool, int]:
        """(non-memory gap, is_write, byte address) of the next access."""
        rng = self.rng
        p = self.params
        gap = self._geometric(rng, self._gap_p)
        roll = rng.random()
        if p.shared_frac and roll < p.shared_frac:
            line = self.shared_base_line + self._zipfish(rng, p.shared_lines)
            is_write = rng.random() < p.shared_write_frac
            return gap, is_write, line * self.line_bytes
        draw = rng.random()
        if draw < p.cold_frac:
            line = self._cold_next
            self._cold_next += 1
        elif draw < p.cold_frac + p.mid_frac:
            line = self._mid_base + rng.randrange(p.mid_lines)
        else:
            line = self._hot_base + rng.randrange(p.hot_lines)
        is_write = rng.random() < p.write_frac
        return gap, is_write, line * self.line_bytes

    # ------------------------------------------------------------------
    # Functional warmup support.
    # ------------------------------------------------------------------
    def hot_lines(self) -> Iterable[int]:
        """Byte addresses of the L1-resident hot set."""
        for line in range(self._hot_base, self._hot_base + self.params.hot_lines):
            yield line * self.line_bytes

    def mid_lines(self) -> Iterable[int]:
        """Byte addresses of the L2-resident mid region."""
        for line in range(self._mid_base, self._mid_base + self.params.mid_lines):
            yield line * self.line_bytes

    def shared_lines(self) -> Iterable[int]:
        """Byte addresses of the shared hot region."""
        base = self.shared_base_line
        for line in range(base, base + self.params.shared_lines):
            yield line * self.line_bytes

    @staticmethod
    def _geometric(rng: Random, p: float) -> int:
        """Geometric gap >= 0 with success probability ``p`` per instr."""
        if p >= 1.0:
            return 0
        u = rng.random()
        return int(math.log(1.0 - u) / math.log(1.0 - p))

    @staticmethod
    def _zipfish(rng: Random, n: int) -> int:
        """Skewed choice over [0, n): square-law bias toward low lines.

        Cheap stand-in for a Zipf distribution - hot shared lines see most
        of the contention, like locks and frequently-read shared data.
        """
        return int(n * rng.random() ** 1.25)
