"""Cores and synthetic workloads (the paper's Simics/GEMS substitution)."""

from repro.cpu.core import Core
from repro.cpu.trace import AccessStream, StreamParams
from repro.cpu.workloads import (
    ALL_WORKLOADS,
    MULTIPROGRAMMED_MIX,
    PARALLEL_WORKLOADS,
    WorkloadProfile,
    workload_by_name,
)

__all__ = [
    "ALL_WORKLOADS",
    "AccessStream",
    "Core",
    "MULTIPROGRAMMED_MIX",
    "PARALLEL_WORKLOADS",
    "StreamParams",
    "WorkloadProfile",
    "workload_by_name",
]
