"""In-order, IPC-1, blocking core model (paper Table 2).

The core retires one instruction per cycle; memory instructions access the
L1 and block the pipeline on a miss until the fill returns (sequential
consistency: stores also block until exclusivity is granted).  L1 hits are
treated as fully pipelined, so the 2-cycle hit latency does not reduce the
IPC of hitting code - only misses stall the core.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.l1 import L1Controller
from repro.cpu.trace import AccessStream
from repro.sim.stats import Stats


class Core:
    """One single-threaded in-order core driven by a synthetic stream."""

    def __init__(self, node: int, l1: L1Controller, stream: AccessStream,
                 stats: Stats) -> None:
        self.node = node
        self.l1 = l1
        self.stream = stream
        self.stats = stats
        self.retired = 0
        #: Instructions to retire before the core reports done (None = run
        #: forever, used by throughput-style experiments).
        self.target: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.waiting = False
        self._gap = 0
        self._op: Optional[tuple] = None
        #: Set by the simulator kernel; pokes this core awake.
        self.kernel_wake = None
        l1.resume_core = self._resume

    @property
    def done(self) -> bool:
        return self.target is not None and self.retired >= self.target

    def set_target(self, instructions: int) -> None:
        """Arm the core to retire ``instructions`` more instructions."""
        self.target = self.retired + instructions
        self.finish_cycle = None
        if self.kernel_wake is not None:
            self.kernel_wake()

    def next_wake(self, cycle: int) -> Optional[int]:
        """Sleep while blocked on the L1 or finished; the L1's fill
        callback (``_resume``) wakes the core externally."""
        if self.waiting or self.done:
            return None
        return cycle + 1

    def tick(self, cycle: int) -> None:
        """Retire one instruction, or issue/stall on a memory access."""
        if self.waiting or self.done:
            return
        if self._gap > 0:
            # Non-memory instructions retire at IPC 1.
            self._gap -= 1
            self._retire(cycle)
            return
        if self._op is None:
            gap, is_write, addr = self.stream.next_access()
            if gap > 0:
                self._gap = gap - 1  # this cycle retires one of the gap
                self._op = (is_write, addr)
                self._retire(cycle)
                return
            self._op = (is_write, addr)
        is_write, addr = self._op
        if self.l1.access(addr, is_write, cycle):
            self._op = None
            self._retire(cycle)
        else:
            self.waiting = True
            self.stats.bump("core.stalls_started")

    def _resume(self, cycle: int) -> None:
        """Called by the L1 when the outstanding miss is filled."""
        if not self.waiting:
            return
        self.waiting = False
        self._op = None
        self._retire(cycle)
        if self.kernel_wake is not None:
            # The fill retired this instruction during the L1's tick; the
            # core itself resumes issuing from the next cycle.
            self.kernel_wake(cycle + 1)

    def _retire(self, cycle: int) -> None:
        self.retired += 1
        if self.done and self.finish_cycle is None:
            self.finish_cycle = cycle
