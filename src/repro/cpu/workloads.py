"""Workload profiles standing in for the paper's benchmark suites.

The paper runs ten PARSEC applications, eleven SPLASH-2 applications
(scaled inputs from PARSEC 3.0) and one SPEC CPU2006 multiprogrammed mix.
We cannot ship those proprietary workloads, so each application is modelled
as a parameterised synthetic stream (see :mod:`repro.cpu.trace`) whose
knobs are chosen from the applications' published characterisations
(working-set size, sharing degree, read/write mix, memory intensity).
Absolute per-application numbers will differ from the paper's; the
*distribution* of behaviours - compute-bound vs. memory-bound,
low-sharing vs. contended - is what these profiles preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List

from repro.cpu.trace import AccessStream, StreamParams


@dataclass(frozen=True)
class WorkloadProfile:
    """A named workload: one stream parameterisation per core."""

    name: str
    suite: str  # "parsec" | "splash2" | "mix"
    params: StreamParams

    def streams(self, n_cores: int, line_bytes: int, rng: Random
                ) -> List[AccessStream]:
        """Per-core access streams (deterministic in the provided RNG)."""
        return [
            AccessStream(self.params, core, line_bytes,
                         Random(rng.getrandbits(64)))
            for core in range(n_cores)
        ]


def _p(mem: float, wr: float, sh: float, mid: float, hot: int,
       mid_lines: int, shared_lines: int, shw: float,
       cold: float = 0.0008) -> StreamParams:
    return StreamParams(
        mem_ratio=mem, write_frac=wr, shared_frac=sh, mid_frac=mid,
        cold_frac=cold, hot_lines=hot, mid_lines=mid_lines,
        shared_lines=shared_lines, shared_write_frac=shw,
    )


#: PARSEC applications (the paper's selection).
_PARSEC: Dict[str, StreamParams] = {
    # mostly data-parallel with small working sets and little sharing
    "blackscholes": _p(0.22, 0.15, 0.02, 0.0078, 96, 2048, 128, 0.013, 0.0003),
    "bodytrack": _p(0.28, 0.20, 0.08, 0.0182, 128, 3072, 256, 0.025, 0.0005),
    # canneal: huge working set, heavy pointer chasing, shared netlist
    "canneal": _p(0.32, 0.25, 0.20, 0.0488, 192, 8192, 1024, 0.050, 0.0020),
    "dedup": _p(0.30, 0.30, 0.12, 0.0312, 160, 6144, 512, 0.062, 0.0010),
    "ferret": _p(0.30, 0.22, 0.10, 0.0273, 160, 6144, 384, 0.030, 0.0008),
    # fluidanimate: fine-grained neighbour sharing with many small writes
    "fluidanimate": _p(0.30, 0.35, 0.18, 0.0247, 128, 4096, 512, 0.087, 0.0006),
    "raytrace": _p(0.28, 0.10, 0.15, 0.0208, 160, 6144, 768, 0.007, 0.0006),
    "swaptions": _p(0.20, 0.18, 0.02, 0.0065, 80, 1024, 64, 0.013, 0.0002),
    "vips": _p(0.30, 0.28, 0.06, 0.0247, 144, 5120, 256, 0.030, 0.0008),
    # x264: streaming frames, producer-consumer pipeline sharing
    "x264": _p(0.31, 0.25, 0.10, 0.0338, 144, 6144, 512, 0.075, 0.0012),
}

#: SPLASH-2 applications with PARSEC 3.0 scaled inputs.
_SPLASH2: Dict[str, StreamParams] = {
    "barnes": _p(0.30, 0.22, 0.15, 0.0208, 160, 4096, 512, 0.045, 0.0006),
    "cholesky": _p(0.29, 0.25, 0.10, 0.0273, 160, 5120, 384, 0.037, 0.0008),
    # fft / ocean: large strided working sets, memory bound
    "fft": _p(0.33, 0.30, 0.08, 0.0455, 128, 8192, 256, 0.037, 0.0018),
    "lu_cb": _p(0.30, 0.28, 0.08, 0.0208, 160, 4096, 256, 0.030, 0.0006),
    "lu_ncb": _p(0.30, 0.28, 0.08, 0.0312, 144, 6144, 256, 0.030, 0.0008),
    "ocean_cp": _p(0.34, 0.30, 0.10, 0.0442, 128, 8192, 384, 0.050, 0.0016),
    "ocean_ncp": _p(0.34, 0.30, 0.10, 0.0533, 128, 8192, 384, 0.050, 0.0022),
    "radiosity": _p(0.28, 0.20, 0.18, 0.0182, 160, 4096, 768, 0.037, 0.0005),
    "volrend": _p(0.26, 0.15, 0.12, 0.0143, 144, 3072, 512, 0.020, 0.0004),
    # water: small working sets, mostly compute
    "water_nsquared": _p(0.24, 0.20, 0.06, 0.0091, 112, 2048, 192, 0.025, 0.0003),
    "water_spatial": _p(0.24, 0.20, 0.05, 0.0078, 112, 2048, 192, 0.025, 0.0003),
}

#: SPEC CPU2006-like per-application profiles for the multiprogrammed mix
#: (no sharing; large private working sets per the paper's selection).
_SPEC: Dict[str, StreamParams] = {
    "mcf": _p(0.35, 0.25, 0.0, 0.0715, 96, 8192, 1, 0.000, 0.0035),
    "lbm": _p(0.34, 0.40, 0.0, 0.0585, 96, 8192, 1, 0.000, 0.0030),
    "milc": _p(0.33, 0.30, 0.0, 0.0520, 112, 8192, 1, 0.000, 0.0025),
    "soplex": _p(0.32, 0.25, 0.0, 0.0455, 128, 6144, 1, 0.000, 0.0020),
    "libquantum": _p(0.30, 0.25, 0.0, 0.0553, 96, 8192, 1, 0.000, 0.0028),
    "omnetpp": _p(0.32, 0.28, 0.0, 0.0390, 128, 6144, 1, 0.000, 0.0018),
    "astar": _p(0.30, 0.22, 0.0, 0.0292, 144, 5120, 1, 0.000, 0.0012),
    "sphinx3": _p(0.31, 0.15, 0.0, 0.0358, 144, 5120, 1, 0.000, 0.0014),
    "gcc": _p(0.29, 0.25, 0.0, 0.0260, 160, 4096, 1, 0.000, 0.0010),
    "bwaves": _p(0.33, 0.30, 0.0, 0.0488, 112, 8192, 1, 0.000, 0.0022),
    "zeusmp": _p(0.31, 0.28, 0.0, 0.0358, 128, 6144, 1, 0.000, 0.0016),
    "cactusADM": _p(0.31, 0.30, 0.0, 0.0390, 128, 6144, 1, 0.000, 0.0018),
    "leslie3d": _p(0.32, 0.28, 0.0, 0.0423, 112, 6144, 1, 0.000, 0.0018),
    "GemsFDTD": _p(0.33, 0.30, 0.0, 0.0520, 112, 8192, 1, 0.000, 0.0024),
    "wrf": _p(0.30, 0.25, 0.0, 0.0292, 144, 5120, 1, 0.000, 0.0012),
    "xalancbmk": _p(0.30, 0.22, 0.0, 0.0325, 144, 5120, 1, 0.000, 0.0014),
}


@dataclass(frozen=True)
class MultiprogrammedMix(WorkloadProfile):
    """SPEC-style mix: each core runs an independent application.

    For 16 cores each of the 16 applications appears once; for 64 cores
    each appears four times (the paper's construction), both randomly
    distributed over the cores.
    """

    def streams(self, n_cores: int, line_bytes: int, rng: Random
                ) -> List[AccessStream]:
        apps = list(_SPEC.items())
        copies = max(1, -(-n_cores // len(apps)))
        assignment = (apps * copies)[:n_cores]
        rng.shuffle(assignment)
        return [
            AccessStream(params, core, line_bytes, Random(rng.getrandbits(64)))
            for core, (_name, params) in enumerate(assignment)
        ]


PARALLEL_WORKLOADS: List[WorkloadProfile] = [
    *(WorkloadProfile(name, "parsec", params) for name, params in _PARSEC.items()),
    *(WorkloadProfile(name, "splash2", params) for name, params in _SPLASH2.items()),
]

MULTIPROGRAMMED_MIX = MultiprogrammedMix("mix", "mix", StreamParams())

ALL_WORKLOADS: List[WorkloadProfile] = PARALLEL_WORKLOADS + [MULTIPROGRAMMED_MIX]


def workload_by_name(name: str) -> WorkloadProfile:
    for workload in ALL_WORKLOADS:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown workload: {name!r}")
