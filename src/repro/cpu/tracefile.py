"""Memory-trace files: record synthetic streams, replay captured traces.

The paper drives its simulations from real applications under Simics.
Users who *do* have access to real traces (Pin, DynamoRIO, gem5, ...) can
feed them to this reproduction through a simple text format, one access
per line::

    # repro-trace v1 cores=16 line=64
    <core> <gap> <r|w> <hex address>

``gap`` is the number of non-memory instructions retired before the
access.  :class:`TraceRecorder` also writes this format from the built-in
synthetic streams, so traces can be captured once and replayed exactly
(or shared between machines).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.cpu.trace import AccessStream

_HEADER_PREFIX = "# repro-trace v1"

Access = Tuple[int, bool, int]


class TraceFileError(ValueError):
    """Malformed trace file."""


class TraceRecorder:
    """Capture per-core access sequences into a trace file."""

    def __init__(self, n_cores: int, line_bytes: int) -> None:
        self.n_cores = n_cores
        self.line_bytes = line_bytes
        self._accesses: List[Tuple[int, Access]] = []

    def record(self, core: int, access: Access) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range")
        self._accesses.append((core, access))

    def record_stream(self, core: int, stream: AccessStream, count: int) -> None:
        """Sample ``count`` accesses of a synthetic stream for ``core``."""
        for _ in range(count):
            self.record(core, stream.next_access())

    def write(self, path: Union[str, Path]) -> None:
        with open(path, "w") as handle:
            handle.write(
                f"{_HEADER_PREFIX} cores={self.n_cores} "
                f"line={self.line_bytes}\n"
            )
            for core, (gap, is_write, addr) in self._accesses:
                rw = "w" if is_write else "r"
                handle.write(f"{core} {gap} {rw} {addr:x}\n")

    def __len__(self) -> int:
        return len(self._accesses)


class TraceFileStream:
    """Per-core access stream replaying a recorded sequence.

    When the recorded sequence runs out the stream loops (traces are
    usually captured from stationary regions; looping keeps long
    simulations possible with short captures).
    """

    def __init__(self, accesses: List[Access], core: int) -> None:
        if not accesses:
            raise TraceFileError(f"core {core} has no accesses in the trace")
        self.core = core
        self._accesses = accesses
        self._next = 0
        self.wraps = 0

    def next_access(self) -> Access:
        access = self._accesses[self._next]
        self._next += 1
        if self._next == len(self._accesses):
            self._next = 0
            self.wraps += 1
        return access


class FileTraceWorkload:
    """Workload backed by a trace file (drop-in for WorkloadProfile)."""

    suite = "trace"

    def __init__(self, path: Union[str, Path], name: Optional[str] = None) -> None:
        self.path = Path(path)
        self.name = name or self.path.stem
        self.n_cores, self.line_bytes, self._per_core = _parse(self.path)

    def streams(self, n_cores: int, line_bytes: int, rng) -> List[TraceFileStream]:
        if n_cores != self.n_cores:
            raise TraceFileError(
                f"trace was captured for {self.n_cores} cores, "
                f"system has {n_cores}"
            )
        if line_bytes != self.line_bytes:
            raise TraceFileError(
                f"trace line size {self.line_bytes} != system {line_bytes}"
            )
        return [
            TraceFileStream(self._per_core.get(core, []), core)
            for core in range(n_cores)
        ]


def _parse(path: Path) -> Tuple[int, int, Dict[int, List[Access]]]:
    per_core: Dict[int, List[Access]] = {}
    n_cores = line_bytes = None
    with open(path) as handle:
        for lineno, raw in enumerate(handle, 1):
            text = raw.strip()
            if not text:
                continue
            if text.startswith("#"):
                if text.startswith(_HEADER_PREFIX):
                    for token in text[len(_HEADER_PREFIX):].split():
                        key, _, value = token.partition("=")
                        if key == "cores":
                            n_cores = int(value)
                        elif key == "line":
                            line_bytes = int(value)
                continue
            parts = text.split()
            if len(parts) != 4:
                raise TraceFileError(f"{path}:{lineno}: expected 4 fields")
            try:
                core = int(parts[0])
                gap = int(parts[1])
                rw = parts[2]
                addr = int(parts[3], 16)
            except ValueError as exc:
                raise TraceFileError(f"{path}:{lineno}: {exc}") from exc
            if rw not in ("r", "w"):
                raise TraceFileError(f"{path}:{lineno}: bad r/w flag {rw!r}")
            if gap < 0 or addr < 0:
                raise TraceFileError(f"{path}:{lineno}: negative field")
            per_core.setdefault(core, []).append((gap, rw == "w", addr))
    if n_cores is None or line_bytes is None:
        raise TraceFileError(f"{path}: missing '{_HEADER_PREFIX}' header")
    for core in per_core:
        if core >= n_cores:
            raise TraceFileError(f"{path}: core {core} >= cores={n_cores}")
    return n_cores, line_bytes, per_core


def capture_workload(workload, n_cores: int, line_bytes: int, rng,
                     accesses_per_core: int, path: Union[str, Path]) -> None:
    """Record a synthetic workload into a replayable trace file."""
    recorder = TraceRecorder(n_cores, line_bytes)
    for core, stream in enumerate(workload.streams(n_cores, line_bytes, rng)):
        recorder.record_stream(core, stream, accesses_per_core)
    recorder.write(path)
