"""The stable public API: one facade over both execution modes.

Every downstream consumer -- the CLI, ``run_matrix`` /
``compare_variants``, parameter sweeps, ``tools/run_reproduction.py``,
and external users -- talks to this module:

    from repro import api
    handle = api.submit(specs)            # a batch of RunSpecs
    api.status(handle)                    # per-job states
    results = api.results(handle)         # RunResults, submitted order
    for key, cycle, values in api.stream_metrics(handle):
        ...                               # live metric series
    result = api.run(spec)                # one-shot convenience

The same five calls work in two modes, chosen by configuration
(``REPRO_SERVICE`` / :func:`repro.config.resolve`):

* **in-process** (default): ``submit`` computes eagerly with the
  caller's process (fanning out via :mod:`repro.harness.parallel` when
  ``jobs``/``REPRO_JOBS`` allow) and the handle is already complete;
* **daemon** (``REPRO_SERVICE=<socket path or host:port>``): ``submit``
  enqueues on the shared job daemon (:mod:`repro.service`) and
  ``results`` blocks on completion.

Results are bit-identical across modes -- the daemon's workers execute
the exact :func:`repro.harness.experiment.run_experiment` code path --
and daemon results are fed into the local experiment memo, so serial
assembly code (tables, figures) transparently consumes them either way.

The old direct entry points (``repro.harness.experiment.run_matrix`` /
``compare_variants``) remain as :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro import config as repro_config
from repro.harness.experiment import RunResult, RunSpec
from repro.sim.config import Variant

__all__ = [
    "JobHandle",
    "submit",
    "run",
    "status",
    "results",
    "stream_metrics",
    "run_matrix",
    "compare_variants",
    "map_tasks",
    "service_address",
]


class JobHandle:
    """Opaque handle for one submitted batch (order = submission order)."""

    def __init__(self, backend, specs: List[RunSpec], job_ids: List[str],
                 keys: List[str]) -> None:
        self._backend = backend
        self.specs = specs
        self.job_ids = job_ids
        self.keys = keys
        #: in-process mode: results, filled at submit time.
        self._results: Optional[List[RunResult]] = None
        #: in-process mode: {key: [(cycle, values), ...]} per observed spec.
        self._metrics: Dict[str, List[Tuple[int, Dict[str, float]]]] = {}

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return (f"JobHandle({len(self.specs)} job(s) via "
                f"{self._backend.name})")

    # Convenience forwarding so a handle is usable on its own.
    def status(self) -> List[dict]:
        return status(self)

    def results(self, timeout: Optional[float] = None) -> List[RunResult]:
        return results(self, timeout=timeout)

    def stream_metrics(self):
        return stream_metrics(self)


# ----------------------------------------------------------------------
# Backends.
# ----------------------------------------------------------------------

class _InProcessBackend:
    """Eager local execution: the handle is complete when submit returns."""

    name = "in-process"

    def submit(self, specs: List[RunSpec],
               jobs: Optional[int] = None) -> JobHandle:
        from repro.harness import experiment, parallel

        specs = list(specs)
        keys = [spec.scaled().key() for spec in specs]
        handle = JobHandle(self, specs, list(keys), keys)
        plain = [spec for spec in specs if not spec.observed]
        if len(plain) > 1 and parallel.resolve_jobs(jobs) > 1:
            parallel.run_specs(plain, jobs=jobs, safe=True)
        collected: List[RunResult] = []
        for spec, key in zip(specs, keys):
            if spec.observed:
                buffer: List[Tuple[int, Dict[str, float]]] = []

                def _capture(cycle, values, _buffer=buffer):
                    _buffer.append((cycle, dict(values)))

                handle._metrics[key] = buffer
                spec = replace(
                    spec,
                    telemetry=replace(spec.telemetry, on_sample=_capture),
                )
            # Dynamic attribute lookups so test doubles patched onto the
            # experiment module are honoured.
            collected.append(experiment.run_experiment_safe(spec))
        handle._results = collected
        return handle

    def status(self, handle: JobHandle) -> List[dict]:
        return [
            {"job_id": job_id, "key": key, "state": "done", "source": "run"}
            for job_id, key in zip(handle.job_ids, handle.keys)
        ]

    def results(self, handle: JobHandle,
                timeout: Optional[float] = None) -> List[RunResult]:
        return list(handle._results)

    def stream_metrics(self, handle: JobHandle):
        for spec, key in zip(handle.specs, handle.keys):
            if not spec.observed:
                continue
            for cycle, values in handle._metrics.get(key, ()):
                yield key, cycle, values


class _DaemonBackend:
    """Thin client of a :class:`repro.service.Daemon`."""

    def __init__(self, address: str) -> None:
        from repro.service import ServiceClient

        self.address = address
        self.client = ServiceClient(address)

    @property
    def name(self) -> str:
        return f"daemon {self.address}"

    def submit(self, specs: List[RunSpec],
               jobs: Optional[int] = None) -> JobHandle:
        # ``jobs`` is a local-fan-out knob; the daemon sizes its own fleet.
        specs = list(specs)
        statuses = self.client.submit(specs)
        return JobHandle(
            self, specs,
            [row["job_id"] for row in statuses],
            [row["key"] for row in statuses],
        )

    def status(self, handle: JobHandle) -> List[dict]:
        return self.client.status(handle.job_ids)

    def results(self, handle: JobHandle,
                timeout: Optional[float] = None) -> List[RunResult]:
        from repro.harness import experiment
        from repro.service import ServiceError

        rows = self.client.results(handle.job_ids, timeout=timeout)
        out: List[RunResult] = []
        for row, spec in zip(rows, handle.specs):
            entry = row.get("result")
            if entry is not None:
                result = RunResult.from_json(entry)
            elif row.get("state") == "failed":
                # Infrastructure failure (worker kept dying, timeout):
                # surface it exactly like a degraded simulation failure.
                result = RunResult(
                    spec_key=row.get("key", spec.key()),
                    n_cores=spec.n_cores,
                    variant=spec.variant.value,
                    workload=spec.workload,
                    exec_cycles=0,
                    error=row.get("error", "job failed"),
                    error_kind=row.get("error_kind", "ServiceError"),
                )
            else:
                raise ServiceError(
                    f"job {row.get('job_id')} finished in state "
                    f"{row.get('state')!r} without a result")
            # Seed the local memo so serial assembly (tables/figures)
            # consumes daemon results exactly like parallel.run_specs'.
            experiment._memo.setdefault(result.spec_key, result)
            out.append(result)
        return out

    def stream_metrics(self, handle: JobHandle):
        for spec, job_id, key in zip(handle.specs, handle.job_ids,
                                     handle.keys):
            if not spec.observed:
                continue
            for event in self.client.stream(job_id):
                if event.get("event") == "metric":
                    yield key, event["cycle"], event["values"]


_IN_PROCESS = _InProcessBackend()


def service_address() -> str:
    """The configured daemon address ('' = in-process mode)."""
    return repro_config.resolve("service")


def _backend(address: Optional[str] = None):
    if address is None:
        address = service_address()
    return _DaemonBackend(address) if address else _IN_PROCESS


# ----------------------------------------------------------------------
# The five facade calls.
# ----------------------------------------------------------------------

def submit(specs: Iterable[RunSpec], jobs: Optional[int] = None,
           address: Optional[str] = None) -> JobHandle:
    """Submit a batch of specs; returns a :class:`JobHandle`."""
    return _backend(address).submit(list(specs), jobs=jobs)


def status(handle: JobHandle) -> List[dict]:
    """Per-job state dicts for the batch, in submission order."""
    return handle._backend.status(handle)


def results(handle: JobHandle,
            timeout: Optional[float] = None) -> List[RunResult]:
    """Block until every job completes; RunResults in submission order.

    Simulation failures come back as failure RunResults (check
    ``result.failed``), matching ``run_experiment_safe``.
    """
    return handle._backend.results(handle, timeout=timeout)


def stream_metrics(handle: JobHandle
                   ) -> Iterator[Tuple[str, int, Dict[str, float]]]:
    """Yield ``(spec_key, cycle, {metric: value})`` samples for every
    telemetry-observed job in the batch.

    Against the daemon this is live: samples arrive while the runs are
    in flight (plus a bounded replay of samples emitted before the call).
    In-process, submission is eager, so the full buffered series is
    replayed.
    """
    return handle._backend.stream_metrics(handle)


def run(spec: RunSpec, address: Optional[str] = None) -> RunResult:
    """Run one spec to completion; raises on simulation failure."""
    backend = _backend(address)
    if backend is _IN_PROCESS:
        from repro.harness import experiment

        return experiment.run_experiment(spec)
    result = backend.results(backend.submit([spec]))[0]
    if result.failed:
        raise RuntimeError(
            f"{result.error_kind or 'SimulationError'}: {result.error} "
            f"(spec {result.spec_key})")
    return result


# ----------------------------------------------------------------------
# Sweep helpers (the canonical homes; old spellings are shims).
# ----------------------------------------------------------------------

def _prefetch(specs: List[RunSpec], jobs: Optional[int],
              safe: bool) -> None:
    """Compute a batch through the active backend, seeding the memo."""
    from repro.harness import parallel

    backend = _backend()
    if backend is not _IN_PROCESS:
        batch = backend.results(backend.submit(specs))
        if not safe:
            for result in batch:
                if result.failed:
                    raise RuntimeError(
                        f"{result.error_kind}: {result.error} "
                        f"(spec {result.spec_key})")
    elif parallel.resolve_jobs(jobs) > 1 and len(specs) > 1:
        parallel.run_specs(specs, jobs=jobs, safe=safe)


def run_matrix(n_cores: int, variants: Iterable[Variant],
               workloads: Iterable[str], seed: int = 1,
               jobs: Optional[int] = None,
               fail_fast: Optional[bool] = None,
               ) -> Dict[Variant, Dict[str, RunResult]]:
    """Sweep variants x workloads; returns results[variant][workload].

    Specs are computed through the active backend first -- worker
    processes in-process (``jobs`` / ``REPRO_JOBS``), the shared daemon
    fleet in service mode -- then assembled from the memo, so the
    returned results are bit-identical to a serial sweep.

    By default a failing run (deadlock/invariant violation) degrades to
    a failure :class:`RunResult` and the sweep continues; pass
    ``fail_fast=True`` (or set ``REPRO_FAILFAST=1``) to abort on the
    first simulation error instead.
    """
    from repro.harness import experiment

    if fail_fast is None:
        fail_fast = experiment.env_flag("REPRO_FAILFAST")
    variants = list(variants)
    workloads = list(workloads)
    specs = [
        RunSpec(n_cores, variant, workload, seed)
        for variant in variants
        for workload in workloads
    ]
    _prefetch(specs, jobs, safe=not fail_fast)
    runner = (experiment.run_experiment if fail_fast
              else experiment.run_experiment_safe)
    out: Dict[Variant, Dict[str, RunResult]] = {}
    for variant in variants:
        per = {}
        for workload in workloads:
            per[workload] = runner(
                RunSpec(n_cores, variant, workload, seed)
            )
        out[variant] = per
    return out


def compare_variants(workload: str, n_cores: int = 16,
                     variants: Optional[Iterable[Variant]] = None,
                     seed: int = 1,
                     jobs: Optional[int] = None
                     ) -> Dict[str, Dict[str, float]]:
    """One-call comparison of circuit variants on a single workload.

    Returns, per variant name: speedup vs. baseline, normalised network
    energy, mean circuit-eligible reply latency, and circuit success rate.
    The convenient entry point for downstream users exploring the design
    space (``from repro import compare_variants``).
    """
    from repro.harness import experiment

    if variants is None:
        variants = [Variant.BASELINE, Variant.FRAGMENTED, Variant.COMPLETE,
                    Variant.COMPLETE_NOACK, Variant.SLACKDELAY1_NOACK,
                    Variant.IDEAL]
    variants = list(variants)
    specs = [RunSpec(n_cores, v, workload, seed)
             for v in [Variant.BASELINE] + variants]
    _prefetch(specs, jobs, safe=False)
    base = experiment.run_experiment(
        RunSpec(n_cores, Variant.BASELINE, workload, seed))
    out: Dict[str, Dict[str, float]] = {}
    for variant in variants:
        result = experiment.run_experiment(
            RunSpec(n_cores, variant, workload, seed))
        replies = result.counter("circuit.replies_total")
        out[variant.value] = {
            "speedup": base.exec_cycles / result.exec_cycles,
            "energy_vs_baseline": result.energy_total / base.energy_total,
            "reply_latency": result.mean("lat.net.crep"),
            "reply_latency_p95": result.percentile("lat.net.crep", 95),
            "circuit_success": (
                result.counter("circuit.outcome.on_circuit") / replies
                if replies else 0.0
            ),
        }
    return out


def map_tasks(tasks: Dict[str, object], worker, jobs: Optional[int] = None,
              timeout: Optional[float] = None, echo=None
              ) -> Dict[str, object]:
    """Run ``worker(payload)`` for arbitrary ``{key: payload}`` tasks.

    Arbitrary callables cannot cross the service wire, so this always
    fans out locally (:func:`repro.harness.parallel.run_tasks`); sweeps
    built from :class:`RunSpec` batches should use :func:`submit`, which
    is daemon-aware.
    """
    from repro.harness import parallel

    return parallel.run_tasks(tasks, worker, jobs=jobs, timeout=timeout,
                              echo=echo)
