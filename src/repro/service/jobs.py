"""Job table of the daemon: states, dedup bookkeeping, handles.

A *job* is one submitted :class:`~repro.harness.experiment.RunSpec`.
Lifecycle::

    QUEUED --dispatch--> RUNNING --("done" event)--> DONE
       ^                    |
       |                    +--(worker death, attempts left)--+
       +------------------- requeue <-------------------------+
                            |
                            +--(attempts exhausted / error)--> FAILED

Dedup rules (also documented in ``docs/architecture.md`` §15):

* a submitted spec whose key matches a QUEUED/RUNNING/DONE job joins
  that job instead of spawning a new one (``source="dedup"``);
* a spec whose key is already in the result store completes immediately
  with the stored result (``source="cache"``);
* telemetry-observed (streamed) specs are **never** deduplicated -- their
  point is regenerating live metric series, mirroring how observed runs
  bypass the cache *read* in :func:`repro.harness.experiment.run_experiment`;
* FAILED jobs do not absorb resubmissions: submitting the same spec
  again retries it.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.experiment import RunSpec

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a new submission of the same key may join.
JOINABLE = (QUEUED, RUNNING, DONE)
#: States that terminate streaming.
TERMINAL = (DONE, FAILED)

#: Worker deaths tolerated per job before it is declared FAILED.
DEFAULT_JOB_RETRIES = 2


@dataclass
class Job:
    """One unit of work owned by the daemon."""

    job_id: str
    spec: RunSpec
    key: str
    state: str = QUEUED
    #: How the job got its result: "run", "cache" (store hit at submit)
    #: or "requeue" markers never appear here -- attempts counts those.
    source: str = "run"
    attempts: int = 0
    result: Optional[dict] = None  # RunResult.to_json()
    error: Optional[str] = None
    error_kind: Optional[str] = None
    #: pid of the worker currently executing the job (forensics/tests).
    worker_pid: Optional[int] = None

    def to_status(self) -> dict:
        status = {
            "job_id": self.job_id,
            "key": self.key,
            "state": self.state,
            "source": self.source,
            "attempts": self.attempts,
        }
        if self.error is not None:
            status["error"] = self.error
            status["error_kind"] = self.error_kind
        if self.worker_pid is not None:
            status["worker_pid"] = self.worker_pid
        return status


class JobTable:
    """Thread-safe job registry with key-based dedup.

    All daemon threads (server connections, the supervisor) funnel
    through one lock; operations are dictionary updates, so contention
    is negligible next to simulation time.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._ids = itertools.count(1)
        #: Condition signalled whenever any job reaches a terminal state.
        self.changed = threading.Condition(self._lock)

    def new_job(self, spec: RunSpec, key: str, **kwargs) -> Job:
        with self._lock:
            job = Job(f"job-{next(self._ids)}", spec, key, **kwargs)
            self._jobs[job.job_id] = job
            if not spec.observed:
                # Streamed jobs are invisible to dedup (see module doc).
                self._by_key[key] = job.job_id
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def joinable_by_key(self, key: str) -> Optional[Job]:
        with self._lock:
            job_id = self._by_key.get(key)
            if job_id is None:
                return None
            job = self._jobs[job_id]
            if job.state in JOINABLE:
                return job
            del self._by_key[key]  # FAILED: next submission retries
            return None

    def finish(self, job: Job, *, state: str, result: Optional[dict] = None,
               error: Optional[str] = None,
               error_kind: Optional[str] = None) -> None:
        with self.changed:
            job.state = state
            job.result = result
            job.error = error
            job.error_kind = error_kind
            job.worker_pid = None
            self.changed.notify_all()

    def snapshot(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())
