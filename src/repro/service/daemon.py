"""The job daemon: a worker fleet behind an async job API.

One :class:`Daemon` owns

* a **worker fleet** -- long-lived processes, one pipe each, executing
  :func:`repro.harness.experiment.run_experiment_safe` (so a sick
  configuration degrades to a failure result instead of killing the
  worker) with the per-run ``SIGALRM`` timeout of
  :func:`repro.harness.parallel._invoke`;
* a **supervisor thread** -- multiplexes worker pipes and process
  sentinels through :func:`multiprocessing.connection.wait`; a worker
  death requeues its job (bounded by
  :data:`~repro.service.jobs.DEFAULT_JOB_RETRIES` attempts) and respawns
  the worker, following the self-healing discipline of
  :mod:`repro.sim.shard`;
* a **socket server** -- one thread per client connection speaking the
  newline-JSON protocol of :mod:`repro.service.protocol`;
* a :class:`~repro.service.jobs.JobTable` with the dedup rules
  documented there, backed by the shared result store
  (:func:`repro.harness.cache.open_cache`) for submit-time cache hits.

Telemetry-observed jobs stream: the worker attaches a forwarding
``on_sample`` callback (:attr:`repro.telemetry.TelemetryConfig.on_sample`)
so every metric sample travels supervisor-ward while the run is in
flight; the daemon fans samples out to any number of ``stream``
subscribers, keeping a bounded replay buffer for late joiners.

Determinism: workers compute results with the exact same code path as a
direct ``run_experiment`` call -- the daemon only schedules, so results
are bit-identical to serial execution (enforced by tests and the chaos
campaign).
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional

from repro import config as repro_config
from repro.harness.cache import open_cache
from repro.harness.parallel import _invoke
from repro.service import jobs as jobstates
from repro.service.jobs import DEFAULT_JOB_RETRIES, Job, JobTable
from repro.service.protocol import (
    PROTOCOL_VERSION,
    bind_address,
    recv_json,
    send_json,
    spec_from_json,
    spec_to_json,
)

logger = logging.getLogger("repro.service.daemon")

#: Metric samples replayed to subscribers that join mid-run.
METRIC_BUFFER = 1024

#: Environment variables propagated into worker processes: everything
#: the experiment layer resolves through :mod:`repro.config`.
_PROPAGATED = tuple(entry.env for entry in repro_config.SETTINGS.values())


def worker_env(base: Optional[dict] = None) -> Dict[str, str]:
    """The ``REPRO_*`` subset of the environment workers inherit."""
    source = os.environ if base is None else base
    return {
        name: source[name] for name in _PROPAGATED if name in source
    }


def _worker_main(conn, env: Dict[str, str], parent_pid: int,
                 run_timeout: Optional[float]) -> None:
    """Worker loop: receive ("run", ...), reply ("done"/"failed", ...).

    Runs in the child process.  The environment is patched *here* so the
    daemon's host process is never mutated.  An orphan guard exits when
    the daemon disappears, mirroring ``repro.sim.shard``'s workers.
    """
    from repro.harness.experiment import run_experiment_safe

    for name in _PROPAGATED:
        os.environ.pop(name, None)
    os.environ.update(env)
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    os._exit(2)  # orphaned: daemon died without cleanup
                continue
            message = conn.recv()
        except (EOFError, OSError):
            os._exit(2)
        if message[0] == "exit":
            return
        _, job_id, spec_json = message
        spec = spec_from_json(spec_json)
        if spec.observed:
            def _forward(cycle, values, _job=job_id):
                try:
                    conn.send(("metric", _job, cycle, dict(values)))
                except (BrokenPipeError, OSError):
                    pass  # daemon gone; the orphan guard will fire
            spec = replace(
                spec, telemetry=replace(spec.telemetry, on_sample=_forward)
            )
        try:
            result = _invoke(run_experiment_safe, spec, run_timeout)
            conn.send(("done", job_id, result.to_json()))
        except BaseException as exc:  # noqa: BLE001 - forwarded, not hidden
            try:
                conn.send(("failed", job_id, type(exc).__name__, str(exc)))
            except (BrokenPipeError, OSError):
                os._exit(2)


class _Worker:
    """Supervisor-side handle of one fleet member."""

    def __init__(self, ctx, env, run_timeout) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, env, os.getpid(), run_timeout),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.current: Optional[str] = None  # job_id in flight
        self.executed = 0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def stop(self, grace: float = 2.0) -> None:
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(grace)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(grace)
            if self.proc.is_alive():  # pragma: no cover - stuck in C code
                self.proc.kill()
                self.proc.join()
        self.conn.close()


class Daemon:
    """See module docstring.  ``serve_forever`` = ``start`` + block."""

    def __init__(self, address: str, workers: Optional[int] = None,
                 env: Optional[Dict[str, str]] = None,
                 retries: int = DEFAULT_JOB_RETRIES,
                 run_timeout: Optional[float] = None) -> None:
        self.address = address
        self.retries = retries
        self.run_timeout = run_timeout
        self.env = worker_env(env)
        # Specs are scaled once at submit time (so job keys, dedup and
        # store routing agree); workers must not scale them again.
        self.env.pop("REPRO_SCALE", None)
        configured = repro_config.resolve("service_workers", override=workers)
        self.n_workers = configured if configured else (os.cpu_count() or 1)
        self.jobs = JobTable()
        self.started_at: Optional[float] = None
        self._queue: deque = deque()
        self._lock = threading.RLock()
        self._workers: List[_Worker] = []
        self._subscribers: Dict[str, List[queue.Queue]] = {}
        self._metric_buffers: Dict[str, List[list]] = {}
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._server: Optional[socket.socket] = None
        self._respawns = 0
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._ctx = ctx
        cache_path = self.env.get("REPRO_CACHE", "")
        self._store = open_cache(cache_path) if cache_path else None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Daemon":
        self._server = bind_address(self.address)
        self._server.settimeout(0.2)
        self.started_at = time.time()
        with self._lock:
            for _ in range(self.n_workers):
                self._workers.append(
                    _Worker(self._ctx, self.env, self.run_timeout))
        for target, name in ((self._supervise, "supervisor"),
                             (self._accept, "acceptor")):
            thread = threading.Thread(
                target=target, name=f"repro-service-{name}", daemon=True)
            thread.start()
            self._threads.append(thread)
        logger.info("daemon listening on %s with %d workers (pid %d)",
                    self.address, self.n_workers, os.getpid())
        return self

    def serve_forever(self) -> None:
        self.start()
        try:
            while not self._stop.wait(0.5):
                pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()
        if self._server is not None:
            self._server.close()
            from repro.service.protocol import parse_address

            parsed = parse_address(self.address)
            if not isinstance(parsed, tuple):
                try:
                    os.unlink(parsed)
                except OSError:
                    pass
        logger.info("daemon on %s shut down (%d respawns)",
                    self.address, self._respawns)

    # -- job intake ------------------------------------------------------

    def submit_specs(self, spec_dicts: List[dict]) -> List[dict]:
        out = []
        for spec_dict in spec_dicts:
            spec = spec_from_json(spec_dict).scaled()
            key = spec.key()
            with self._lock:
                job = None
                if not spec.observed:
                    existing = self.jobs.joinable_by_key(key)
                    if existing is not None:
                        out.append(existing.to_status())
                        continue
                    entry = self._store.load(key) if self._store else None
                    if entry is not None:
                        job = self.jobs.new_job(
                            spec, key, state=jobstates.DONE, source="cache",
                            result=entry)
                if job is None:
                    job = self.jobs.new_job(spec, key)
                    self._queue.append(job.job_id)
                out.append(job.to_status())
        self._dispatch()
        return out

    def _dispatch(self) -> None:
        """Hand queued jobs to idle workers (any thread may call this)."""
        with self._lock:
            if self._stop.is_set():
                return
            idle = [w for w in self._workers
                    if w.current is None and w.proc.is_alive()]
            while self._queue and idle:
                job = self.jobs.get(self._queue.popleft())
                if job is None or job.state != jobstates.QUEUED:
                    continue
                worker = idle.pop()
                job.state = jobstates.RUNNING
                job.worker_pid = worker.pid
                worker.current = job.job_id
                try:
                    worker.conn.send(
                        ("run", job.job_id, spec_to_json(job.spec)))
                except (BrokenPipeError, OSError):
                    # Death will also surface via the sentinel; requeue
                    # here so the job never sits RUNNING on a corpse.
                    job.state = jobstates.QUEUED
                    job.worker_pid = None
                    worker.current = None
                    self._queue.appendleft(job.job_id)
                    break

    # -- supervision -----------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                conns = {w.conn: w for w in self._workers}
                sentinels = {w.proc.sentinel: w for w in self._workers}
            if not conns:
                time.sleep(0.1)
                continue
            try:
                ready = multiprocessing.connection.wait(
                    list(conns) + list(sentinels), timeout=0.2)
            except OSError:
                continue
            for item in ready:
                worker = conns.get(item)
                if worker is not None:
                    try:
                        while worker.conn.poll(0):
                            self._handle_event(worker, worker.conn.recv())
                    except (EOFError, OSError):
                        pass  # sentinel handling below picks it up
                    continue
                worker = sentinels.get(item)
                if worker is not None and not worker.proc.is_alive():
                    self._reap(worker)
            self._dispatch()

    def _handle_event(self, worker: _Worker, event: tuple) -> None:
        kind = event[0]
        if kind == "metric":
            _, job_id, cycle, values = event
            self._publish(job_id, ["metric", cycle, values])
            return
        _, job_id = event[0], event[1]
        job = self.jobs.get(job_id)
        if job is None:  # pragma: no cover - cancelled/unknown
            worker.current = None
            return
        if kind == "done":
            self.jobs.finish(job, state=jobstates.DONE, result=event[2])
            self._publish(job_id, ["end", jobstates.DONE], close=True)
        else:  # "failed": infrastructure error inside the worker
            _, _, error_kind, message = event
            self._fail_or_requeue(job, error_kind, message)
        worker.current = None
        worker.executed += 1

    def _fail_or_requeue(self, job: Job, error_kind: str,
                         message: str) -> None:
        job.attempts += 1
        if job.attempts > self.retries:
            logger.error("job %s (%s) failed permanently after %d "
                         "attempts: %s", job.job_id, job.key, job.attempts,
                         message)
            self.jobs.finish(job, state=jobstates.FAILED, error=message,
                             error_kind=error_kind)
            self._publish(job.job_id, ["end", jobstates.FAILED], close=True)
        else:
            logger.warning("job %s (%s) attempt %d failed (%s: %s); "
                           "requeueing", job.job_id, job.key, job.attempts,
                           error_kind, message)
            with self._lock:
                job.state = jobstates.QUEUED
                job.worker_pid = None
                self._queue.appendleft(job.job_id)

    def _reap(self, dead: _Worker) -> None:
        """A worker died (SIGKILL, segfault, OOM): requeue + respawn."""
        with self._lock:
            if dead not in self._workers:
                return
            self._workers.remove(dead)
            job_id = dead.current
        exitcode = dead.proc.exitcode
        try:
            dead.conn.close()
        except OSError:
            pass
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is not None:
                self._fail_or_requeue(
                    job, "WorkerDied",
                    f"worker pid {dead.pid} died (exit {exitcode}) mid-job")
        if not self._stop.is_set():
            replacement = _Worker(self._ctx, self.env, self.run_timeout)
            with self._lock:
                self._workers.append(replacement)
                self._respawns += 1
            logger.warning("respawned worker (pid %s -> %s) after exit %s",
                           dead.pid, replacement.pid, exitcode)

    # -- metric fan-out --------------------------------------------------

    def _publish(self, job_id: str, event: list, close: bool = False) -> None:
        with self._lock:
            if event[0] == "metric":
                buffer = self._metric_buffers.setdefault(job_id, [])
                if len(buffer) < METRIC_BUFFER:
                    buffer.append(event)
            subscribers = list(self._subscribers.get(job_id, ()))
            if close:
                self._subscribers.pop(job_id, None)
        for q in subscribers:
            q.put(event)

    def _subscribe(self, job_id: str) -> "queue.Queue":
        q: "queue.Queue" = queue.Queue()
        with self._lock:
            for event in self._metric_buffers.get(job_id, ()):
                q.put(event)
            job = self.jobs.get(job_id)
            if job is not None and job.state in jobstates.TERMINAL:
                q.put(["end", job.state])
            else:
                self._subscribers.setdefault(job_id, []).append(q)
        return q

    def _unsubscribe(self, job_id: str, q: "queue.Queue") -> None:
        with self._lock:
            subscribers = self._subscribers.get(job_id)
            if subscribers and q in subscribers:
                subscribers.remove(q)

    # -- socket server ---------------------------------------------------

    def _accept(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_client, args=(client,),
                name="repro-service-client", daemon=True)
            thread.start()

    def _serve_client(self, client: socket.socket) -> None:
        client.settimeout(None)
        handle = client.makefile("rwb")
        try:
            request = recv_json(handle)
            if request is None:
                return
            op = request.get("op")
            if op == "submit":
                send_json(handle, {
                    "ok": True,
                    "jobs": self.submit_specs(request.get("specs", [])),
                })
            elif op == "status":
                send_json(handle, {"ok": True,
                                   "jobs": self._statuses(request)})
            elif op == "results":
                send_json(handle, self._results(request))
            elif op == "stream":
                self._stream(handle, request.get("job"))
            elif op == "info":
                send_json(handle, self._info())
            elif op == "shutdown":
                send_json(handle, {"ok": True})
                threading.Thread(target=self.shutdown, daemon=True).start()
            else:
                send_json(handle, {"ok": False,
                                   "error": f"unknown op {op!r}"})
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        except Exception as exc:  # noqa: BLE001 - report instead of dying
            logger.exception("error serving client request")
            try:
                send_json(handle, {"ok": False, "error": str(exc)})
            except OSError:
                pass
        finally:
            try:
                handle.close()
            except OSError:
                pass
            client.close()

    def _statuses(self, request: dict) -> List[dict]:
        out = []
        for job_id in request.get("jobs", []):
            job = self.jobs.get(job_id)
            out.append(job.to_status() if job is not None
                       else {"job_id": job_id, "state": "unknown"})
        return out

    def _results(self, request: dict) -> dict:
        job_ids = request.get("jobs", [])
        deadline = None
        if request.get("timeout") is not None:
            deadline = time.monotonic() + float(request["timeout"])
        if request.get("wait", True):
            with self.jobs.changed:
                while True:
                    jobs = [self.jobs.get(j) for j in job_ids]
                    pending = [j for j in jobs if j is not None
                               and j.state not in jobstates.TERMINAL]
                    if not pending:
                        break
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return {"ok": False,
                                    "error": "timed out waiting for jobs"}
                    self.jobs.changed.wait(
                        min(remaining, 1.0) if remaining else 1.0)
                    if self._stop.is_set():
                        return {"ok": False, "error": "daemon shutting down"}
        out = []
        for job_id in job_ids:
            job = self.jobs.get(job_id)
            if job is None:
                out.append({"job_id": job_id, "state": "unknown"})
                continue
            status = job.to_status()
            status["result"] = job.result
            out.append(status)
        return {"ok": True, "jobs": out}

    def _stream(self, handle, job_id: Optional[str]) -> None:
        job = self.jobs.get(job_id) if job_id else None
        if job is None:
            send_json(handle, {"ok": False,
                               "error": f"unknown job {job_id!r}"})
            return
        send_json(handle, {"ok": True, "streaming": job_id})
        q = self._subscribe(job_id)
        try:
            while not self._stop.is_set():
                try:
                    event = q.get(timeout=0.5)
                except queue.Empty:
                    continue
                if event[0] == "end":
                    send_json(handle, {"event": "end", "state": event[1]})
                    return
                send_json(handle, {"event": "metric", "cycle": event[1],
                                   "values": event[2]})
        finally:
            self._unsubscribe(job_id, q)

    def _info(self) -> dict:
        with self._lock:
            workers = [
                {"pid": w.pid, "alive": w.proc.is_alive(),
                 "current": w.current, "executed": w.executed}
                for w in self._workers
            ]
        states: Dict[str, int] = {}
        for job in self.jobs.snapshot():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "address": self.address,
            "workers": workers,
            "jobs": states,
            "queued": len(self._queue),
            "respawns": self._respawns,
            "store": self.env.get("REPRO_CACHE", ""),
        }
