"""Wire protocol of the job daemon: newline-delimited JSON.

One request per connection for the unary ops (``submit`` / ``status`` /
``results`` / ``info`` / ``shutdown``); the ``stream`` op holds the
connection open and the server pushes one event object per line until
the job leaves the running states.

The transport is a unix-domain socket (address = filesystem path) or TCP
(address = ``host:port``) -- :func:`parse_address`,
:func:`connect_address` and :func:`bind_address` hide the difference.

:class:`~repro.harness.experiment.RunSpec` objects cross the wire as
plain dicts (:func:`spec_to_json` / :func:`spec_from_json`); the
:class:`~repro.telemetry.TelemetryConfig` rides along minus its
``on_sample`` callback, which is process-local by nature (the daemon
installs its own forwarding callback worker-side).
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict
from typing import Optional, Tuple, Union

from repro.harness.experiment import RunSpec
from repro.sim.config import Variant
from repro.telemetry import TelemetryConfig

#: Protocol revision; bumped on incompatible message-shape changes.
PROTOCOL_VERSION = 1

#: Fields of TelemetryConfig that serialise (everything but on_sample).
_TELEMETRY_FIELDS = (
    "metrics", "spans", "profile", "interval", "per_router",
    "span_limit", "out_dir", "trace_dir",
)


def spec_to_json(spec: RunSpec) -> dict:
    data = {
        "n_cores": spec.n_cores,
        "variant": spec.variant.value,
        "workload": spec.workload,
        "seed": spec.seed,
        "measure_instructions": spec.measure_instructions,
        "warmup_instructions": spec.warmup_instructions,
        "topology": spec.topology,
    }
    if spec.telemetry is not None:
        telemetry = asdict(spec.telemetry)
        data["telemetry"] = {
            name: telemetry[name] for name in _TELEMETRY_FIELDS
        }
    return data


def spec_from_json(data: dict) -> RunSpec:
    telemetry = None
    if data.get("telemetry") is not None:
        telemetry = TelemetryConfig(**{
            name: data["telemetry"][name]
            for name in _TELEMETRY_FIELDS if name in data["telemetry"]
        })
    return RunSpec(
        n_cores=int(data["n_cores"]),
        variant=Variant(data["variant"]),
        workload=data["workload"],
        seed=int(data.get("seed", 1)),
        measure_instructions=int(data["measure_instructions"]),
        warmup_instructions=int(data["warmup_instructions"]),
        telemetry=telemetry,
        topology=data.get("topology", ""),
    )


# ----------------------------------------------------------------------
# Addresses.
# ----------------------------------------------------------------------

def parse_address(address: str) -> Union[str, Tuple[str, int]]:
    """``host:port`` -> tuple for TCP; anything else is a socket path."""
    if ":" in address and not address.startswith(("/", ".")):
        host, _, port = address.rpartition(":")
        return (host or "127.0.0.1", int(port))
    return address


def bind_address(address: str) -> socket.socket:
    parsed = parse_address(address)
    if isinstance(parsed, tuple):
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(parsed)
    else:
        import os

        try:
            os.unlink(parsed)
        except OSError:
            pass
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(parsed)
    server.listen(64)
    return server


def connect_address(address: str,
                    timeout: Optional[float] = None) -> socket.socket:
    parsed = parse_address(address)
    if isinstance(parsed, tuple):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(parsed)
    return sock


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------

def send_json(handle, obj: dict) -> None:
    """Write one JSON object as a single line and flush."""
    handle.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")
    handle.flush()


def recv_json(handle) -> Optional[dict]:
    """Read one JSON line; None on a cleanly closed connection."""
    line = handle.readline()
    if not line:
        return None
    return json.loads(line.decode())
