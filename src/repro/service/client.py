"""Client of the job daemon (one request per connection, stream excepted).

Thin and stateless: every call opens a connection, sends one JSON line,
reads the reply.  :meth:`ServiceClient.stream` keeps its connection open
and yields events until the job completes.  Raises
:class:`ServiceError` when the daemon reports a failure, and
:class:`ServiceUnavailable` when the address does not answer.
"""

from __future__ import annotations

import socket
from typing import Dict, Iterator, List, Optional

from repro.harness.experiment import RunSpec
from repro.service.protocol import (
    connect_address,
    recv_json,
    send_json,
    spec_to_json,
)

CONNECT_TIMEOUT = 10.0


class ServiceError(RuntimeError):
    """The daemon answered, but with an error."""


class ServiceUnavailable(ServiceError):
    """Nothing is listening at the configured service address."""


class ServiceClient:
    def __init__(self, address: str,
                 connect_timeout: float = CONNECT_TIMEOUT) -> None:
        self.address = address
        self.connect_timeout = connect_timeout

    def _connect(self) -> socket.socket:
        try:
            return connect_address(self.address, timeout=self.connect_timeout)
        except (ConnectionRefusedError, FileNotFoundError, socket.gaierror,
                socket.timeout) as exc:
            raise ServiceUnavailable(
                f"no job daemon at {self.address!r} "
                f"(start one with: python -m repro.harness serve "
                f"--socket {self.address}): {exc}"
            ) from None

    def _request(self, payload: dict,
                 timeout: Optional[float] = None) -> dict:
        sock = self._connect()
        try:
            sock.settimeout(timeout)
            handle = sock.makefile("rwb")
            send_json(handle, payload)
            response = recv_json(handle)
            handle.close()
        finally:
            sock.close()
        if response is None:
            raise ServiceError(
                f"daemon at {self.address!r} closed the connection")
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "unknown daemon error"))
        return response

    # -- operations ------------------------------------------------------

    def submit(self, specs: List[RunSpec]) -> List[dict]:
        """Submit a batch; returns one status dict (with job_id) per spec."""
        response = self._request({
            "op": "submit",
            "specs": [spec_to_json(spec) for spec in specs],
        })
        return response["jobs"]

    def status(self, job_ids: List[str]) -> List[dict]:
        return self._request({"op": "status", "jobs": list(job_ids)})["jobs"]

    def results(self, job_ids: List[str], wait: bool = True,
                timeout: Optional[float] = None) -> List[dict]:
        """Statuses with ``result`` payloads, blocking until terminal."""
        response = self._request(
            {"op": "results", "jobs": list(job_ids), "wait": wait,
             "timeout": timeout},
            # the socket must outlive the daemon-side wait
            timeout=timeout + 10.0 if timeout else None,
        )
        return response["jobs"]

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield ``{"event": "metric", ...}`` dicts, then the final
        ``{"event": "end", "state": ...}``."""
        sock = self._connect()
        try:
            sock.settimeout(None)
            handle = sock.makefile("rwb")
            send_json(handle, {"op": "stream", "job": job_id})
            first = recv_json(handle)
            if first is None or not first.get("ok", False):
                raise ServiceError(
                    (first or {}).get("error", "stream refused"))
            while True:
                event = recv_json(handle)
                if event is None:
                    return
                yield event
                if event.get("event") == "end":
                    return
        finally:
            sock.close()

    def info(self) -> Dict[str, object]:
        return self._request({"op": "info"})

    def shutdown(self) -> None:
        self._request({"op": "shutdown"})

    def ping(self) -> bool:
        try:
            self.info()
            return True
        except (ServiceError, OSError):
            # OSError covers a daemon caught mid-shutdown: the socket may
            # still accept the connection, then reset it.
            return False
