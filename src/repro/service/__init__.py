"""Simulation-as-a-service: the job daemon and its client.

Start a daemon (CLI: ``python -m repro.harness serve``)::

    from repro.service import Daemon
    Daemon("/tmp/repro.sock", workers=4).serve_forever()

Talk to it (usually indirectly, through :mod:`repro.api` with
``REPRO_SERVICE=/tmp/repro.sock``)::

    from repro.service import ServiceClient
    client = ServiceClient("/tmp/repro.sock")
    jobs = client.submit([spec, ...])
    done = client.results([j["job_id"] for j in jobs])

Architecture notes live in ``docs/architecture.md`` §15; the pieces are

* :mod:`repro.service.daemon` -- worker fleet, supervisor, socket server;
* :mod:`repro.service.client` -- the line-protocol client;
* :mod:`repro.service.jobs` -- job states, dedup rules, the job table;
* :mod:`repro.service.protocol` -- framing, addresses, spec (de)serialisation.
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.daemon import Daemon
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    DEFAULT_JOB_RETRIES,
    Job,
    JobTable,
)

__all__ = [
    "Daemon",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "Job",
    "JobTable",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "DEFAULT_JOB_RETRIES",
]
