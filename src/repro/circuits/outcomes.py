"""Reply outcome classification (the categories of the paper's Fig. 6)."""

from __future__ import annotations

import enum
from typing import Dict

from repro.sim.stats import Stats


class ReplyOutcome(enum.Enum):
    """What happened to each reply with respect to circuit construction."""

    ON_CIRCUIT = "on_circuit"  # travelled on its own (fully usable) circuit
    FAILED = "failed"  # the circuit could not be (completely) built
    UNDONE = "undone"  # built, then torn down before use
    SCROUNGER = "scrounger"  # rode a circuit built for another reply
    NOT_ELIGIBLE = "not_eligible"  # no request could reserve it a circuit
    ELIMINATED = "eliminated"  # L1_DATA_ACK removed thanks to the circuit


OUTCOME_ORDER = [
    ReplyOutcome.ON_CIRCUIT,
    ReplyOutcome.FAILED,
    ReplyOutcome.UNDONE,
    ReplyOutcome.SCROUNGER,
    ReplyOutcome.NOT_ELIGIBLE,
    ReplyOutcome.ELIMINATED,
]


def outcome_counts(stats: Stats) -> Dict[ReplyOutcome, int]:
    """Raw per-outcome counts accumulated during a run."""
    return {
        outcome: stats.counter(f"circuit.outcome.{outcome.value}")
        for outcome in OUTCOME_ORDER
    }


def outcome_fractions(stats: Stats) -> Dict[ReplyOutcome, float]:
    """Fractions of all replies per outcome (the paper's Fig. 6 bars).

    Eliminated acknowledgements count as replies (they would have been sent
    by the baseline), exactly as in the paper's accounting.
    """
    counts = outcome_counts(stats)
    total = sum(counts.values())
    if total == 0:
        return {outcome: 0.0 for outcome in OUTCOME_ORDER}
    return {outcome: count / total for outcome, count in counts.items()}
