"""Reactive Circuits: reservation tables, walks, and per-variant policies."""

from repro.circuits.outcomes import ReplyOutcome
from repro.circuits.policy import CircuitPolicy, make_policy
from repro.circuits.table import CircuitEntry, CircuitTable, CircuitWalk, HopRecord

__all__ = [
    "CircuitEntry",
    "CircuitPolicy",
    "CircuitTable",
    "CircuitWalk",
    "HopRecord",
    "ReplyOutcome",
    "make_policy",
]
