"""Per-variant Reactive Circuits policies.

A policy object is shared by every router and network interface of a
system.  It owns all behaviour that differs between the paper's variants:

* how requests reserve circuits while traversing the network (sec. 4.1),
* the conflict rules for fragmented / complete / timed circuits (4.2, 4.7),
* how replies check and ride circuits at 2 cycles/hop (4.3),
* undo propagation through credits (4.4),
* circuit reuse by scrounger messages (4.5),
* L1_DATA_ACK elimination notification hooks (4.6), and
* the ideal upper bound (4.8).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING, Set, Tuple

from repro.circuits.table import CircuitEntry, CircuitTable, CircuitWalk, HopRecord
from repro.noc.flit import CircuitKey, Flit, Message
from repro.noc.link import Credit
from repro.noc.topology import Topology
from repro.noc.vc import VcStage
from repro.sim.config import CircuitMode, SystemConfig
from repro.sim.kernel import SimulationError
from repro.sim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.interface import NetworkInterface
    from repro.noc.router import Router


class ReplyPlan:
    """Decision taken at the origin NI when a reply is about to leave."""

    __slots__ = ("kind", "release", "outcome", "dst_vc", "is_scrounger",
                 "ride_entry")

    def __init__(
        self,
        kind: str,
        outcome: str,
        release: int = 0,
        dst_vc: int = 0,
        is_scrounger: bool = False,
        ride_entry: Optional["OriginEntry"] = None,
    ) -> None:
        assert kind in ("circuit", "packet")
        self.kind = kind
        self.outcome = outcome
        #: Earliest cycle the reply may start injecting (timed circuits wait).
        self.release = release
        #: Injection VC for circuit flits (fragmented reserved VC index).
        self.dst_vc = dst_vc
        self.is_scrounger = is_scrounger
        #: The origin entry a scrounger is riding (pinned until sent).
        self.ride_entry = ride_entry


class OriginEntry:
    """Circuit bookkeeping at the NI where the circuit starts (Fig. 3)."""

    __slots__ = ("key", "walk", "confirmed", "circuit_dest", "created_cycle",
                 "pinned", "cancel_pending")

    def __init__(self, key: CircuitKey, walk: CircuitWalk, created_cycle: int) -> None:
        self.key = key
        self.walk = walk
        self.confirmed = walk.fully_reserved
        self.circuit_dest = key[0]
        self.created_cycle = created_cycle
        #: Number of scroungers committed to this circuit but not fully sent.
        self.pinned = 0
        #: An undo was requested while scroungers were still riding.
        self.cancel_pending = False


def _notify_protocol(msg: Message, used_circuit: bool, cycle: int) -> None:
    """Tell the coherence layer whether this reply rides a complete circuit
    (drives L1_DATA_ACK elimination and directory unblocking, sec. 4.6)."""
    hook = getattr(msg.payload, "circuit_resolved", None)
    if hook is not None:
        hook(used_circuit, cycle)


class CircuitPolicy:
    """Baseline (packet-switched only) policy; base class for the others."""

    name = "baseline"

    #: Static per-class flags the fast router pipeline uses to skip the
    #: per-flit ``handle_arrival`` / ``on_tail_departure`` calls entirely
    #: when a variant leaves them as the base-class no-ops.
    handles_arrivals = False
    handles_tails = False
    #: Cheap precondition the fast pipeline hoists in front of the
    #: ``handle_arrival`` call, mirroring the hook's own first-line early
    #: return: ``"on_circuit"`` (complete/ideal) or ``"reply_keyed"``
    #: (fragmented: reply VN with a circuit key).  ``None`` = always call.
    arrival_filter = None

    def __init__(self, config: SystemConfig, mesh: Topology, stats: Stats) -> None:
        self.config = config
        self.circuit = config.circuit
        self.mesh = mesh
        self._local_base = mesh.local_base
        self.stats = stats
        self.noc = config.noc
        self._vn0_vcs = tuple(range(config.noc.vcs_per_vn[0]))
        self._vn1_vcs = tuple(range(config.noc.vcs_per_vn[1]))
        # Hot per-flit counters, batched exactly like the router's (a
        # registered Stats flusher drains them at read boundaries; zero
        # deltas are never written so counter keys match unbatched runs).
        self._c_flit_hops = 0
        self._c_entries_used = 0
        self._c_buffer_writes = 0
        self._c_conflict_waits = 0
        self._c_reservations = 0
        self._c_reservation_failed = 0
        self._c_ordinals: Dict[int, int] = {}
        stats.add_flusher(self._flush_counters)

    def _flush_counters(self) -> None:
        counters = self.stats.counters
        if self._c_flit_hops:
            counters["circuit.flit_hops"] += self._c_flit_hops
            self._c_flit_hops = 0
        if self._c_entries_used:
            counters["circuit.entries_used"] += self._c_entries_used
            self._c_entries_used = 0
        if self._c_buffer_writes:
            counters["noc.buffer_writes"] += self._c_buffer_writes
            self._c_buffer_writes = 0
        if self._c_conflict_waits:
            counters["circuit.ideal_conflict_waits"] += self._c_conflict_waits
            self._c_conflict_waits = 0
        if self._c_reservations:
            counters["circuit.reservations"] += self._c_reservations
            self._c_reservations = 0
        if self._c_reservation_failed:
            counters["circuit.reservation_failed"] += self._c_reservation_failed
            self._c_reservation_failed = 0
        if self._c_ordinals:
            for ordinal, n in self._c_ordinals.items():
                counters[f"circuit.reservation_ordinal.{ordinal}"] += n
            self._c_ordinals.clear()

    # -- static router shape -------------------------------------------
    def bufferless_vcs(self) -> Set[Tuple[int, int]]:
        """(vn, vc) pairs whose buffers this variant removes (sec. 4.2)."""
        return set()

    def allocatable_vcs(self, vn: int) -> Tuple[int, ...]:
        """VC indexes the router's VC allocator may grant for ``vn``."""
        return self._vn0_vcs if vn == 0 else self._vn1_vcs

    def injectable_vcs(self, vn: int) -> Tuple[int, ...]:
        """VC indexes a network interface may inject packets on."""
        return self.allocatable_vcs(vn)

    def attach_router(self, router: "Router") -> None:
        """Install per-router circuit state (tables) at build time."""

    # -- router-side hooks ------------------------------------------------
    def retry_waiting(self, router: "Router", cycle: int) -> None:
        """Re-attempt queued circuit flits (ideal mode's buffered waits)."""

    def handle_arrival(self, router: "Router", port: int, flit: Flit, cycle: int) -> bool:
        """Circuit-check an arriving flit; True = consumed by the circuit
        path (fly-through or circuit-VC buffering), False = normal packet."""
        return False

    def handle_undo(self, router: "Router", port: int, key: CircuitKey, cycle: int) -> None:
        """Process an undo notice from the credit channel (sec. 4.4)."""

    def on_tail_departure(self, router: "Router", in_port: int, flit: Flit, cycle: int) -> None:
        """A tail flit left via the packet pipeline (frees fragmented
        circuit entries that drained through their buffered VC)."""

    def on_request_va(self, router: "Router", in_port: int, msg: Message, cycle: int) -> None:
        """Reserve the reply's circuit, in parallel with VA (sec. 4.1)."""

    # -- NI-side hooks ------------------------------------------------------
    def on_request_injected(self, ni: "NetworkInterface", msg: Message, cycle: int) -> None:
        """Create the reservation walk a circuit-building request carries."""

    def on_request_delivered(self, ni: "NetworkInterface", msg: Message, cycle: int) -> None:
        """Store the delivered walk in the origin NI's circuit table."""

    def plan_reply(self, ni: "NetworkInterface", msg: Message, cycle: int) -> ReplyPlan:
        """Decide how a reply leaves the NI: its own circuit (possibly at
        a later timed release), a scrounged circuit, or packet-switched."""
        if msg.outcome_hint == "undone":
            return ReplyPlan("packet", "undone")
        outcome = "failed" if msg.circuit_eligible else "not_eligible"
        return ReplyPlan("packet", outcome)

    def validate_send(self, ni: "NetworkInterface", msg: Message, cycle: int) -> bool:
        """Last check at actual send time (timed windows may have moved)."""
        return True

    def cancel_origin(self, ni: "NetworkInterface", key: CircuitKey,
                      cycle: int) -> bool:
        """Returns True when a built circuit existed and was undone."""
        return False

    def on_scrounger_sent(self, ni: "NetworkInterface", plan: ReplyPlan, cycle: int) -> None:
        """A scrounger's tail left the NI (unpin its ridden circuit)."""

    def record_outcome(self, ni: "NetworkInterface", msg: Message, plan: ReplyPlan,
                       cycle: int) -> None:
        """Bump Fig. 6 outcome counters once, at actual send start."""
        if msg.outcome is not None:
            return
        if self.circuit.uses_circuits:
            msg.outcome = plan.outcome
            self.stats.bump(f"circuit.outcome.{plan.outcome}")
            self.stats.bump("circuit.replies_total")
        else:
            msg.outcome = "packet"  # baseline: no Fig. 6 classification
        _notify_protocol(
            msg,
            plan.kind == "circuit"
            and not plan.is_scrounger
            and self._guarantees_delivery(),
            cycle,
        )

    def _guarantees_delivery(self) -> bool:
        """Complete circuits never block, enabling ACK elimination."""
        return False


class _TablePolicy(CircuitPolicy):
    """Shared machinery for policies that store circuit state at routers."""

    def attach_router(self, router: "Router") -> None:
        for port in router.ports:
            router.inputs[port].circuit_table = CircuitTable(
                self.circuit.max_circuits_per_input
            )

    # -- walks -----------------------------------------------------------
    def on_request_injected(self, ni: "NetworkInterface", msg: Message, cycle: int) -> None:
        if not msg.builds_circuit or msg.circuit_key is None:
            return
        msg.walk = CircuitWalk(
            key=msg.circuit_key,
            reply_flits=msg.reply_flits,
            path_hops=self.mesh.distance(msg.src, msg.dest),
            turnaround=msg.expected_turnaround,
        )

    def on_request_delivered(self, ni: "NetworkInterface", msg: Message, cycle: int) -> None:
        if msg.walk is not None:
            ni.origin_table[msg.walk.key] = OriginEntry(msg.walk.key, msg.walk, cycle)

    # -- undo ------------------------------------------------------------
    def handle_undo(self, router: "Router", port: int, key: CircuitKey, cycle: int) -> None:
        table = router.inputs[port].circuit_table
        if table is not None and table.remove(key) is not None:
            self.stats.bump("circuit.entries_undone")
        nxt = router.route_reply(key[0])
        if nxt < self._local_base:
            router.send_undo(nxt, key, cycle)

    def cancel_origin(self, ni: "NetworkInterface", key: CircuitKey,
                      cycle: int) -> bool:
        entry = ni.origin_table.get(key)
        if entry is None:
            return False
        had_circuit = bool(entry.walk.reserved_hops)
        if entry.pinned:
            # Scroungers are still riding; undo once the last one has left.
            entry.cancel_pending = True
            return had_circuit
        del ni.origin_table[key]
        if had_circuit:
            ni.send_undo(key, cycle)
            self.stats.bump("circuit.origin_cancelled")
        return had_circuit

    def on_scrounger_sent(self, ni: "NetworkInterface", plan: ReplyPlan, cycle: int) -> None:
        entry = plan.ride_entry
        if entry is None:
            return
        entry.pinned -= 1
        if entry.cancel_pending and entry.pinned == 0:
            entry.cancel_pending = False
            self.cancel_origin(ni, entry.key, cycle)

    # -- reservation helpers ----------------------------------------------
    def _circuit_ports(self, router: "Router", in_port: int, msg: Message
                       ) -> Tuple[int, int]:
        """(circuit input, circuit output) at this router for the reply.

        Ports are bidirectional: the reply re-enters this router through the
        same port the request left by, and leaves through the port the
        request arrived on (LOCAL at the path's end routers).
        """
        return router.route_vn(0, msg.dest), in_port

    def _record_hop(self, walk: CircuitWalk, router: "Router", circ_in: int,
                    circ_out: int, reserved: bool, vc_index: Optional[int] = None,
                    window: Tuple[Optional[int], Optional[int]] = (None, None),
                    ) -> HopRecord:
        hop = HopRecord(router.node, circ_in, circ_out, reserved, vc_index,
                        window[0], window[1])
        walk.hops.append(hop)
        return hop


class CompletePolicy(_TablePolicy):
    """Complete circuits: all-or-nothing reservation, bufferless circuit VC,
    optional timed windows, ACK elimination, and circuit reuse."""

    name = "complete"
    handles_arrivals = True
    arrival_filter = "on_circuit"

    #: Reply VN VC dedicated to circuits (its buffers are removed).
    CIRCUIT_VC = 1

    def bufferless_vcs(self) -> Set[Tuple[int, int]]:
        return {(1, self.CIRCUIT_VC)}

    def allocatable_vcs(self, vn: int) -> Tuple[int, ...]:
        # Packet-switched replies are restricted to the non-circuit VC.
        return self._vn0_vcs if vn == 0 else (0,)

    def _guarantees_delivery(self) -> bool:
        return True

    # -- reservation --------------------------------------------------------
    def on_request_va(self, router: "Router", in_port: int, msg: Message, cycle: int) -> None:
        walk: Optional[CircuitWalk] = msg.walk
        if walk is None or walk.failed:
            return
        circ_in, circ_out = self._circuit_ports(router, in_port, msg)
        table = router.inputs[circ_in].circuit_table
        assert table is not None
        window = self._window_for(router, msg, walk, cycle)
        live = table.live_count(cycle)
        ok = live < table.capacity
        if ok:
            ok = self._no_conflict(router, circ_in, circ_out, window, cycle)
            if not ok and self.circuit.allow_delay and window is not None:
                window = self._try_delayed(router, circ_in, circ_out, window,
                                           walk, cycle)
                ok = window is not None
        if not ok:
            self._fail_walk(router, walk, circ_in, circ_out, cycle)
            return
        entry = CircuitEntry(
            key=walk.key,
            in_port=circ_in,
            out_port=circ_out,
            built_cycle=cycle,
            window_start=window[0] if window else None,
            window_end=window[1] if window else None,
        )
        table.insert(entry)
        self._record_hop(walk, router, circ_in, circ_out, True,
                         window=window or (None, None))
        # ``live`` was purged above and the new entry is live, so the
        # post-insert live count is exactly ``live + 1``.
        ordinal = min(live + 1, table.capacity)
        ords = self._c_ordinals
        ords[ordinal] = ords.get(ordinal, 0) + 1
        self._c_reservations += 1

    def _window_for(self, router: "Router", msg: Message, walk: CircuitWalk,
                    cycle: int) -> Optional[Tuple[int, int]]:
        """Optimistic [head arrival, tail departure] estimate (sec. 4.7).

        The estimate counts the request's remaining hops at 5 cycles/hop,
        the destination turnaround, and the reply's return at 2 cycles/hop;
        the constant accounts for ejection/injection link crossings.
        """
        if not self.circuit.timed:
            return None
        remaining = self.mesh.router_distance(router.node, msg.dest)
        estimate = (
            cycle
            + 7 * remaining
            + msg.n_flits
            + walk.turnaround
            + 6
            + walk.delay
        )
        occupancy = walk.reply_flits - 1
        if self.circuit.postponed:
            shift = self.circuit.postpone_per_hop * walk.path_hops
            return (estimate + shift, estimate + shift + occupancy)
        slack = self.circuit.slack_per_hop * walk.path_hops
        return (estimate, estimate + occupancy + max(0, slack - walk.delay))

    def _no_conflict(self, router: "Router", circ_in: int, circ_out: int,
                     window: Optional[Tuple[int, int]], cycle: int) -> bool:
        """Two circuits with different inputs may not share an output
        (simultaneously for untimed, with overlapping windows for timed)."""
        for port, unit in router._input_units:
            if port == circ_in or unit.circuit_table is None:
                continue
            for entry in unit.circuit_table.entries.values():
                if entry.out_port != circ_out or not entry.live(cycle):
                    continue
                if window is None or not entry.timed:
                    return False
                if entry.overlaps(window[0], window[1]):
                    return False
        return True

    def _try_delayed(self, router: "Router", circ_in: int, circ_out: int,
                     window: Tuple[int, int], walk: CircuitWalk, cycle: int,
                     ) -> Optional[Tuple[int, int]]:
        """SlackDelay: shift the slot later, within the remaining slack."""
        budget = self.circuit.slack_per_hop * walk.path_hops - walk.delay
        start, end = window
        for shift in range(1, budget + 1):
            cand = (start + shift, end)  # the tail slack shrinks as we shift
            if cand[1] - cand[0] < walk.reply_flits - 1:
                break
            if self._no_conflict(router, circ_in, circ_out, cand, cycle):
                walk.delay += shift
                return cand
        return None

    def _fail_walk(self, router: "Router", walk: CircuitWalk, circ_in: int,
                   circ_out: int, cycle: int) -> None:
        walk.failed = True
        self._record_hop(walk, router, circ_in, circ_out, False)
        self._c_reservation_failed += 1
        if any(h.reserved for h in walk.hops) and circ_out < self._local_base:
            router.send_undo(circ_out, walk.key, cycle)
            walk.aborted = True

    # -- reply-side ---------------------------------------------------------
    def plan_reply(self, ni: "NetworkInterface", msg: Message, cycle: int) -> ReplyPlan:
        if msg.outcome_hint == "undone":
            return self._packet_or_scrounge(ni, msg, "undone")
        if not msg.circuit_eligible or msg.circuit_key is None:
            return self._packet_or_scrounge(ni, msg, "not_eligible")
        origin = ni.origin_table.pop(msg.circuit_key, None)
        if origin is None or not origin.confirmed:
            return self._packet_or_scrounge(ni, msg, "failed")
        if self.circuit.timed:
            departure = origin.walk.feasible_departure(
                cycle, self.noc.circuit_hop_cycles, 2
            )
            if departure is None:
                self.stats.bump("circuit.window_missed")
                return self._packet_or_scrounge(ni, msg, "undone")
            msg.uses_circuit = True
            msg.walk = origin.walk
            return ReplyPlan("circuit", "on_circuit", release=departure,
                             dst_vc=self.CIRCUIT_VC)
        msg.uses_circuit = True
        msg.walk = origin.walk
        return ReplyPlan("circuit", "on_circuit", release=cycle,
                         dst_vc=self.CIRCUIT_VC)

    def validate_send(self, ni: "NetworkInterface", msg: Message, cycle: int) -> bool:
        if not self.circuit.timed or not msg.uses_circuit:
            return True
        departure = msg.walk.feasible_departure(
            cycle, self.noc.circuit_hop_cycles, 2
        )
        return departure == cycle

    def _packet_or_scrounge(self, ni: "NetworkInterface", msg: Message,
                            outcome: str) -> ReplyPlan:
        if self.circuit.reuse:
            ride = self._find_ride(ni, msg)
            if ride is not None:
                msg.final_dest = msg.dest
                msg.dest = ride.circuit_dest
                msg.ride_key = ride.key
                ride.pinned += 1
                return ReplyPlan("circuit", "scrounger", dst_vc=self.CIRCUIT_VC,
                                 is_scrounger=True, ride_entry=ride)
        return ReplyPlan("packet", outcome)

    def _find_ride(self, ni: "NetworkInterface", msg: Message) -> Optional[OriginEntry]:
        """Best live confirmed circuit bringing the reply strictly closer."""
        here = ni.node
        best: Optional[OriginEntry] = None
        best_dist = self.mesh.distance(here, msg.dest)
        for entry in ni.origin_table.values():
            if not entry.confirmed or entry.cancel_pending:
                continue
            if entry.circuit_dest == here:
                continue
            dist = self.mesh.distance(entry.circuit_dest, msg.dest)
            if dist < best_dist:
                best, best_dist = entry, dist
        return best

    # -- circuit flit traversal ----------------------------------------------
    def handle_arrival(self, router: "Router", port: int, flit: Flit, cycle: int) -> bool:
        if not flit.on_circuit:
            return False
        msg = flit.msg
        key = msg.ride_key if msg.ride_key is not None else msg.circuit_key
        table = router.inputs[port].circuit_table
        # Inlined CircuitTable.lookup (per-circuit-flit hot path).
        entry = table.entries.get(key) if table is not None else None
        if entry is not None and entry.window_end is not None \
                and entry.window_end < cycle:
            del table.entries[key]
            entry = None
        if entry is None:
            raise SimulationError(
                f"circuit flit {flit!r} found no entry at router "
                f"{router.node} port {router.mesh.port_name(port)} "
                f"(key={key})"
            )
        if not router.claim_path(port, entry.out_port):
            raise SimulationError(
                f"complete-circuit collision at router {router.node}: "
                f"{router.mesh.port_name(port)} -> "
                f"{router.mesh.port_name(entry.out_port)}"
            )
        router.forward_flit(entry.out_port, flit, cycle)
        self._c_flit_hops += 1
        if flit.is_tail and msg.ride_key is None:
            table.remove(key)
            self._c_entries_used += 1
        return True

    def handle_arrival_fast(self, router: "Router", port: int, flit: Flit,
                            cycle: int) -> bool:
        """Flattened twin of :meth:`handle_arrival` for the fast router.

        The caller already applied the ``on_circuit`` pre-filter, and the
        router helper calls (claim_path, forward_flit) are inlined per
        circuit flit; the A/B suite holds the two paths bit-identical.
        """
        msg = flit.msg
        key = msg.ride_key if msg.ride_key is not None else msg.circuit_key
        table = router.inputs[port].circuit_table
        # Inlined CircuitTable.lookup.
        entry = table.entries.get(key) if table is not None else None
        if entry is not None and entry.window_end is not None \
                and entry.window_end < cycle:
            del table.entries[key]
            entry = None
        if entry is None:
            raise SimulationError(
                f"circuit flit {flit!r} found no entry at router "
                f"{router.node} port {router.mesh.port_name(port)} "
                f"(key={key})"
            )
        out = entry.out_port
        # Inlined claim_path; fault injection patches it per instance, so
        # the bit tests only replace an *unpatched* method.
        patched = router.__dict__.get("claim_path")
        if patched is None:
            out_bit = 1 << out
            in_bit = 1 << port
            if (router._out_claimed & out_bit) or (router._in_claimed & in_bit):
                claimed = False
            else:
                router._out_claimed |= out_bit
                router._in_claimed |= in_bit
                claimed = True
        else:
            claimed = patched(port, out)
        if not claimed:
            raise SimulationError(
                f"complete-circuit collision at router {router.node}: "
                f"{router.mesh.port_name(port)} -> "
                f"{router.mesh.port_name(out)}"
            )
        # Inlined forward_flit (link send + batched counters).
        link = router.out_flit[out]
        due = cycle + 1 + link.latency
        link._queue.append((due, flit))
        watcher = link.watcher
        if watcher is not None:
            watcher.incoming += 1
            wake = watcher.kernel_wake
            if wake is not None:
                wake(due)
        router.forwarded += 1
        router._c_xbar += 1
        router._c_link += 1
        if router.tracer is not None:
            router.tracer(cycle, router, out, flit)
        self._c_flit_hops += 1
        if flit.is_tail and msg.ride_key is None:
            table.remove(key)
            self._c_entries_used += 1
        return True


class FragmentedPolicy(_TablePolicy):
    """Fragmented circuits: partial reservations with buffered circuit VCs.

    The reply VN has three VCs: VC0 for packet-switched replies and VC1/VC2
    reserved for circuits (at most two simultaneous circuits per input).
    A reply flies through routers where its circuit exists and falls back
    to the ordinary pipeline at gaps.
    """

    name = "fragmented"
    handles_arrivals = True
    handles_tails = True
    arrival_filter = "reply_keyed"

    #: Fragmented circuit VCs keep their buffers, so circuit-path flits
    #: participate in normal credit flow control (unlike complete circuits).
    circuit_credits = True

    def allocatable_vcs(self, vn: int) -> Tuple[int, ...]:
        return self._vn0_vcs if vn == 0 else (0,)

    @property
    def _circuit_vc_indexes(self) -> Tuple[int, ...]:
        return tuple(range(1, self.noc.vcs_per_vn[1]))

    # -- reservation --------------------------------------------------------
    def on_request_va(self, router: "Router", in_port: int, msg: Message, cycle: int) -> None:
        walk: Optional[CircuitWalk] = msg.walk
        if walk is None:
            return
        circ_in, circ_out = self._circuit_ports(router, in_port, msg)
        table = router.inputs[circ_in].circuit_table
        assert table is not None
        # First free circuit VC without the used-set/list comprehensions
        # (same result: lowest index in _circuit_vc_indexes not taken).
        entries = table.entries
        free_vc = None
        if len(entries) < table.capacity:
            if entries:
                used = {e.vc_index for e in entries.values()}
                for i in self._circuit_vc_indexes:
                    if i not in used:
                        free_vc = i
                        break
            else:
                idxs = self._circuit_vc_indexes
                if idxs:
                    free_vc = idxs[0]
        if free_vc is None:
            self._record_hop(walk, router, circ_in, circ_out, False)
            self._c_reservation_failed += 1
            return
        prev = walk.previous_hop()
        if prev is None:
            fwd_reserved, fwd_vc = True, None  # reply-downstream is the NI
        else:
            fwd_reserved = prev.reserved
            fwd_vc = prev.vc_index if prev.reserved else None
        entry = CircuitEntry(
            key=walk.key,
            in_port=circ_in,
            out_port=circ_out,
            built_cycle=cycle,
            vc_index=free_vc,
            fwd_reserved=fwd_reserved,
            fwd_vc=fwd_vc,
        )
        table.insert(entry)
        self._record_hop(walk, router, circ_in, circ_out, True, vc_index=free_vc)
        ordinal = min(len(table.entries), table.capacity)
        ords = self._c_ordinals
        ords[ordinal] = ords.get(ordinal, 0) + 1
        self._c_reservations += 1

    # -- reply-side ---------------------------------------------------------
    def plan_reply(self, ni: "NetworkInterface", msg: Message, cycle: int) -> ReplyPlan:
        if msg.outcome_hint == "undone":
            return ReplyPlan("packet", "undone")
        if not msg.circuit_eligible or msg.circuit_key is None:
            return ReplyPlan("packet", "not_eligible")
        origin = ni.origin_table.pop(msg.circuit_key, None)
        if origin is None or not origin.walk.hops:
            return ReplyPlan("packet", "failed")
        walk = origin.walk
        outcome = "on_circuit" if walk.fully_reserved else "failed"
        first_hop = walk.hops[-1]  # the reply enters the network at Rn
        if first_hop.reserved:
            msg.uses_circuit = True
            msg.walk = walk
            return ReplyPlan("circuit", outcome, release=cycle,
                             dst_vc=first_hop.vc_index)
        # Partially built circuits still accelerate mid-path hops even when
        # the reply must be injected packet-switched.
        msg.walk = walk
        return ReplyPlan("packet", outcome)

    # -- traversal ------------------------------------------------------------
    def handle_arrival(self, router: "Router", port: int, flit: Flit, cycle: int) -> bool:
        msg = flit.msg
        if msg.vn != 1 or msg.circuit_key is None:
            return False
        unit = router.inputs[port]
        table = unit.circuit_table
        if table is None:
            return False
        # Inlined CircuitTable.lookup (per-reply-flit hot path).
        key = msg.circuit_key
        entry = table.entries.get(key)
        if entry is None:
            return False
        if entry.window_end is not None and entry.window_end < cycle:
            del table.entries[key]
            return False
        vc = unit.vcs[1][entry.vc_index]
        if not vc.buffer and self._try_fly(router, port, entry, flit, cycle):
            if flit.is_tail:
                self._release_entry(router, port, entry, vc, cycle)
            return True
        self._buffer_on_circuit_vc(router, port, entry, vc, flit, cycle)
        return True

    def handle_arrival_fast(self, router: "Router", port: int, flit: Flit,
                            cycle: int) -> bool:
        """Flattened twin of :meth:`handle_arrival` + :meth:`_try_fly`.

        Bound by the fast router (which already applied the reply-VN /
        circuit-key pre-filter); the lookup, eligibility checks,
        claim_path, forward_flit, and return_credit bodies are inlined in
        one pass per circuit flit.  The branch conditions and their order
        mirror ``_try_fly`` exactly, so the A/B suite holds the two paths
        bit-identical.
        """
        msg = flit.msg
        unit = router.inputs[port]
        table = unit.circuit_table
        if table is None:
            return False
        key = msg.circuit_key
        entry = table.entries.get(key)
        if entry is None:
            return False
        if entry.window_end is not None and entry.window_end < cycle:
            del table.entries[key]
            return False
        vc = unit.vcs[1][entry.vc_index]
        if not vc.buffer:
            arrival_vc = flit.dst_vc
            out = entry.out_port
            out_vc = None
            token = None
            new_dst = 0
            if out >= self._local_base:
                eligible = True
            elif entry.fwd_reserved and entry.fwd_vc is not None:
                out_vc = router.outputs[out].vcs[1][entry.fwd_vc]
                eligible = out_vc.credits > 0
                new_dst = entry.fwd_vc
            else:
                # Downstream hop not reserved: the flit continues packet-
                # switched in the downstream VC0, owned like a VA would.
                out_vc = router.outputs[out].vcs[1][0]
                token = ("frag", msg.uid)
                eligible = (out_vc.allocated_to in (None, token)
                            and out_vc.credits > 0)
            if eligible:
                # Inlined claim_path (patch-aware, as in the router's ST).
                patched = router.__dict__.get("claim_path")
                if patched is None:
                    out_bit = 1 << out
                    in_bit = 1 << port
                    if (router._out_claimed & out_bit) or \
                            (router._in_claimed & in_bit):
                        eligible = False
                    else:
                        router._out_claimed |= out_bit
                        router._in_claimed |= in_bit
                else:
                    eligible = patched(port, out)
            if eligible:
                if out_vc is not None:
                    if token is not None:
                        out_vc.allocated_to = token
                    out_vc.credits -= 1
                    flit.dst_vc = new_dst
                # Inlined forward_flit.
                link = router.out_flit[out]
                due = cycle + 1 + link.latency
                link._queue.append((due, flit))
                watcher = link.watcher
                if watcher is not None:
                    watcher.incoming += 1
                    wake = watcher.kernel_wake
                    if wake is not None:
                        wake(due)
                router.forwarded += 1
                router._c_xbar += 1
                router._c_link += 1
                if router.tracer is not None:
                    router.tracer(cycle, router, out, flit)
                if token is not None and flit.is_tail:
                    out_vc.allocated_to = None
                # The flit never occupied our buffer: return its credit
                # immediately (inlined return_credit, cached-credit push).
                clink = router.out_credit[port]
                cache = clink._cache
                ckey = (1 << 8) | arrival_vc
                credit = cache.get(ckey)
                if credit is None:
                    credit = cache[ckey] = Credit(1, arrival_vc)
                due = cycle + 1 + clink.latency
                clink._queue.append((due, credit))
                watcher = clink.watcher
                if watcher is not None:
                    watcher.incoming += 1
                    wake = watcher.kernel_wake
                    if wake is not None:
                        wake(due)
                router._c_credits += 1
                self._c_flit_hops += 1
                if flit.is_tail:
                    self._release_entry(router, port, entry, vc, cycle)
                return True
        self._buffer_on_circuit_vc(router, port, entry, vc, flit, cycle)
        return True

    def _try_fly(self, router: "Router", port: int, entry: CircuitEntry,
                 flit: Flit, cycle: int) -> bool:
        arrival_vc = flit.dst_vc
        out = entry.out_port
        if out >= self._local_base:
            if not router.claim_path(port, out):
                return False
            router.forward_flit(out, flit, cycle)
        elif entry.fwd_reserved and entry.fwd_vc is not None:
            out_vc = router.output_vc(out, 1, entry.fwd_vc)
            if out_vc.credits <= 0 or not router.claim_path(port, out):
                return False
            out_vc.credits -= 1
            flit.dst_vc = entry.fwd_vc
            router.forward_flit(out, flit, cycle)
        else:
            # Downstream hop not reserved: the flit continues packet-switched
            # in the downstream VC0, which we must own like a VA would.
            out_vc = router.output_vc(out, 1, 0)
            token = ("frag", flit.msg.uid)
            if out_vc.allocated_to not in (None, token):
                return False
            if out_vc.credits <= 0 or not router.claim_path(port, out):
                return False
            out_vc.allocated_to = token
            out_vc.credits -= 1
            flit.dst_vc = 0
            router.forward_flit(out, flit, cycle)
            if flit.is_tail:
                out_vc.allocated_to = None
        # The flit never occupied our buffer: return its credit immediately.
        router.return_credit(port, 1, arrival_vc, cycle)
        self._c_flit_hops += 1
        return True

    def _buffer_on_circuit_vc(self, router: "Router", port: int,
                              entry: CircuitEntry, vc, flit: Flit, cycle: int) -> None:
        # The flit may have been targeted at vc0 by a gap hop upstream; it
        # joins the reserved circuit VC, and the credit it owes upstream
        # (recorded per flit) is returned when it leaves this router.
        vc.buffer.append((flit, cycle, flit.dst_vc))
        self._c_buffer_writes += 1
        if vc.stage is VcStage.IDLE:
            vc.route = entry.out_port
            router.vc_became_busy(port, vc)
            vc.ready_cycle = cycle + 1
            if entry.out_port >= self._local_base or (
                entry.fwd_reserved and entry.fwd_vc is not None
            ):
                vc.stage = VcStage.ACTIVE
                vc.out_vc = entry.fwd_vc if entry.fwd_vc is not None else 0
                vc.out_obj = router.output_vc(entry.out_port, 1, vc.out_vc)
            else:
                out_vc = router.output_vc(entry.out_port, 1, 0)
                token = ("frag", flit.msg.uid)
                if out_vc.allocated_to == token:
                    vc.stage = VcStage.ACTIVE
                    vc.out_vc = 0
                    vc.out_obj = out_vc
                else:
                    vc.stage = VcStage.VA

    def _release_entry(self, router: "Router", port: int, entry: CircuitEntry,
                       vc, cycle: int) -> None:
        table = router.inputs[port].circuit_table
        table.remove(entry.key)
        self._c_entries_used += 1
        if vc.stage is not VcStage.IDLE and not vc.buffer:
            vc.reset_for_next_packet(cycle)
            if vc.stage is VcStage.IDLE:
                router.vc_became_idle(port, vc)

    def on_tail_departure(self, router: "Router", in_port: int, flit: Flit,
                          cycle: int) -> None:
        key = flit.msg.circuit_key
        if key is None or flit.msg.vn != 1:
            return
        table = router.inputs[in_port].circuit_table
        if table is not None and table.remove(key) is not None:
            self._c_entries_used += 1


class IdealPolicy(CircuitPolicy):
    """Upper bound (sec. 4.8): every eligible reply rides a circuit; per-hop
    conflicts cost one buffered cycle instead of failing the circuit."""

    name = "ideal"
    handles_arrivals = True
    arrival_filter = "on_circuit"

    def _guarantees_delivery(self) -> bool:
        # The ideal network delivers every circuit reply at circuit speed,
        # so it is paired with ACK elimination as the paper's upper bound.
        return True

    def plan_reply(self, ni: "NetworkInterface", msg: Message, cycle: int) -> ReplyPlan:
        if msg.circuit_eligible:
            msg.uses_circuit = True
            return ReplyPlan("circuit", "on_circuit", release=cycle, dst_vc=1)
        outcome = "undone" if msg.outcome_hint == "undone" else "not_eligible"
        return ReplyPlan("packet", outcome)

    def handle_arrival(self, router: "Router", port: int, flit: Flit, cycle: int) -> bool:
        if not flit.on_circuit:
            return False
        unit = router.inputs[port]
        if unit.wait_queue or not self._try_forward(router, port, flit, cycle):
            unit.wait_queue.append(flit)
            router._waiting += 1
            self._c_conflict_waits += 1
        return True

    def retry_waiting(self, router: "Router", cycle: int) -> None:
        if not router._waiting:
            return
        for port, unit in router._input_units:
            while unit.wait_queue:
                if self._try_forward(router, port, unit.wait_queue[0], cycle):
                    unit.wait_queue.pop(0)
                    router._waiting -= 1
                else:
                    break

    def _try_forward(self, router: "Router", port: int, flit: Flit, cycle: int) -> bool:
        out = router.route_reply(flit.msg.dest)
        if not router.claim_path(port, out):
            return False
        router.forward_flit(out, flit, cycle)
        self._c_flit_hops += 1
        return True


def make_policy(config: SystemConfig, mesh: Topology, stats: Stats) -> CircuitPolicy:
    """Instantiate the policy implementing ``config.circuit``."""
    mode = config.circuit.mode
    if mode is CircuitMode.NONE:
        return CircuitPolicy(config, mesh, stats)
    if mode is CircuitMode.FRAGMENTED:
        return FragmentedPolicy(config, mesh, stats)
    if mode is CircuitMode.COMPLETE:
        return CompletePolicy(config, mesh, stats)
    if mode is CircuitMode.IDEAL:
        return IdealPolicy(config, mesh, stats)
    raise ValueError(f"unknown circuit mode: {mode}")
