"""Circuit reservation state: per-input-port tables and reservation walks.

A circuit is identified by ``(reply destination node, block address)`` - the
requestor identifier and cache line address the paper stores at each router
(Fig. 3).  Each router input port owns a small :class:`CircuitTable`; the
request accumulates a :class:`CircuitWalk` while reserving, which is
delivered to the destination network interface so the reply knows exactly
what was reserved (including the timed windows).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.noc.flit import CircuitKey


class CircuitEntry:
    """One reserved circuit at a router input port."""

    __slots__ = (
        "key",
        "in_port",
        "out_port",
        "window_start",
        "window_end",
        "vc_index",
        "fwd_reserved",
        "fwd_vc",
        "built_cycle",
    )

    def __init__(
        self,
        key: CircuitKey,
        in_port: int,
        out_port: int,
        built_cycle: int,
        window_start: Optional[int] = None,
        window_end: Optional[int] = None,
        vc_index: Optional[int] = None,
        fwd_reserved: bool = True,
        fwd_vc: Optional[int] = None,
    ) -> None:
        self.key = key
        self.in_port = in_port
        self.out_port = out_port
        self.built_cycle = built_cycle
        #: Timed reservations only: inclusive cycle window at this router.
        self.window_start = window_start
        self.window_end = window_end
        #: Fragmented only: which input circuit VC is reserved.
        self.vc_index = vc_index
        #: Fragmented only: is the next reply hop (downstream) also reserved,
        #: and if so into which circuit VC should flits be forwarded.
        self.fwd_reserved = fwd_reserved
        self.fwd_vc = fwd_vc

    @property
    def timed(self) -> bool:
        return self.window_start is not None

    def live(self, cycle: int) -> bool:
        """Timed entries self-expire when their end counter reaches zero."""
        return self.window_end is None or self.window_end >= cycle

    def overlaps(self, start: int, end: int) -> bool:
        assert self.timed
        return not (end < self.window_start or start > self.window_end)


class CircuitTable:
    """Circuit storage of one router input port (paper: 5 entries)."""

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Dict[CircuitKey, CircuitEntry] = {}

    def purge_expired(self, cycle: int) -> None:
        """Drop entries whose timed window has passed."""
        entries = self.entries
        if not entries:
            return
        dead = None
        for key, entry in entries.items():
            end = entry.window_end
            if end is not None and end < cycle:
                if dead is None:
                    dead = [key]
                else:
                    dead.append(key)
        if dead is not None:
            for key in dead:
                del entries[key]

    def live_count(self, cycle: int) -> int:
        """Number of still-live entries (purges expired ones first)."""
        self.purge_expired(cycle)
        return len(self.entries)

    def lookup(self, key: CircuitKey, cycle: int) -> Optional[CircuitEntry]:
        """Live entry for ``key`` (lazy expiry), or None."""
        entry = self.entries.get(key)
        if entry is not None and not entry.live(cycle):
            del self.entries[key]
            return None
        return entry

    def insert(self, entry: CircuitEntry) -> None:
        """Store a new reservation (capacity is checked by the caller)."""
        self.entries[entry.key] = entry

    def remove(self, key: CircuitKey) -> Optional[CircuitEntry]:
        """Free a reservation (tail passed, or undo arrived)."""
        return self.entries.pop(key, None)


class HopRecord:
    """Outcome of one reservation attempt along the walk."""

    __slots__ = ("node", "in_port", "out_port", "reserved", "vc_index",
                 "window_start", "window_end")

    def __init__(
        self,
        node: int,
        in_port: int,
        out_port: int,
        reserved: bool,
        vc_index: Optional[int] = None,
        window_start: Optional[int] = None,
        window_end: Optional[int] = None,
    ) -> None:
        self.node = node
        self.in_port = in_port
        self.out_port = out_port
        self.reserved = reserved
        self.vc_index = vc_index
        self.window_start = window_start
        self.window_end = window_end


class CircuitWalk:
    """Reservation state carried by a request while it travels.

    ``hops`` is appended in request order R0..Rn; the reply traverses the
    same routers in reverse (Rn first).  For timed circuits, the accumulated
    ``delay`` shifts later routers' estimates when a slot had to be moved
    (SlackDelay variants), and the windows let the origin NI solve for a
    feasible reply departure time.
    """

    __slots__ = (
        "key",
        "reply_flits",
        "path_hops",
        "turnaround",
        "hops",
        "failed",
        "delay",
        "aborted",
    )

    def __init__(
        self,
        key: CircuitKey,
        reply_flits: int,
        path_hops: int,
        turnaround: int,
    ) -> None:
        self.key = key
        self.reply_flits = reply_flits
        self.path_hops = path_hops
        self.turnaround = turnaround
        self.hops: List[HopRecord] = []
        #: Complete circuits: a reservation failed; stop reserving.
        self.failed = False
        #: SlackDelay variants: total later-shift accumulated so far.
        self.delay = 0
        #: Complete circuits: undo already initiated from the failure router.
        self.aborted = False

    @property
    def fully_reserved(self) -> bool:
        return bool(self.hops) and not self.failed and all(
            hop.reserved for hop in self.hops
        )

    @property
    def reserved_hops(self) -> List[HopRecord]:
        return [hop for hop in self.hops if hop.reserved]

    def previous_hop(self) -> Optional[HopRecord]:
        """The reply-downstream hop relative to the router being reserved."""
        return self.hops[-1] if self.hops else None

    def feasible_departure(
        self, ready: int, circuit_hop_cycles: int, ni_link_cycles: int
    ) -> Optional[int]:
        """Earliest reply departure >= ``ready`` hitting every timed window.

        The reply's head, sent at cycle ``t``, reaches hop ``i`` (request
        order) at ``t + ni_link_cycles + (n - i) * circuit_hop_cycles``; the
        tail follows ``reply_flits - 1`` cycles later and must also fit.
        Returns None when no departure time satisfies every window.
        """
        if not self.hops:
            return ready
        n = len(self.hops) - 1
        t_min = ready
        t_max: Optional[int] = None
        for i, hop in enumerate(self.hops):
            if hop.window_start is None:
                continue
            offset = ni_link_cycles + (n - i) * circuit_hop_cycles
            t_min = max(t_min, hop.window_start - offset)
            latest = hop.window_end - (self.reply_flits - 1) - offset
            t_max = latest if t_max is None else min(t_max, latest)
        if t_max is not None and t_min > t_max:
            return None
        return t_min


def circuit_key(reply_dest: int, block: int) -> CircuitKey:
    """Build the (requestor node, cache line address) circuit identity."""
    return (reply_dest, block)


def format_entry(entry: CircuitEntry) -> Tuple:  # pragma: no cover - debug
    return (entry.key, int(entry.in_port), int(entry.out_port),
            entry.window_start, entry.window_end)
