"""Clean-run validation sweeps and the seeded fault-injection campaign.

Two jobs, both driven by the CLI (``python -m repro.harness check`` /
``inject``) and by CI:

* :func:`run_clean` / :func:`run_clean_sweep` - run synthetic
  request-reply traffic under every switching variant with the
  :class:`~repro.validate.invariants.InvariantMonitor` enabled and
  assert **zero violations** (no false positives);
* :func:`run_fault` / :func:`run_campaign` - inject one seeded fault per
  :class:`~repro.validate.faults.FaultKind` and assert the **expected
  checker** catches it (no false negatives), producing a crash report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.sim.kernel import SimulationError
from repro.validate.faults import FaultInjector, FaultKind
from repro.validate.forensics import crash_report, save_crash_report
from repro.validate.invariants import InvariantMonitor, InvariantViolation

#: Variants exercised by the clean sweep: packet baseline, both circuit
#: flavours, ACK elimination, timed windows, and the ideal bound.
CHECK_VARIANTS = (
    Variant.BASELINE,
    Variant.FRAGMENTED,
    Variant.COMPLETE,
    Variant.COMPLETE_NOACK,
    Variant.SLACKDELAY1_NOACK,
    Variant.IDEAL,
)

#: Which variant each fault class runs under (the one with the state the
#: fault corrupts).
FAULT_VARIANTS: Dict[FaultKind, Variant] = {
    FaultKind.DROP_RESERVATION: Variant.COMPLETE,
    FaultKind.DUP_RESERVATION: Variant.COMPLETE,
    FaultKind.CORRUPT_WINDOW: Variant.SLACKDELAY1_NOACK,
    FaultKind.LEAK_CREDIT: Variant.BASELINE,
    FaultKind.STUCK_PORT: Variant.BASELINE,
    FaultKind.DELAY_LINK: Variant.BASELINE,
    FaultKind.DROP_FLIT: Variant.BASELINE,
}

#: The checker that must catch each fault class.
EXPECTED_CHECKER: Dict[FaultKind, str] = {
    FaultKind.DROP_RESERVATION: "circuit_lifecycle",
    FaultKind.DUP_RESERVATION: "circuit_lifecycle",
    FaultKind.CORRUPT_WINDOW: "circuit_lifecycle",
    FaultKind.LEAK_CREDIT: "credit_conservation",
    FaultKind.STUCK_PORT: "forward_progress",
    FaultKind.DELAY_LINK: "link_sanity",
    FaultKind.DROP_FLIT: "flit_conservation",
}

#: Check cadence per fault: reservation/window state is transient (an
#: origin lives roughly one turnaround), so those run near-every-cycle.
FAULT_INTERVALS: Dict[FaultKind, int] = {
    FaultKind.CORRUPT_WINDOW: 1,
    FaultKind.DROP_RESERVATION: 5,
    FaultKind.DUP_RESERVATION: 5,
}

#: Localised-stall threshold per fault (only STUCK_PORT needs a tight
#: one; everywhere else it stays loose to guarantee zero false
#: positives before injection).
FAULT_STALL_THRESHOLDS: Dict[FaultKind, int] = {
    FaultKind.STUCK_PORT: 600,
}


@dataclass
class CleanReport:
    """One monitored clean run: zero violations expected."""

    variant: str
    cycles: int
    checks_run: int
    violations: int
    requests_sent: int
    replies_received: int
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return self.violations == 0


@dataclass
class FaultOutcome:
    """One fault-injection run: detection by the right checker expected."""

    fault: str
    variant: str
    expected_checker: str
    injected: Optional[dict]
    injected_cycle: Optional[int]
    detected: bool
    checker: Optional[str]
    detect_cycle: Optional[int]
    error: Optional[str]
    report_path: Optional[str] = None
    false_positive: bool = False

    @property
    def ok(self) -> bool:
        """Detected after injection, by the checker that owns the law."""
        return (
            self.detected
            and not self.false_positive
            and self.checker == self.expected_checker
        )


def run_clean(
    variant: Variant,
    cycles: int = 5000,
    rate: float = 12.0,
    seed: int = 3,
    interval: int = 200,
    monitor: Optional[InvariantMonitor] = None,
) -> CleanReport:
    """Monitored synthetic-traffic run; raises on any violation."""
    config = SystemConfig(n_cores=16, seed=seed).with_variant(variant)
    traffic = RequestReplyTraffic(config, rate, seed=seed)
    if monitor is None:
        monitor = InvariantMonitor(traffic.net, interval=interval)
    started = time.perf_counter()
    for _ in range(cycles):
        traffic.run(1)
        monitor(traffic.cycle)
    traffic.drain()
    monitor.check_now(traffic.cycle)
    return CleanReport(
        variant=variant.value,
        cycles=traffic.cycle,
        checks_run=monitor.checks_run,
        violations=monitor.violations,
        requests_sent=traffic.requests_sent,
        replies_received=traffic.replies_received,
        wall_seconds=time.perf_counter() - started,
    )


def run_clean_sweep(
    variants: Iterable[Variant] = CHECK_VARIANTS,
    cycles: int = 5000,
    rate: float = 12.0,
    seed: int = 3,
    interval: int = 200,
) -> List[CleanReport]:
    return [
        run_clean(variant, cycles=cycles, rate=rate, seed=seed,
                  interval=interval)
        for variant in variants
    ]


def measure_overhead(
    variant: Variant = Variant.COMPLETE_NOACK,
    cycles: int = 5000,
    rate: float = 12.0,
    seed: int = 3,
    interval: int = 2000,
) -> float:
    """Checked/unchecked wall-time ratio at the production cadence."""

    def _run(check: bool) -> float:
        config = SystemConfig(n_cores=16, seed=seed).with_variant(variant)
        traffic = RequestReplyTraffic(config, rate, seed=seed)
        monitor = (
            InvariantMonitor(traffic.net, interval=interval, forensics=False)
            if check else None
        )
        started = time.perf_counter()
        for _ in range(cycles):
            traffic.run(1)
            if monitor is not None:
                monitor(traffic.cycle)
        traffic.drain()
        return time.perf_counter() - started

    unchecked = _run(False)
    checked = _run(True)
    if unchecked <= 0:
        return 1.0
    return checked / unchecked


def run_fault(
    kind: FaultKind,
    seed: int = 7,
    cycles: int = 4000,
    rate: float = 15.0,
    inject_at: int = 600,
    crash_dir: Optional[str] = None,
) -> FaultOutcome:
    """Inject one fault of ``kind`` and record how it was caught."""
    variant = FAULT_VARIANTS[kind]
    interval = FAULT_INTERVALS.get(kind, 25)
    stall = FAULT_STALL_THRESHOLDS.get(kind, 25_000)
    # Reservation faults need origins that outlive the check interval,
    # so those runs use a long request->reply turnaround.
    turnaround = 150 if kind in (
        FaultKind.DROP_RESERVATION, FaultKind.DUP_RESERVATION
    ) else 7
    config = SystemConfig(n_cores=16, seed=seed).with_variant(variant)
    traffic = RequestReplyTraffic(config, rate, turnaround=turnaround,
                                  seed=seed)
    monitor = InvariantMonitor(traffic.net, interval=interval,
                               stall_threshold=stall)
    injector = FaultInjector(traffic.net, kind, seed=seed,
                             at_cycle=inject_at)
    error: Optional[BaseException] = None
    checker: Optional[str] = None
    detect_cycle: Optional[int] = None
    try:
        for _ in range(cycles):
            traffic.run(1)
            injector.tick(traffic.cycle)
            monitor(traffic.cycle)
        monitor.check_now(traffic.cycle)
    except InvariantViolation as exc:
        error = exc
        checker = exc.check
        detect_cycle = exc.cycle
    except (SimulationError, RuntimeError) as exc:
        # A fault may crash the simulation machinery itself before a
        # check fires; that is detection, but by the wrong layer.
        error = exc
        checker = "simulation_error"
        detect_cycle = traffic.cycle

    outcome = FaultOutcome(
        fault=kind.value,
        variant=variant.value,
        expected_checker=EXPECTED_CHECKER[kind],
        injected=injector.description,
        injected_cycle=injector.applied_cycle,
        detected=error is not None,
        checker=checker,
        detect_cycle=detect_cycle,
        error=str(error) if error is not None else None,
        false_positive=error is not None and not injector.applied,
    )
    if error is not None and crash_dir:
        report = getattr(error, "report", None)
        if report is None:
            report = crash_report(traffic.net, error=error,
                                  cycle=traffic.cycle)
        report.data["fault"] = injector.description
        outcome.report_path = save_crash_report(
            report, crash_dir, f"fault-{kind.value}-seed{seed}"
        )
    return outcome


def run_campaign(
    kinds: Optional[Iterable[FaultKind]] = None,
    seed: int = 7,
    cycles: int = 4000,
    crash_dir: Optional[str] = None,
) -> List[FaultOutcome]:
    """Run one seeded fault per kind (default: all of them)."""
    return [
        run_fault(kind, seed=seed, cycles=cycles, crash_dir=crash_dir)
        for kind in (kinds if kinds is not None else list(FaultKind))
    ]


@dataclass
class TopologyReport:
    """Static self-check of one registered topology (zero problems
    expected): port/opposite symmetry, neighbor reciprocity, node/router
    embedding consistency, route-table reachability of every (src, dst)
    pair, and the request/reply same-routers invariant."""

    topology: str
    n_cores: int
    n_routers: int
    checks_run: int
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _walk_route(topo, vn: int, src: int, dst: int, request_xy: bool):
    """Follow the compiled route table; return (router path, problem)."""
    from repro.noc.routing import route_for_vn

    here = topo.router_of(src)
    last = topo.router_of(dst)
    path = [here]
    seen = {here}
    while here != last:
        port = route_for_vn(topo, vn, here, dst, request_xy)
        if port >= topo.local_base:
            return path, f"vn{vn} {src}->{dst} ejects at router {here}"
        here = topo.neighbor(here, port)
        if here in seen:
            return path, f"vn{vn} {src}->{dst} revisits router {here}"
        seen.add(here)
        path.append(here)
        if len(path) > topo.diameter + 1:
            return path, (f"vn{vn} {src}->{dst} exceeds the diameter "
                          f"bound {topo.diameter}")
    return path, None


def check_topology(name: str, n_cores: int = 16,
                   request_xy: bool = True) -> TopologyReport:
    """Statically verify one registered topology and its route tables."""
    from repro.noc.topology import make_topology

    topo = make_topology(name, n_cores)
    problems: List[str] = []
    checks = 0

    # Port symmetry and neighbor reciprocity.
    for router in range(topo.n_routers):
        for port, nbr, back in topo.neighbors(router):
            checks += 1
            if topo.opposite(back) != port:
                problems.append(
                    f"router {router}: opposite({back}) != {port}")
            if topo.neighbor(nbr, back) != router:
                problems.append(
                    f"router {router} port {port}: neighbor {nbr} does "
                    f"not link back through port {back}")

    # Node <-> router embedding consistency.
    for node in range(topo.n_nodes):
        checks += 1
        router = topo.router_of(node)
        if node not in topo.nodes_of(router):
            problems.append(f"node {node} missing from nodes_of({router})")
        local = topo.local_port(node)
        if not topo.local_base <= local < topo.max_radix:
            problems.append(f"node {node}: local port {local} outside "
                            f"[{topo.local_base}, {topo.max_radix})")

    # Route-table reachability + the paper's same-routers invariant.
    for src in range(topo.n_nodes):
        for dst in range(topo.n_nodes):
            checks += 1
            request, problem = _walk_route(topo, 0, src, dst, request_xy)
            if problem:
                problems.append(problem)
                continue
            reply, problem = _walk_route(topo, 1, dst, src, request_xy)
            if problem:
                problems.append(problem)
                continue
            if reply != list(reversed(request)):
                problems.append(
                    f"{src}->{dst}: reply path is not the reversed "
                    f"request path ({request} vs {reply})")

    return TopologyReport(
        topology=topo.name,
        n_cores=n_cores,
        n_routers=topo.n_routers,
        checks_run=checks,
        problems=problems,
    )


def run_system_check(
    variant: Variant = Variant.COMPLETE_NOACK,
    workload: str = "canneal",
    n_cores: int = 16,
    instructions: int = 300,
    interval: int = 500,
    seed: int = 1,
) -> InvariantMonitor:
    """Full-stack monitored run (cores + coherence + NoC): the coherence
    checks only make sense here.  Raises on any violation; returns the
    monitor for introspection."""
    from repro.cpu.workloads import workload_by_name
    from repro.system import build_system

    config = SystemConfig(n_cores=n_cores, seed=seed).with_variant(variant)
    system = build_system(config, workload_by_name(workload))
    monitor = InvariantMonitor(system.network, system=system,
                               interval=interval)
    monitor.attach(system.sim)
    system.warmup(max(instructions // 3, 50))
    system.run_instructions(instructions)
    system.drain()
    monitor.check_now(system.sim.cycle)
    return monitor
