"""Deterministic fault injection for the NoC + circuit machinery.

Each :class:`FaultKind` breaks exactly one conservation law, so the
campaign in :mod:`repro.validate.campaign` can prove that every checker
of :class:`~repro.validate.invariants.InvariantMonitor` detects its
fault class (and, via clean runs, that none of them false-positives).

Injection is seeded through :class:`~repro.sim.rng.DeterministicRng`
(stream ``fault/<kind>``), so a given ``(kind, seed)`` always corrupts
the same resource at the same cycle - a failing campaign run is exactly
reproducible.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Optional

from repro.circuits.table import CircuitEntry
from repro.sim.rng import DeterministicRng


class FaultKind(enum.Enum):
    DROP_RESERVATION = "drop_reservation"
    DUP_RESERVATION = "dup_reservation"
    LEAK_CREDIT = "leak_credit"
    CORRUPT_WINDOW = "corrupt_window"
    STUCK_PORT = "stuck_port"
    DELAY_LINK = "delay_link"
    DROP_FLIT = "drop_flit"


#: How far a delayed link pushes its queued flits (cycles).
LINK_DELAY = 1_000_000


class FaultInjector:
    """Applies one fault of ``kind`` to ``net`` at/after ``at_cycle``.

    Call :meth:`tick` once per cycle; the injector retries every cycle
    from ``at_cycle`` until a suitable target exists (e.g. a live
    reservation to drop), then records what it broke in ``description``
    and goes quiet.
    """

    def __init__(self, net, kind: FaultKind, seed: int = 1,
                 at_cycle: int = 200) -> None:
        self.net = net
        self.kind = kind
        self.at_cycle = at_cycle
        self.rng = DeterministicRng(seed).stream(f"fault/{kind.value}")
        self.applied = False
        self.applied_cycle: Optional[int] = None
        self.description: Optional[dict] = None

    def tick(self, cycle: int) -> bool:
        """Try to apply the fault; True the cycle it lands."""
        if self.applied or cycle < self.at_cycle:
            return False
        description = getattr(self, f"_apply_{self.kind.value}")(cycle)
        if description is None:
            return False
        description["fault"] = self.kind.value
        description["cycle"] = cycle
        self.description = description
        self.applied = True
        self.applied_cycle = cycle
        return True

    # -- helpers -------------------------------------------------------
    def _newest_reserved_hop(self):
        """(origin, hop-node, hop-port, key) of the youngest live origin
        whose reservation is still present in a router table."""
        best = None
        for ni in self.net.interfaces:
            for key, origin in ni.origin_table.items():
                walk = getattr(origin, "walk", None)
                if walk is None:
                    continue
                for hop in walk.hops:
                    if not hop.reserved:
                        continue
                    unit = self.net.routers[hop.node].inputs[hop.in_port]
                    table = unit.circuit_table
                    if table is None or key not in table.entries:
                        continue
                    candidate = (origin.created_cycle, hop.node,
                                 hop.in_port, key)
                    if best is None or candidate[0] > best[0]:
                        best = candidate
        return best

    # -- fault classes -------------------------------------------------
    def _apply_drop_reservation(self, cycle: int) -> Optional[dict]:
        best = self._newest_reserved_hop()
        if best is None:
            return None
        _created, node, port, key = best
        self.net.routers[node].inputs[port].circuit_table.remove(key)
        return {"node": node, "port": self.net.topo.port_name(port),
                "key": list(key)}

    def _apply_dup_reservation(self, cycle: int) -> Optional[dict]:
        best = self._newest_reserved_hop()
        if best is None:
            return None
        _created, node, port, key = best
        router = self.net.routers[node]
        entry = router.inputs[port].circuit_table.entries[key]
        others = [
            p for p in router.ports
            if p != port and router.inputs[p].circuit_table is not None
        ]
        if not others:
            return None
        target = others[self.rng.randrange(len(others))]
        clone = CircuitEntry(
            key=entry.key, in_port=target, out_port=entry.out_port,
            built_cycle=cycle, window_start=entry.window_start,
            window_end=entry.window_end, vc_index=entry.vc_index,
            fwd_reserved=entry.fwd_reserved, fwd_vc=entry.fwd_vc,
        )
        router.inputs[target].circuit_table.entries[key] = clone
        return {"node": node, "port": self.net.topo.port_name(port),
                "dup_port": self.net.topo.port_name(target),
                "key": list(key)}

    def _apply_leak_credit(self, cycle: int) -> Optional[dict]:
        bufferless = self.net.policy.bufferless_vcs()
        candidates = []
        for router in self.net.routers:
            for port in router.ports:
                if port >= self.net.topo.local_base \
                        or router.out_flit[port] is None:
                    continue
                for vn_row in router.outputs[port].vcs:
                    for out_vc in vn_row:
                        if (out_vc.vn, out_vc.index) in bufferless:
                            continue
                        if out_vc.credits > 0:
                            candidates.append((router, port, out_vc))
        if not candidates:
            return None
        router, port, out_vc = candidates[self.rng.randrange(len(candidates))]
        out_vc.credits -= 1
        return {"node": router.node,
                "port": self.net.topo.port_name(port),
                "vn": out_vc.vn, "vc": out_vc.index}

    def _apply_corrupt_window(self, cycle: int) -> Optional[dict]:
        candidates = []
        for router in self.net.routers:
            for port, unit in router._input_units:
                table = unit.circuit_table
                if table is None:
                    continue
                for entry in table.entries.values():
                    if entry.timed and entry.live(cycle):
                        candidates.append((router.node, port, entry))
        if not candidates:
            return None
        node, port, entry = candidates[self.rng.randrange(len(candidates))]
        # Stretch the window far into the future, then invert it: the
        # entry stays live (won't self-expire before a check) yet is
        # structurally impossible.
        entry.window_end = entry.window_end + 50_000
        entry.window_start = entry.window_end + 97
        return {"node": node, "port": self.net.topo.port_name(port),
                "key": list(entry.key),
                "window": [entry.window_start, entry.window_end]}

    def _apply_stuck_port(self, cycle: int) -> Optional[dict]:
        # A central router sees traffic from every quadrant, so a stalled
        # head flit is guaranteed under any sustained workload.
        topo = self.net.topo
        node = topo.central_router()
        router = self.net.routers[node]
        ports = [p for p in router.ports
                 if p < topo.local_base and router.out_flit[p] is not None]
        if not ports:
            return None
        stuck = ports[self.rng.randrange(len(ports))]
        original = router.claim_path

        def stuck_claim(in_port, out_port, _orig=original, _stuck=stuck):
            if out_port == _stuck:
                return False
            return _orig(in_port, out_port)

        router.claim_path = stuck_claim
        return {"node": node, "port": topo.port_name(stuck)}

    def _apply_delay_link(self, cycle: int) -> Optional[dict]:
        loaded = [(label, link) for label, link in self.net.flit_links()
                  if link._queue]
        if not loaded:
            return None
        label, link = loaded[self.rng.randrange(len(loaded))]
        link._queue = deque(
            (due + LINK_DELAY, flit) for due, flit in link._queue
        )
        return {"link": label, "delay": LINK_DELAY,
                "flits": len(link._queue)}

    def _apply_drop_flit(self, cycle: int) -> Optional[dict]:
        loaded = [(label, link) for label, link in self.net.flit_links()
                  if link._queue]
        if not loaded:
            return None
        label, link = loaded[self.rng.randrange(len(loaded))]
        entries = list(link._queue)
        index = self.rng.randrange(len(entries))
        _due, flit = entries.pop(index)
        link._queue = deque(entries)
        if link.watcher is not None:
            # keep the receiver's idle-skip bookkeeping consistent
            link.watcher.incoming -= 1
        return {"link": label, "kind": flit.msg.kind, "uid": flit.msg.uid,
                "flit_index": flit.index}
