"""Deadlock and invariant-violation forensics.

When a run dies - :class:`~repro.sim.kernel.DeadlockError` from the
progress watchdog or :class:`~repro.validate.invariants.InvariantViolation`
from the monitor - this module turns the frozen network into an
actionable crash report:

* the **wait-for graph** over blocked VCs (who is waiting on whose
  buffer credits / output-VC allocation), plus the first cycle found in
  it, which names the deadlocked resource loop directly;
* a **structured JSON report** (counters, blocked VCs with ages, NI
  queue depths, live circuit entries, optional coherence state);
* an **ASCII mesh dump** reusing :func:`repro.telemetry.utilization_heatmap`.

Reports are saved under ``out/crash/<spec>.json`` by the parallel
harness so a million-run campaign never loses a failure silently.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.noc.vc import VcStage

#: Cap on per-section list sizes so a pathological dump stays readable.
MAX_ITEMS = 64


def _vc_id(net, node: int, port: int, vn: int, vc: int) -> str:
    return f"router{node}.{net.topo.port_name(port)}.vn{vn}.vc{vc}"


def build_wait_graph(net) -> List[Dict[str, str]]:
    """Edges ``{src, dst, reason}`` between blocked VCs.

    An ACTIVE VC with no downstream credits waits on the downstream
    input VC it feeds; a VC stuck in VC allocation waits on whoever
    currently owns the output VCs it could be granted.
    """
    edges: List[Dict[str, str]] = []
    local_base = net.topo.local_base
    for router in net.routers:
        for port, unit in router._input_units:
            for vn_row in unit.vcs:
                for vc in vn_row:
                    if not vc.buffer:
                        continue
                    src = _vc_id(net, router.node, port, vc.vn, vc.index)
                    if (
                        vc.stage is VcStage.ACTIVE
                        and vc.route is not None
                        and vc.route < local_base
                        and vc.out_vc is not None
                        and not vc.granted_pending
                    ):
                        out_vc = router.outputs[vc.route].vcs[vc.vn][vc.out_vc]
                        if out_vc.credits <= 0:
                            down = net.topo.neighbor(router.node, vc.route)
                            edges.append({
                                "src": src,
                                "dst": _vc_id(net, down,
                                              net.topo.opposite(vc.route),
                                              vc.vn, vc.out_vc),
                                "reason": "no downstream buffer credits",
                            })
                    elif vc.stage is VcStage.VA and vc.route is not None:
                        for index in net.policy.allocatable_vcs(vc.vn):
                            out_vc = router.outputs[vc.route].vcs[vc.vn][index]
                            owner = out_vc.allocated_to
                            if owner is None:
                                continue
                            if (
                                isinstance(owner, tuple)
                                and len(owner) == 3
                                and isinstance(owner[0], int)
                            ):
                                dst = _vc_id(net, router.node, owner[0],
                                             owner[1], owner[2])
                            else:
                                # e.g. fragmented gap-hop ownership tokens
                                dst = f"token:{owner!r}"
                            edges.append({
                                "src": src,
                                "dst": dst,
                                "reason": (
                                    f"output "
                                    f"{net.topo.port_name(vc.route)} "
                                    f"vn{vc.vn} "
                                    f"vc{index} allocated elsewhere"
                                ),
                            })
    return edges


def find_cycle(edges: List[Dict[str, str]]) -> Optional[List[str]]:
    """First dependency cycle in the wait-for graph, as a node list."""
    adjacency: Dict[str, List[str]] = {}
    for edge in edges:
        adjacency.setdefault(edge["src"], []).append(edge["dst"])
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for root in adjacency:
        if color[root] != WHITE:
            continue
        path: List[str] = []
        stack: List = [(root, iter(adjacency[root]))]
        color[root] = GRAY
        path.append(root)
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child in adjacency and color[child] == WHITE:
                    color[child] = GRAY
                    path.append(child)
                    stack.append((child, iter(adjacency[child])))
                    advanced = True
                    break
                if color.get(child) == GRAY:
                    return path[path.index(child):] + [child]
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def blocked_vcs(net, cycle: Optional[int] = None) -> List[dict]:
    """Snapshot of every occupied input VC, oldest head first."""
    rows: List[dict] = []
    for router in net.routers:
        for port, unit in router._input_units:
            for vn_row in unit.vcs:
                for vc in vn_row:
                    if not vc.buffer:
                        continue
                    head, arrival, _credit_vc = vc.buffer[0]
                    rows.append({
                        "vc": _vc_id(net, router.node, port, vc.vn,
                                     vc.index),
                        "stage": str(vc.stage),
                        "occupancy": len(vc.buffer),
                        "route": (None if vc.route is None
                                  else net.topo.port_name(vc.route)),
                        "out_vc": vc.out_vc,
                        "head_kind": head.msg.kind,
                        "head_uid": head.msg.uid,
                        "head_age": None if cycle is None else cycle - arrival,
                    })
    rows.sort(key=lambda row: -(row["head_age"] or 0))
    return rows


class CrashReport:
    """Structured post-mortem: ``data`` (JSON-safe dict) + ASCII rendering."""

    def __init__(self, data: dict) -> None:
        self.data = data

    def to_json(self) -> dict:
        return self.data

    def ascii(self) -> str:
        data = self.data
        lines = [
            f"== crash report: {data.get('kind')} at cycle "
            f"{data.get('cycle')} ==",
            str(data.get("error")),
            "",
            data.get("mesh_dump") or "(no mesh dump)",
            "",
            f"in flight: {data.get('in_flight')}, live circuit entries: "
            f"{data.get('live_circuit_entries')}",
        ]
        wait_cycle = data.get("wait_cycle")
        if wait_cycle:
            lines.append("wait-for cycle: " + " -> ".join(wait_cycle))
        for row in (data.get("blocked_vcs") or [])[:8]:
            lines.append(
                f"  {row['vc']}: {row['head_kind']} uid={row['head_uid']} "
                f"stage={row['stage']} age={row['head_age']}"
            )
        return "\n".join(lines)


def crash_report(
    net,
    system=None,
    error=None,
    cycle: Optional[int] = None,
    spec_key: Optional[str] = None,
) -> CrashReport:
    """Build a :class:`CrashReport` from a frozen network/system."""
    from repro.telemetry import utilization_heatmap

    if cycle is None:
        cycle = getattr(error, "cycle", None)
    edges = build_wait_graph(net)
    blocked = blocked_vcs(net, cycle=cycle)
    net.stats.flush()  # drain batched hot counters before reading them
    counters = {
        key: value
        for key, value in sorted(net.stats.counters.items())
        if key.startswith(("noc.", "circuit.")) and value
    }
    data = {
        "kind": type(error).__name__ if error is not None else "snapshot",
        "error": str(error) if error is not None else None,
        "check": getattr(error, "check", None),
        "cycle": cycle,
        "spec": spec_key,
        "in_flight": net.in_flight(),
        "live_circuit_entries": net.live_circuit_entries(cycle or 0),
        "counters": counters,
        "blocked_vcs": blocked[:MAX_ITEMS],
        "blocked_vc_count": len(blocked),
        "wait_edges": edges[:MAX_ITEMS],
        "wait_edge_count": len(edges),
        "wait_cycle": find_cycle(edges),
        "ni_queues": [
            {
                "node": ni.node,
                "req": len(ni.req_queue),
                "reply_pending": len(ni.reply_pending),
                "reply": len(ni.reply_queue),
                "held": len(ni.held),
                "origins": len(ni.origin_table),
            }
            for ni in net.interfaces
            if ni.pending_work()
        ][:MAX_ITEMS],
        "mesh_dump": utilization_heatmap(net),
    }
    if system is not None:
        data["protocol"] = {
            "l1_pending": {
                tile.node: list(tile.l1.pending)
                for tile in system.tiles
                if tile.l1 is not None and tile.l1.pending is not None
            },
            "l2_txns": {
                tile.node: {
                    hex(addr): txn.kind.name
                    for addr, txn in tile.l2.txns.items()
                }
                for tile in system.tiles
                if tile.l2 is not None and tile.l2.txns
            },
        }
    return CrashReport(data)


def save_crash_report(report, directory: str, name: str) -> str:
    """Write ``report`` (CrashReport or plain dict) as JSON; return the path."""
    data = report.to_json() if hasattr(report, "to_json") else dict(report)
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{safe}.json")
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, default=str)
    return path
