"""Runtime validation: invariant monitor, deadlock forensics, fault injection.

Quick use::

    from repro.validate import InvariantMonitor
    monitor = InvariantMonitor(system.network, system=system).attach(system.sim)

    from repro.validate import run_campaign
    outcomes = run_campaign()          # every fault class must be detected

See ``docs/architecture.md`` (section "Validation & fault injection").
"""

from repro.validate.campaign import (
    CHECK_VARIANTS,
    EXPECTED_CHECKER,
    FAULT_VARIANTS,
    CleanReport,
    FaultOutcome,
    TopologyReport,
    check_topology,
    measure_overhead,
    run_campaign,
    run_clean,
    run_clean_sweep,
    run_fault,
    run_system_check,
)
from repro.validate.chaos import ChaosOutcome, run_chaos_campaign
from repro.validate.faults import FaultInjector, FaultKind
from repro.validate.forensics import (
    CrashReport,
    build_wait_graph,
    crash_report,
    find_cycle,
    save_crash_report,
)
from repro.validate.invariants import (
    ALL_CHECKS,
    InvariantMonitor,
    InvariantViolation,
    flit_census,
)

__all__ = [
    "ALL_CHECKS",
    "CHECK_VARIANTS",
    "EXPECTED_CHECKER",
    "FAULT_VARIANTS",
    "CleanReport",
    "CrashReport",
    "FaultInjector",
    "FaultKind",
    "FaultOutcome",
    "TopologyReport",
    "check_topology",
    "InvariantMonitor",
    "InvariantViolation",
    "build_wait_graph",
    "crash_report",
    "find_cycle",
    "flit_census",
    "measure_overhead",
    "ChaosOutcome",
    "run_campaign",
    "run_chaos_campaign",
    "run_clean",
    "run_clean_sweep",
    "run_fault",
    "run_system_check",
    "save_crash_report",
]
