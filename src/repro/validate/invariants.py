"""Runtime invariant monitor for the NoC + coherence stack.

The :class:`InvariantMonitor` registers as a :class:`~repro.sim.kernel.Simulator`
watchdog (or is called manually once per cycle) and every ``interval``
cycles re-derives the system's conservation laws from first principles:

``flit_conservation``
    Every flit ever injected is either delivered, relayed by a scrounger
    intermediate hop, or still somewhere in the network (VC buffers, link
    pipelines, ideal-mode wait queues, partially reassembled at an NI).

``credit_conservation``
    For every flow-controlled (vn, vc) on every link edge, the upstream
    credit counter plus in-flight flits, in-flight credits, downstream
    buffer occupancy and switch-allocated-but-not-yet-traversed grants
    must equal the buffer depth.

``link_sanity``
    No queued flit/credit is scheduled further in the future than the
    link latency allows.

``circuit_lifecycle``
    Circuit-table entries are reachable (their key is still referenced by
    an origin, an in-flight message or a pending undo), origins' reserved
    hops have matching entries, windows are well-formed, and
    guaranteed-complete circuits never share an output port.

``forward_progress``
    No input-VC head flit sits unserviced longer than ``stall_threshold``
    cycles (a localised deadlock detector - the global
    :class:`~repro.sim.kernel.ProgressWatchdog` only sees chip-wide stalls).

``kernel_sleep``
    (Only when :meth:`InvariantMonitor.attach`-ed to a Simulator.)
    The activity-driven kernel's sleep bookkeeping is sound: a sleeping
    router/NI/controller/core really has no runnable work, and any
    future-dated work (scheduled handlers, held circuit replies, queued
    undo notices) has a wakeup scheduled no later than its due cycle.

``coherence``
    (Only when constructed with a :class:`~repro.system.CmpSystem`.)
    At most one L1 holds a line in E/M, every in-flight GETS/GETX has a
    matching live L1 MSHR, and L2 directory transaction/line/queue state
    is mutually consistent.

All checks are read-only: a monitored run makes exactly the same
architectural decisions as an unmonitored one, so cached
:class:`~repro.harness.experiment.RunResult` values stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.kernel import SimulationError

#: Check families in evaluation order.  Order matters for fault
#: attribution: the cheapest, most local law that a fault breaks should
#: fire before its knock-on effects trip a broader one.
#: ``kernel_sleep`` audits the simulation kernel itself (a sleeping
#: component must truly have no runnable work) and runs first: if the
#: activity tracking is wrong, every higher-level law is suspect.
ALL_CHECKS = (
    "kernel_sleep",
    "link_sanity",
    "flit_conservation",
    "credit_conservation",
    "circuit_lifecycle",
    "coherence",
    "forward_progress",
)


class InvariantViolation(SimulationError):
    """A conservation law failed.

    ``check`` names the family (one of :data:`ALL_CHECKS`), ``location``
    pinpoints the router/port/VC/line, ``details`` carries the raw
    numbers, and ``report`` (filled in when forensics are enabled) is the
    structured crash report.
    """

    def __init__(
        self,
        check: str,
        message: str,
        cycle: Optional[int] = None,
        location: Optional[str] = None,
        details: Optional[dict] = None,
    ) -> None:
        where = f" at {location}" if location else ""
        super().__init__(f"[{check}]{where} (cycle {cycle}): {message}")
        self.check = check
        self.cycle = cycle
        self.location = location
        self.details = details or {}
        self.report = None


# ----------------------------------------------------------------------
# Census helpers (module level so forensics can reuse them).
# ----------------------------------------------------------------------

def flit_census(net) -> int:
    """Exact count of flits currently inside the network.

    Unlike :meth:`Network.in_flight` (a drain detector that may count a
    switch-allocated flit twice), this counts every flit exactly once:
    input-VC buffers + ideal-mode wait queues + link pipelines + flits of
    partially reassembled messages at the NIs.
    """
    total = 0
    for router in net.routers:
        total += router.buffered_flits()
        for _port, unit in router._input_units:
            total += len(unit.wait_queue)
    for _label, link in net.flit_links():
        total += len(link._queue)
    for ni in net.interfaces:
        total += ni.rx_partial_flits()
    return total


def iter_network_messages(net) -> Iterable:
    """Yield every message currently represented inside the NoC layer."""
    seen = set()

    def _once(msg):
        if msg is not None and id(msg) not in seen:
            seen.add(id(msg))
            yield msg

    for _label, link in net.flit_links():
        for _due, flit in link._queue:
            for msg in _once(flit.msg):
                yield msg
    for router in net.routers:
        for _port, unit in router._input_units:
            for vn_row in unit.vcs:
                for vc in vn_row:
                    for flit, _arrival, _credit_vc in vc.buffer:
                        for msg in _once(flit.msg):
                            yield msg
            for waiting in unit.wait_queue:
                flit = waiting[0] if isinstance(waiting, tuple) else waiting
                msg = getattr(flit, "msg", None)
                for m in _once(msg):
                    yield m
    for ni in net.interfaces:
        for queue in (ni.req_queue, ni.reply_pending, ni.reply_queue):
            for msg in queue:
                for m in _once(msg):
                    yield m
        for _release, _seq, msg in ni.held:
            for m in _once(msg):
                yield m
        if ni.active_circuit is not None:
            for m in _once(ni.active_circuit.msg):
                yield m
        for act in ni.active_packet.values():
            if act is not None:
                for m in _once(act.msg):
                    yield m


def accounted_circuit_keys(net) -> Set:
    """Keys a circuit-table entry may legitimately be waiting on."""
    keys = set()
    for msg in iter_network_messages(net):
        if getattr(msg, "circuit_key", None) is not None:
            keys.add(msg.circuit_key)
        if getattr(msg, "ride_key", None) is not None:
            keys.add(msg.ride_key)
    for ni in net.interfaces:
        keys.update(ni.origin_table.keys())
        for _due, key in ni._undo_out:
            keys.add(key)
    for _label, link in net.credit_links():
        for _due, credit in link._queue:
            if credit.undo_key is not None:
                keys.add(credit.undo_key)
    return keys


class InvariantMonitor:
    """Watchdog-compatible invariant checker (see module docstring).

    Parameters
    ----------
    net:
        The :class:`~repro.noc.network.Network` to audit.
    system:
        Optional :class:`~repro.system.CmpSystem`; enables the coherence
        checks.
    interval:
        Check every ``interval`` cycles (the monitor is a no-op on other
        cycles, so it can be called unconditionally).
    checks:
        Subset of :data:`ALL_CHECKS` to run (default: all applicable).
    stall_threshold:
        Head-of-line age, in cycles, past which ``forward_progress``
        declares a blocked VC dead.
    forensics:
        Attach a structured crash report to raised violations.
    local_nodes:
        When auditing one shard of a sharded run (``repro.sim.shard``),
        the set of nodes this process actually simulates.  Checks that
        cross-reference state living in another process (credit books on
        boundary edges, orphaned circuit entries, exclusive ownership
        against stale foreign cache replicas) restrict themselves to the
        local slice; conservation laws account for flits imported from /
        exported to other shards via ``net.shard_flits_imported`` /
        ``net.shard_flits_exported``.
    """

    def __init__(
        self,
        net,
        system=None,
        interval: int = 1000,
        checks: Optional[Iterable[str]] = None,
        stall_threshold: int = 25_000,
        forensics: bool = True,
        local_nodes: Optional[Iterable[int]] = None,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.net = net
        self.system = system
        self.local = frozenset(local_nodes) if local_nodes is not None \
            else None
        #: Routers owned by this shard (node set mapped through the
        #: topology's node->router embedding); None = all.
        self.local_routers = None if self.local is None else frozenset(
            net.topo.router_of(n) for n in self.local)
        self.interval = interval
        self.stall_threshold = stall_threshold
        self.forensics = forensics
        self.checks = tuple(checks) if checks is not None else ALL_CHECKS
        unknown = set(self.checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(f"unknown invariant checks: {sorted(unknown)}")
        self.checks_run = 0
        self.violations = 0
        #: Simulator this monitor is attached to (enables kernel_sleep).
        self.sim = None
        policy = net.policy
        self._policy_name = getattr(policy, "name", "baseline")
        self._circuit_credits = bool(getattr(policy, "circuit_credits", False))
        self._bufferless = set(policy.bufferless_vcs())

    # -- wiring --------------------------------------------------------
    def attach(self, sim) -> "InvariantMonitor":
        """Register with a :class:`Simulator` as a per-cycle watchdog."""
        self.sim = sim
        sim.add_watchdog(self)
        return self

    def __call__(self, cycle: int) -> None:
        if cycle % self.interval:
            return
        self.check_now(cycle)

    def next_due(self, cycle: int) -> int:
        """Next cycle a check fires (bounds kernel clock fast-forwarding)."""
        remainder = cycle % self.interval
        return cycle if remainder == 0 else cycle + self.interval - remainder

    def check_now(self, cycle: int) -> None:
        """Run every enabled check immediately (raises on violation)."""
        self.checks_run += 1
        for check in self.checks:
            if check == "coherence" and self.system is None:
                continue
            if check == "kernel_sleep" and self.sim is None:
                continue
            getattr(self, f"check_{check}")(cycle)

    # -- violation plumbing --------------------------------------------
    def _fail(
        self,
        check: str,
        cycle: int,
        location: Optional[str],
        message: str,
        details: Optional[dict] = None,
    ) -> InvariantViolation:
        self.violations += 1
        violation = InvariantViolation(
            check, message, cycle=cycle, location=location, details=details
        )
        if self.forensics:
            from repro.validate.forensics import crash_report

            violation.report = crash_report(
                self.net, system=self.system, error=violation, cycle=cycle
            )
        return violation

    # -- check: link sanity --------------------------------------------
    def check_link_sanity(self, cycle: int) -> None:
        for label, link in self.net.flit_links():
            horizon = cycle + link.latency + 1
            for due, flit in link._queue:
                if due > horizon:
                    raise self._fail(
                        "link_sanity", cycle, label,
                        f"flit {flit!r} due at cycle {due}, beyond the "
                        f"link's horizon {horizon}",
                        {"due": due, "horizon": horizon},
                    )
        for label, link in self.net.credit_links():
            horizon = cycle + link.latency + 1
            for due, _credit in link._queue:
                if due > horizon:
                    raise self._fail(
                        "link_sanity", cycle, label,
                        f"credit due at cycle {due}, beyond the link's "
                        f"horizon {horizon}",
                        {"due": due, "horizon": horizon},
                    )

    # -- check: flit conservation --------------------------------------
    def check_flit_conservation(self, cycle: int) -> None:
        stats = self.net.stats
        injected = stats.counter("noc.flits_injected")
        delivered = stats.counter("noc.flits_delivered")
        relayed = stats.counter("noc.flits_relayed")
        census = flit_census(self.net)
        # Sharded runs: flits crossing the shard boundary leave/enter this
        # process at window barriers; the driver maintains the transfer
        # counters (zero / absent on single-process nets).
        imported = getattr(self.net, "shard_flits_imported", 0)
        exported = getattr(self.net, "shard_flits_exported", 0)
        if injected + imported != delivered + relayed + exported + census:
            raise self._fail(
                "flit_conservation", cycle, None,
                f"injected {injected} + imported {imported} flits but "
                f"delivered {delivered} + relayed {relayed} + "
                f"exported {exported} + in-network {census} = "
                f"{delivered + relayed + exported + census}",
                {
                    "injected": injected,
                    "imported": imported,
                    "delivered": delivered,
                    "relayed": relayed,
                    "exported": exported,
                    "in_network": census,
                },
            )

    # -- check: credit conservation ------------------------------------
    def check_credit_conservation(self, cycle: int) -> None:
        net = self.net
        local = self.local
        local_routers = self.local_routers
        topo = net.topo
        local_base = topo.local_base
        for router in net.routers:
            if local_routers is not None and router.node not in local_routers:
                continue  # books span processes; audited by the owner shard
            granted: Dict[Tuple[int, int, int], int] = {}
            for _st_cycle, _in_port, vc in router._st_pending:
                if vc.route is None or vc.route >= local_base:
                    continue
                if vc.out_vc is None:
                    continue
                key = (vc.route, vc.vn, vc.out_vc)
                granted[key] = granted.get(key, 0) + 1
            for port in router.ports:
                if port >= local_base:
                    continue
                down = router.out_flit[port]
                up = router.in_credit[port]
                if down is None or up is None:
                    continue
                neighbor_router = topo.neighbor(router.node, port)
                if local_routers is not None \
                        and neighbor_router not in local_routers:
                    # Boundary edge: upstream credits live here, downstream
                    # occupancy in another process - neither side can sum
                    # the books alone.
                    continue
                neighbor = net.routers[neighbor_router]
                in_unit = neighbor.inputs[topo.opposite(port)]
                out_unit = router.outputs[port]
                edge_granted = {
                    (vn, vc): count
                    for (p, vn, vc), count in granted.items()
                    if p == port
                }
                self._check_edge(
                    cycle,
                    f"router {router.node} {topo.port_name(port)} -> "
                    f"router {neighbor.node}",
                    lambda vn, vc, _u=out_unit: _u.vcs[vn][vc].credits,
                    down, up, in_unit, edge_granted,
                )
        for ni in net.interfaces:
            if local is not None and ni.node not in local:
                continue
            if ni.to_router is None or ni.credit_in is None:
                continue
            rid = topo.router_of(ni.node)
            lport = topo.local_port(ni.node)
            in_unit = net.routers[rid].inputs[lport]
            self._check_edge(
                cycle,
                f"ni {ni.node} -> router {rid} {topo.port_name(lport)}",
                lambda vn, vc, _ni=ni: _ni.credits[vn][vc],
                ni.to_router, ni.credit_in, in_unit, {},
            )

    def _check_edge(
        self, cycle, label, upstream_credits, down, up, in_unit, granted
    ) -> None:
        link_counts: Dict[Tuple[int, int], int] = {}
        for _due, flit in down._queue:
            if flit.on_circuit and not self._circuit_credits:
                continue  # complete/ideal circuit flits bypass flow control
            key = (flit.msg.vn, flit.dst_vc)
            link_counts[key] = link_counts.get(key, 0) + 1
        credit_counts: Dict[Tuple[int, int], int] = {}
        for _due, credit in up._queue:
            if credit.is_buffer_credit:
                key = (credit.vn, credit.vc)
                credit_counts[key] = credit_counts.get(key, 0) + 1
        occupancy: Dict[Tuple[int, int], int] = {}
        for vn_row in in_unit.vcs:
            for vc in vn_row:
                for _flit, _arrival, credit_vc in vc.buffer:
                    key = (vc.vn, credit_vc)
                    occupancy[key] = occupancy.get(key, 0) + 1
        for vn, vn_row in enumerate(in_unit.vcs):
            for index, in_vc in enumerate(vn_row):
                if in_vc.depth == 0 or (vn, index) in self._bufferless:
                    continue
                key = (vn, index)
                parts = {
                    "upstream_credits": upstream_credits(vn, index),
                    "flits_on_link": link_counts.get(key, 0),
                    "credits_on_link": credit_counts.get(key, 0),
                    "buffered_downstream": occupancy.get(key, 0),
                    "granted_awaiting_st": granted.get(key, 0),
                }
                total = sum(parts.values())
                if total != in_vc.depth:
                    raise self._fail(
                        "credit_conservation", cycle,
                        f"{label} vn{vn} vc{index}",
                        f"credit books sum to {total}, expected the buffer "
                        f"depth {in_vc.depth}: {parts}",
                        dict(parts, depth=in_vc.depth),
                    )

    # -- check: circuit lifecycle --------------------------------------
    def check_circuit_lifecycle(self, cycle: int) -> None:
        if self._policy_name not in ("complete", "fragmented"):
            return
        net = self.net
        accounted = accounted_circuit_keys(net)
        complete = self._policy_name == "complete"
        # Map each origin to the (node, in_port) positions it reserved.
        origin_hops: Dict[object, Dict[Tuple[int, int], object]] = {}
        for ni in net.interfaces:
            for key, origin in ni.origin_table.items():
                walk = getattr(origin, "walk", None)
                if walk is None:
                    continue
                if complete and not walk.fully_reserved:
                    # A failed complete walk tears its hops down via undo;
                    # entries may legitimately be mid-removal.
                    continue
                hops = {
                    (hop.node, hop.in_port): hop
                    for hop in walk.hops
                    if hop.reserved
                }
                origin_hops[key] = hops
                for (node, in_port), hop in hops.items():
                    if self.local_routers is not None \
                            and node not in self.local_routers:
                        continue  # hop reserved at a router in another shard
                    if hop.window_end is not None and hop.window_end < cycle:
                        continue  # expired windows self-clean lazily
                    table = net.routers[node].inputs[in_port].circuit_table
                    entry = None if table is None else table.entries.get(key)
                    if entry is None:
                        raise self._fail(
                            "circuit_lifecycle", cycle,
                            f"router {node} "
                            f"{net.topo.port_name(in_port)}",
                            f"origin at node {ni.node} holds a reserved hop "
                            f"for key {key} but the router has no matching "
                            f"entry (dangling reservation)",
                            {"key": list(key), "kind": "dangling"},
                        )
                    if (entry.window_start, entry.window_end) != (
                        hop.window_start, hop.window_end
                    ):
                        raise self._fail(
                            "circuit_lifecycle", cycle,
                            f"router {node} "
                            f"{net.topo.port_name(in_port)}",
                            f"entry window "
                            f"[{entry.window_start}, {entry.window_end}] "
                            f"disagrees with the origin walk's "
                            f"[{hop.window_start}, {hop.window_end}] "
                            f"for key {key}",
                            {"key": list(key), "kind": "window_mismatch"},
                        )
        for router in net.routers:
            sharing: List[Tuple[int, object]] = []
            for port, unit in router._input_units:
                table = unit.circuit_table
                if table is None:
                    continue
                if len(table.entries) > table.capacity:
                    raise self._fail(
                        "circuit_lifecycle", cycle,
                        f"router {router.node} {net.topo.port_name(port)}",
                        f"{len(table.entries)} entries exceed the table "
                        f"capacity {table.capacity}",
                        {"kind": "capacity"},
                    )
                for key, entry in table.entries.items():
                    if entry.timed:
                        if entry.window_start > entry.window_end:
                            raise self._fail(
                                "circuit_lifecycle", cycle,
                                f"router {router.node} {net.topo.port_name(port)}",
                                f"entry for key {key} has an inverted "
                                f"window [{entry.window_start}, "
                                f"{entry.window_end}]",
                                {"key": list(key), "kind": "window_inverted"},
                            )
                        if complete and entry.live(cycle):
                            sharing.append((port, entry))
                        continue
                    # Orphan detection needs a global view: a local entry
                    # may be referenced by an origin or in-flight message
                    # in another shard, so sharded audits skip it.
                    if self.local is None and key not in accounted:
                        raise self._fail(
                            "circuit_lifecycle", cycle,
                            f"router {router.node} {net.topo.port_name(port)}",
                            f"entry for key {key} is orphaned: no origin, "
                            f"in-flight message or pending undo references "
                            f"it",
                            {"key": list(key), "kind": "orphan"},
                        )
                    hops = origin_hops.get(key)
                    if hops is not None and (router.node, port) not in hops:
                        raise self._fail(
                            "circuit_lifecycle", cycle,
                            f"router {router.node} {net.topo.port_name(port)}",
                            f"entry for key {key} sits at a position its "
                            f"origin walk never reserved",
                            {"key": list(key), "kind": "misplaced"},
                        )
                    if complete:
                        sharing.append((port, entry))
            # Guaranteed-complete circuits must own their output port:
            # mirror of CompletePolicy._no_conflict.
            for i, (port_a, entry_a) in enumerate(sharing):
                for port_b, entry_b in sharing[i + 1:]:
                    if port_a == port_b:
                        continue
                    if entry_a.out_port != entry_b.out_port:
                        continue
                    if entry_a.timed and entry_b.timed:
                        if not entry_a.overlaps(
                            entry_b.window_start, entry_b.window_end
                        ):
                            continue
                        kind = "window_overlap"
                    else:
                        kind = "output_conflict"
                    raise self._fail(
                        "circuit_lifecycle", cycle,
                        f"router {router.node}",
                        f"complete circuits {entry_a.key} "
                        f"({net.topo.port_name(port_a)}) and {entry_b.key} "
                        f"({net.topo.port_name(port_b)}) share output "
                        f"{net.topo.port_name(entry_a.out_port)} ({kind})",
                        {
                            "kind": kind,
                            "keys": [list(entry_a.key), list(entry_b.key)],
                        },
                    )

    # -- check: coherence ----------------------------------------------
    def check_coherence(self, cycle: int) -> None:
        system = self.system
        if system is None:
            return
        from repro.coherence.l1 import L1State
        from repro.coherence.messages import Kind

        exclusive = (L1State.EXCLUSIVE, L1State.MODIFIED)
        local = self.local
        owners: Dict[int, int] = {}
        for tile in system.tiles:
            # Foreign tiles in a shard replica hold stale prewarm state
            # (ownership transfers happen in their own process).
            if local is not None and tile.node not in local:
                continue
            for addr, line in tile.l1.array.items():
                if line.state in exclusive:
                    other = owners.get(addr)
                    if other is not None:
                        raise self._fail(
                            "coherence", cycle, f"addr {addr:#x}",
                            f"L1s at nodes {other} and {tile.node} both "
                            f"hold the line in an exclusive state",
                            {"addr": addr, "nodes": [other, tile.node]},
                        )
                    owners[addr] = tile.node
        for msg in iter_network_messages(self.net):
            if msg.kind not in (Kind.GETS, Kind.GETX):
                continue
            requestor = msg.payload.requestor
            if local is not None and requestor not in local:
                continue  # the requestor's MSHR lives in another shard
            l1 = system.tiles[requestor].l1
            pending = l1.pending
            if pending is None or pending[0] != msg.payload.addr:
                raise self._fail(
                    "coherence", cycle, f"node {requestor}",
                    f"in-flight {msg.kind} for addr {msg.payload.addr:#x} "
                    f"has no matching live MSHR (pending={pending})",
                    {"addr": msg.payload.addr, "kind": msg.kind},
                )
        for tile in system.tiles:
            if local is not None and tile.node not in local:
                continue
            l2 = tile.l2
            if l2 is None:
                continue
            for addr, txn in l2.txns.items():
                if txn.kind.name == "EVICT":
                    continue  # eviction transactions track a removed line
                line = l2.array.peek(addr)
                if line is None or not line.busy:
                    raise self._fail(
                        "coherence", cycle,
                        f"L2 bank {tile.node} addr {addr:#x}",
                        f"directory transaction {txn.kind.name} has no "
                        f"busy line backing it",
                        {"addr": addr, "txn": txn.kind.name},
                    )
            for addr, line in l2.array.items():
                if line.busy and addr not in l2.txns:
                    raise self._fail(
                        "coherence", cycle,
                        f"L2 bank {tile.node} addr {addr:#x}",
                        f"line is busy but no transaction is tracking it",
                        {"addr": addr},
                    )

    # -- check: kernel sleep bookkeeping -------------------------------
    def check_kernel_sleep(self, cycle: int) -> None:
        """A sleeping component must truly have no runnable work.

        Re-derives each component class's idleness from its raw state
        (buffers, queues, event heaps) rather than trusting its
        ``next_wake`` - the very method under audit.  Future-dated work
        is legal while asleep only if a wakeup is scheduled at or before
        its due cycle.
        """
        if self.sim is None:
            return
        from repro.coherence.base import ScheduledController
        from repro.cpu.core import Core
        from repro.noc.interface import NetworkInterface
        from repro.noc.router import Router
        from repro.noc.vc import VcStage

        def fail(label, message, details=None):
            raise self._fail("kernel_sleep", cycle, label, message, details)

        def check_arrivals(label, incoming, links, wake_at):
            """In-flight traffic toward a sleeper needs a timely wakeup."""
            if not incoming:
                return
            earliest = None
            for link in links:
                if link is not None and link._queue:
                    due = link._queue[0][0]
                    if earliest is None or due < earliest:
                        earliest = due
            if earliest is None:
                fail(
                    label,
                    f"sleeper counts {incoming} incoming but no in-link "
                    f"holds anything (watcher accounting corrupt)",
                    {"incoming": incoming},
                )
            if wake_at is None or wake_at > earliest:
                fail(
                    label,
                    f"sleeper has traffic arriving at cycle {earliest} "
                    f"but its wakeup is scheduled at {wake_at}",
                    {"earliest": earliest, "wake_at": wake_at},
                )

        for component, wake_at in self.sim.sleeping_slots():
            if isinstance(component, Router):
                label = f"router {component.node}"
                waiting = sum(
                    len(unit.wait_queue)
                    for _port, unit in component._input_units
                )
                if component._st_pending or waiting:
                    fail(
                        label,
                        f"sleeping router holds runnable work: "
                        f"{len(component._st_pending)} granted traversals, "
                        f"{waiting} waiting",
                        {
                            "st_pending": len(component._st_pending),
                            "waiting": waiting,
                        },
                    )
                # Buffered packets are legal while asleep only if every
                # busy VC is genuinely blocked: an ACTIVE VC with a ready
                # head and downstream credit, or a VA VC with a free
                # output VC, could have acted next cycle.
                for port, unit in component._input_units:
                    for vn_row in unit.vcs:
                        for vc in vn_row:
                            if vc.stage is VcStage.IDLE:
                                continue
                            where = (
                                f"{self.net.topo.port_name(port)} "
                                f"vn{vc.vn} vc{vc.index} "
                                f"(stage {vc.stage.value})"
                            )
                            if vc.ready_cycle > cycle + 1:
                                if wake_at is None \
                                        or wake_at > vc.ready_cycle:
                                    fail(
                                        label,
                                        f"VC {where} is scheduled for "
                                        f"cycle {vc.ready_cycle} but the "
                                        f"wakeup is at {wake_at}",
                                        {"ready": vc.ready_cycle,
                                         "wake_at": wake_at},
                                    )
                                continue
                            if vc.stage is VcStage.ACTIVE:
                                if vc.granted_pending:
                                    fail(
                                        label,
                                        f"VC {where} has a grant pending "
                                        f"but no queued traversal",
                                    )
                                if vc.buffer \
                                        and component._downstream_credit(vc):
                                    fail(
                                        label,
                                        f"sleeping router could traverse "
                                        f"VC {where} next cycle",
                                    )
                            elif vc.stage is VcStage.VA:
                                out_vcs = (
                                    component.outputs[vc.route].vcs[vc.vn]
                                )
                                for index in (
                                    component.policy.allocatable_vcs(vc.vn)
                                ):
                                    if out_vcs[index].is_free:
                                        fail(
                                            label,
                                            f"sleeping router could "
                                            f"allocate VC {where} next "
                                            f"cycle",
                                        )
                check_arrivals(
                    label, component.incoming,
                    [l for l in component.in_flit if l is not None]
                    + [l for l in component.in_credit if l is not None],
                    wake_at,
                )
            elif isinstance(component, NetworkInterface):
                label = f"ni {component.node}"
                queued = (
                    len(component.req_queue)
                    + len(component.reply_pending)
                    + len(component.reply_queue)
                )
                active = sum(
                    1 for act in component.active_packet.values()
                    if act is not None
                )
                if component.active_circuit is not None:
                    active += 1
                # A message enqueued *this* cycle while the NI slept (the
                # protocol/driver pokes ``kernel_wake(cycle + 1)``) is
                # injectable only from next cycle; the NI legitimately
                # stays asleep until the scheduled wakeup delivers it.
                resumed = wake_at is not None and wake_at <= cycle + 1
                if (queued and not resumed) or active:
                    fail(
                        label,
                        f"sleeping NI holds runnable work: {queued} "
                        f"queued, {active} active sends",
                        {"queued": queued, "active": active,
                         "wake_at": wake_at},
                    )
                check_arrivals(
                    label, component.incoming,
                    [component.from_router, component.credit_in],
                    wake_at,
                )
                for kind, due in (
                    ("held reply", component.held[0][0]
                     if component.held else None),
                    ("undo notice", min(e[0] for e in component._undo_out)
                     if component._undo_out else None),
                ):
                    if due is None:
                        continue
                    if wake_at is None or wake_at > max(due, cycle + 1):
                        fail(
                            label,
                            f"sleeping NI has a {kind} due at cycle {due} "
                            f"but its wakeup is scheduled at {wake_at}",
                            {"due": due, "wake_at": wake_at},
                        )
            elif isinstance(component, ScheduledController):
                label = f"{type(component).__name__} {component.node}"
                if component._events:
                    due = component._events[0][0]
                    if wake_at is None or wake_at > due:
                        fail(
                            label,
                            f"sleeping controller has a handler due at "
                            f"cycle {due} but its wakeup is scheduled at "
                            f"{wake_at}",
                            {"due": due, "wake_at": wake_at},
                        )
            elif isinstance(component, Core):
                # An L1 fill during this cycle (L1s tick after cores)
                # clears `waiting` and schedules the wake for cycle + 1;
                # the core legitimately stays asleep until then.
                resumed = wake_at is not None and wake_at <= cycle + 1
                if not component.waiting and not component.done \
                        and not resumed:
                    fail(
                        f"core {component.node}",
                        "sleeping core is neither blocked on the L1 nor "
                        "done, and no wakeup is scheduled",
                        {"retired": component.retired,
                         "target": component.target,
                         "wake_at": wake_at},
                    )

    # -- check: forward progress ---------------------------------------
    def check_forward_progress(self, cycle: int) -> None:
        threshold = self.stall_threshold
        for router in self.net.routers:
            for port, unit in router._input_units:
                for vn_row in unit.vcs:
                    for vc in vn_row:
                        if not vc.buffer:
                            continue
                        age = cycle - vc.buffer[0][1]
                        if age > threshold:
                            flit = vc.buffer[0][0]
                            raise self._fail(
                                "forward_progress", cycle,
                                f"router {router.node} "
                                f"{self.net.topo.port_name(port)} "
                                f"vn{vc.vn} vc{vc.index}",
                                f"head flit of {flit.msg.kind} "
                                f"uid={flit.msg.uid} stalled for {age} "
                                f"cycles (stage {vc.stage})",
                                {"age": age, "uid": flit.msg.uid},
                            )
