"""Process-level chaos campaign: prove recovery is deterministic.

Each scenario injects a real process-level fault into a real run -
SIGKILL a shard worker mid-window, SIGSTOP-wedge one past the receive
timeout, SIGKILL a whole single-process run or the shard *coordinator*,
corrupt or truncate a checkpoint on disk - and then demands one of two
outcomes, with nothing in between:

* the run **recovers** (self-healing respawn, or checkpoint resume) and
  its stats, histograms and finish cycle are *bit-identical* to an
  uninterrupted reference run; or
* the failure is **impossible to recover** (respawn budget exhausted,
  damaged checkpoint) and surfaces as its precise typed error
  (:class:`~repro.sim.shard.ShardRecoveryError`,
  :class:`~repro.sim.checkpoint.CorruptCheckpointError`, ...).

A clean control run must report **zero** respawns (no false positives),
and no worker process may outlive its campaign scenario (checked
through ``REPRO_SHARD_PIDFILE``).

Run it via ``python -m repro.harness chaos`` or
:func:`run_chaos_campaign`; the CI ``chaos`` job gates on it.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import repro
from repro.cpu.workloads import ALL_WORKLOADS
from repro.sim.checkpoint import (
    MAGIC,
    CheckpointPolicy,
    CorruptCheckpointError,
    IncompatibleCheckpointError,
    fingerprint,
    read_checkpoint,
    resume_checkpointed,
    restore_system,
    run_checkpointed,
)
from repro.sim.config import Variant, small_test_config
from repro.sim.shard import (
    _SNAPSHOT_RE,
    ShardRecoveryError,
    ShardResult,
    run_sharded,
)
from repro.system import build_system

#: Small-but-real quanta: enough cycles for several barrier windows,
#: snapshots and phase transitions on a 4x4 mesh.
_WARMUP = 200
_MEASURE = 400
_WORKLOAD = ALL_WORKLOADS[0].name
_SEED = 3
#: Snapshot cadence tight enough that every scenario crosses several
#: snapshot points inside its ~15k-cycle run.
_INTERVAL = 2000

#: The two router/NI pipelines every recovery scenario must hold on.
PIPELINES = ("fastpath", "classic")


@dataclass
class ChaosOutcome:
    """Verdict of one chaos scenario."""

    scenario: str
    ok: bool
    detail: str = ""
    error: str = ""


def _config(pipeline: str = "fastpath"):
    config = small_test_config(16, variant=Variant.REUSE_NOACK, seed=_SEED)
    if pipeline == "classic":
        config = dataclasses.replace(
            config, noc=dataclasses.replace(config.noc, fastpath=False)
        )
    return config


def _reference(pipeline: str) -> ShardResult:
    """Uninterrupted sharded run every recovery scenario compares against."""
    return run_sharded(_config(pipeline), _WORKLOAD, _WARMUP, _MEASURE,
                       n_shards=2, check=False)


def _identical(result, reference) -> Optional[str]:
    """None when bit-identical, else a description of the divergence."""
    if (result.start_cycle, result.finish_cycle, result.end_cycle) != \
            (reference.start_cycle, reference.finish_cycle,
             reference.end_cycle):
        return (
            f"cycles diverge: ({result.start_cycle}, {result.finish_cycle}, "
            f"{result.end_cycle}) != ({reference.start_cycle}, "
            f"{reference.finish_cycle}, {reference.end_cycle})"
        )
    ours, theirs = result.stats.as_dict(), reference.stats.as_dict()
    if ours != theirs:
        diff = [key for key in sorted(set(ours) | set(theirs))
                if ours.get(key) != theirs.get(key)]
        return f"stats diverge on {len(diff)} keys (first: {diff[:3]})"
    return None


class _PidWatch:
    """Record every worker pid spawned inside the block; assert all dead."""

    def __enter__(self) -> "_PidWatch":
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".pids", delete=False)
        handle.close()
        self.path = handle.name
        self._saved = os.environ.get("REPRO_SHARD_PIDFILE")
        os.environ["REPRO_SHARD_PIDFILE"] = self.path
        return self

    def __exit__(self, *exc_info) -> None:
        if self._saved is None:
            os.environ.pop("REPRO_SHARD_PIDFILE", None)
        else:  # pragma: no cover - nested campaigns
            os.environ["REPRO_SHARD_PIDFILE"] = self._saved

    def leaked(self) -> List[int]:
        alive = []
        try:
            with open(self.path) as handle:
                pids = [int(line) for line in handle if line.strip()]
        finally:
            os.unlink(self.path)
        deadline = time.time() + 10  # grace for SIGKILLed procs to reap
        for pid in pids:
            while True:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                except PermissionError:  # pragma: no cover - pid reuse
                    break
                if time.time() > deadline:
                    alive.append(pid)
                    break
                time.sleep(0.1)
        return alive


# ----------------------------------------------------------------------
# Scenarios.  Each returns a ChaosOutcome; references are passed in so
# one uninterrupted run per pipeline serves every scenario.
# ----------------------------------------------------------------------

def _scenario_clean(pipeline: str, reference: ShardResult) -> ChaosOutcome:
    """Control: an unharmed run must not trip the supervisor at all."""
    name = f"clean-run-{pipeline}"
    with _PidWatch() as watch:
        result = run_sharded(_config(pipeline), _WORKLOAD, _WARMUP,
                             _MEASURE, n_shards=2, check=False,
                             checkpoint_interval=_INTERVAL)
        leaked = watch.leaked()
    if result.respawns != 0:
        return ChaosOutcome(name, False,
                            error=f"false positive: {result.respawns} "
                                  f"respawn(s) on a healthy run")
    if leaked:
        return ChaosOutcome(name, False, error=f"leaked workers: {leaked}")
    divergence = _identical(result, reference)
    if divergence:
        return ChaosOutcome(name, False, error=divergence)
    return ChaosOutcome(name, True, detail="0 respawns, bit-identical")


def _scenario_worker_sigkill(pipeline: str, reference: ShardResult,
                             barrier_seq: int, label: str) -> ChaosOutcome:
    """SIGKILL one worker mid-window; the respawn must replay exactly."""
    name = f"worker-sigkill-{label}-{pipeline}"
    with _PidWatch() as watch:
        result = run_sharded(
            _config(pipeline), _WORKLOAD, _WARMUP, _MEASURE, n_shards=2,
            check=False, checkpoint_interval=_INTERVAL,
            _chaos={"shard": 1, "barrier_seq": barrier_seq,
                    "action": "sigkill"},
        )
        leaked = watch.leaked()
    if result.respawns != 1:
        return ChaosOutcome(name, False,
                            error=f"expected 1 respawn, got "
                                  f"{result.respawns}")
    if leaked:
        return ChaosOutcome(name, False, error=f"leaked workers: {leaked}")
    divergence = _identical(result, reference)
    if divergence:
        return ChaosOutcome(name, False, error=divergence)
    return ChaosOutcome(name, True,
                        detail=f"killed at barrier seq {barrier_seq}, "
                               f"recovered bit-identical")


def _scenario_worker_sigstop(pipeline: str,
                             reference: ShardResult) -> ChaosOutcome:
    """Wedge a worker past the receive timeout; it must be killed and
    respawned, and the run must stay bit-identical."""
    name = f"worker-sigstop-{pipeline}"
    with _PidWatch() as watch:
        result = run_sharded(
            _config(pipeline), _WORKLOAD, _WARMUP, _MEASURE, n_shards=2,
            check=False, checkpoint_interval=_INTERVAL, timeout=2.0,
            _chaos={"shard": 0, "barrier_seq": 60, "action": "sigstop"},
        )
        leaked = watch.leaked()
    if result.respawns != 1:
        return ChaosOutcome(name, False,
                            error=f"expected 1 respawn, got "
                                  f"{result.respawns}")
    if leaked:
        return ChaosOutcome(name, False,
                            error=f"leaked (wedged?) workers: {leaked}")
    divergence = _identical(result, reference)
    if divergence:
        return ChaosOutcome(name, False, error=divergence)
    return ChaosOutcome(name, True,
                        detail="wedge detected by timeout, recovered "
                               "bit-identical")


def _scenario_respawn_exhausted() -> ChaosOutcome:
    """With a zero respawn budget, a killed worker must surface as a
    typed ShardRecoveryError - not a hang, not a bare crash."""
    name = "respawn-exhausted"
    with _PidWatch() as watch:
        try:
            run_sharded(
                _config("fastpath"), _WORKLOAD, _WARMUP, _MEASURE,
                n_shards=2, check=False, checkpoint_interval=_INTERVAL,
                respawn_limit=0,
                _chaos={"shard": 1, "barrier_seq": 10, "action": "sigkill"},
            )
        except ShardRecoveryError as err:
            leaked = watch.leaked()
            if leaked:
                return ChaosOutcome(name, False,
                                    error=f"leaked workers: {leaked}")
            return ChaosOutcome(name, True, detail=f"typed error: {err}")
        except Exception as err:  # noqa: BLE001 - verdict, not control flow
            watch.leaked()
            return ChaosOutcome(name, False,
                                error=f"wrong error type "
                                      f"{type(err).__name__}: {err}")
    return ChaosOutcome(name, False,
                        error="run succeeded with a dead worker and no "
                              "respawn budget")


def _scenario_coordinator_sigkill(pipeline: str,
                                  reference: ShardResult) -> ChaosOutcome:
    """SIGKILL the whole coordinator process mid-run, then resume the run
    from the workers' snapshots (newest consistent cut)."""
    name = f"coordinator-sigkill-{pipeline}"
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    child_src = (
        "import sys\n"
        f"sys.path.insert(0, {src_root!r})\n"
        "import dataclasses\n"
        "from repro.sim.config import Variant, small_test_config\n"
        "from repro.sim.shard import run_sharded\n"
        f"config = small_test_config(16, variant=Variant.REUSE_NOACK, "
        f"seed={_SEED})\n"
        f"pipeline = {pipeline!r}\n"
        "if pipeline == 'classic':\n"
        "    config = dataclasses.replace(config, noc=dataclasses.replace("
        "config.noc, fastpath=False))\n"
        f"run_sharded(config, {_WORKLOAD!r}, {_WARMUP}, {_MEASURE}, "
        f"n_shards=2, check=False, checkpoint_dir=sys.argv[1], "
        f"checkpoint_interval={_INTERVAL})\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        ckdir = os.path.join(tmp, "ck")
        proc = subprocess.Popen([sys.executable, "-c", child_src, ckdir])

        def common_seqs() -> set:
            per: Dict[int, set] = {0: set(), 1: set()}
            if os.path.isdir(ckdir):
                for entry in os.listdir(ckdir):
                    match = _SNAPSHOT_RE.match(entry)
                    if match:
                        per[int(match.group(1))].add(int(match.group(2)))
            return per[0] & per[1]

        deadline = time.time() + 180
        while time.time() < deadline:
            if common_seqs():
                break
            if proc.poll() is not None:
                return ChaosOutcome(
                    name, False,
                    error="victim finished before any snapshot appeared "
                          "(scenario too short for the cadence)")
            time.sleep(0.05)
        else:
            proc.kill()
            proc.wait()
            return ChaosOutcome(name, False,
                                error="no snapshots appeared in time")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        time.sleep(0.5)  # orphaned daemon workers die with the parent
        with _PidWatch() as watch:
            try:
                result = run_sharded(
                    _config(pipeline), _WORKLOAD, _WARMUP, _MEASURE,
                    n_shards=2, check=False, checkpoint_dir=ckdir,
                    checkpoint_interval=_INTERVAL, resume=True,
                )
            except Exception as err:  # noqa: BLE001 - verdict
                watch.leaked()
                return ChaosOutcome(name, False,
                                    error=f"resume failed: "
                                          f"{type(err).__name__}: {err}")
            leaked = watch.leaked()
    if leaked:
        return ChaosOutcome(name, False, error=f"leaked workers: {leaked}")
    divergence = _identical(result, reference)
    if divergence:
        return ChaosOutcome(name, False, error=divergence)
    return ChaosOutcome(name, True,
                        detail="resumed from consistent cut, bit-identical")


def _scenario_singleproc_sigkill(pipeline: str) -> ChaosOutcome:
    """SIGKILL a checkpointing single-process run, resume from its
    newest checkpoint, and match an uninterrupted in-process run."""
    name = f"singleproc-sigkill-resume-{pipeline}"
    config = _config(pipeline)
    from repro.cpu.workloads import workload_by_name

    reference = build_system(config, workload_by_name(_WORKLOAD))
    reference.warmup(_WARMUP)
    ref_start = reference.sim.cycle
    ref_finish = reference.run_instructions(_MEASURE)
    ref_stats = reference.stats.as_dict()

    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    config_hash = fingerprint("chaos-singleproc", pipeline)
    child_src = (
        "import sys\n"
        f"sys.path.insert(0, {src_root!r})\n"
        "import dataclasses\n"
        "from repro.cpu.workloads import workload_by_name\n"
        "from repro.sim.checkpoint import CheckpointPolicy, fingerprint, "
        "run_checkpointed\n"
        "from repro.sim.config import Variant, small_test_config\n"
        "from repro.system import build_system\n"
        f"config = small_test_config(16, variant=Variant.REUSE_NOACK, "
        f"seed={_SEED})\n"
        f"pipeline = {pipeline!r}\n"
        "if pipeline == 'classic':\n"
        "    config = dataclasses.replace(config, noc=dataclasses.replace("
        "config.noc, fastpath=False))\n"
        f"system = build_system(config, workload_by_name({_WORKLOAD!r}))\n"
        f"policy = CheckpointPolicy(sys.argv[1], {_INTERVAL}, "
        f"{config_hash!r})\n"
        f"run_checkpointed(system, {_WARMUP}, {_MEASURE}, policy)\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        ckdir = os.path.join(tmp, "ck")
        env = dict(os.environ, REPRO_CHAOS_KILL_AFTER="3")
        victim = subprocess.run([sys.executable, "-c", child_src, ckdir],
                                env=env, capture_output=True, text=True)
        if victim.returncode != -signal.SIGKILL:
            return ChaosOutcome(
                name, False,
                error=f"victim exited {victim.returncode} instead of being "
                      f"killed after its 3rd checkpoint: "
                      f"{victim.stderr[-300:]}")
        policy = CheckpointPolicy(ckdir, _INTERVAL, config_hash)
        if not policy.has_checkpoint():
            return ChaosOutcome(name, False,
                                error="killed run left no checkpoint")
        _header, payload = read_checkpoint(policy.path, kind="run",
                                           config_hash=config_hash)
        data = restore_system(payload)
        start, finish = resume_checkpointed(data["system"], data["run"],
                                            policy)
    if (start, finish) != (ref_start, ref_finish):
        return ChaosOutcome(name, False,
                            error=f"cycles diverge: ({start}, {finish}) != "
                                  f"({ref_start}, {ref_finish})")
    if data["system"].stats.as_dict() != ref_stats:
        return ChaosOutcome(name, False, error="stats diverge after resume")
    return ChaosOutcome(name, True,
                        detail="killed after 3rd checkpoint, resumed "
                               "bit-identical")


def _checkpoint_file_for_damage(directory: str) -> str:
    """Produce a real checkpoint to damage."""
    from repro.cpu.workloads import workload_by_name

    config = _config("fastpath")
    system = build_system(config, workload_by_name(_WORKLOAD))
    policy = CheckpointPolicy(directory, _INTERVAL,
                              fingerprint("chaos-damage"))
    watchdog_path = policy.path
    run_checkpointed(system, _WARMUP, _MEASURE, policy, keep_history=True)
    # run_checkpointed discards nothing; the newest checkpoint survives
    # under policy.path history copies.  Use the last history copy.
    history = sorted(
        entry for entry in os.listdir(directory)
        if entry.startswith("run.ckpt.")
    )
    if history:
        return os.path.join(directory, history[-1])
    return watchdog_path  # pragma: no cover - interval > run length


def _scenario_corrupt_checkpoint() -> ChaosOutcome:
    """Bit-flips and truncation must raise CorruptCheckpointError."""
    name = "corrupt-checkpoint"
    with tempfile.TemporaryDirectory() as tmp:
        path = _checkpoint_file_for_damage(tmp)
        with open(path, "rb") as handle:
            raw = handle.read()
        damages = {
            "bad-magic": b"NOTACKPT" + raw[len(MAGIC):],
            "payload-bitflip": raw[:-10] + bytes([raw[-10] ^ 0xFF])
            + raw[-9:],
            "truncated": raw[:len(raw) // 2],
            "empty": b"",
        }
        for label, blob in damages.items():
            damaged = os.path.join(tmp, f"damaged-{label}.ckpt")
            with open(damaged, "wb") as handle:
                handle.write(blob)
            try:
                read_checkpoint(damaged)
            except CorruptCheckpointError:
                continue  # the required typed outcome
            except Exception as err:  # noqa: BLE001 - verdict
                return ChaosOutcome(name, False,
                                    error=f"{label}: wrong error "
                                          f"{type(err).__name__}: {err}")
            return ChaosOutcome(name, False,
                                error=f"{label}: damage went undetected")
    return ChaosOutcome(name, True,
                        detail="bad magic / bitflip / truncation / empty "
                               "all raise CorruptCheckpointError")


def _scenario_stale_or_foreign_checkpoint() -> ChaosOutcome:
    """Stale schema versions and config mismatches must be rejected with
    IncompatibleCheckpointError before any state is deserialised."""
    import json
    import struct

    name = "stale-or-foreign-checkpoint"
    with tempfile.TemporaryDirectory() as tmp:
        path = _checkpoint_file_for_damage(tmp)
        with open(path, "rb") as handle:
            raw = handle.read()
        (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
        header_end = len(MAGIC) + 4 + header_len
        header = json.loads(raw[len(MAGIC) + 4:header_end])
        # Stale schema.
        stale_header = dict(header, schema=999)
        blob = json.dumps(stale_header).encode()
        stale = os.path.join(tmp, "stale.ckpt")
        with open(stale, "wb") as handle:
            handle.write(MAGIC + struct.pack("<I", len(blob)) + blob
                         + raw[header_end:])
        try:
            read_checkpoint(stale)
        except IncompatibleCheckpointError:
            pass
        except Exception as err:  # noqa: BLE001 - verdict
            return ChaosOutcome(name, False,
                                error=f"stale schema: wrong error "
                                      f"{type(err).__name__}: {err}")
        else:
            return ChaosOutcome(name, False,
                                error="stale schema accepted")
        # Config mismatch.
        try:
            read_checkpoint(path, config_hash=fingerprint("other-config"))
        except IncompatibleCheckpointError:
            return ChaosOutcome(
                name, True,
                detail="stale schema and foreign config both rejected")
        except Exception as err:  # noqa: BLE001 - verdict
            return ChaosOutcome(name, False,
                                error=f"config mismatch: wrong error "
                                      f"{type(err).__name__}: {err}")
        return ChaosOutcome(name, False, error="foreign config accepted")


# ----------------------------------------------------------------------
# Service-level scenarios: the job daemon must uphold the same contract
# as the shard supervisor - worker death is invisible in the results.
# ----------------------------------------------------------------------

def _service_reference(spec) -> dict:
    """Compute ``spec`` directly, bypassing every cache layer, so the
    comparison against the daemon's answer is a real recomputation."""
    from repro.harness import experiment

    saved_memo = dict(experiment._memo)
    saved_cache = os.environ.pop("REPRO_CACHE", None)
    try:
        experiment._memo.clear()
        return experiment.run_experiment(spec).to_json()
    finally:
        experiment._memo.clear()
        experiment._memo.update(saved_memo)
        if saved_cache is not None:
            os.environ["REPRO_CACHE"] = saved_cache


def _scenario_service_worker_sigkill() -> ChaosOutcome:
    """SIGKILL a job-daemon worker mid-run: the daemon must requeue the
    job onto a respawned worker and the final result must stay
    bit-identical to a direct :func:`run_experiment` call."""
    from repro.harness import experiment
    from repro.harness.experiment import RunSpec
    from repro.service import jobs as jobstates
    from repro.service.client import ServiceClient
    from repro.service.daemon import Daemon

    name = "service-worker-sigkill"
    spec = RunSpec(16, Variant.REUSE_NOACK, _WORKLOAD, _SEED,
                   measure_instructions=2500, warmup_instructions=300)
    # Workers are forked at start(): clear the memo first so the job is
    # a genuine multi-second simulation the kill can land inside.
    saved_memo = dict(experiment._memo)
    experiment._memo.clear()
    with tempfile.TemporaryDirectory() as tmp:
        env = dict(os.environ,
                   REPRO_CACHE=os.path.join(tmp, "store") + os.sep)
        daemon = Daemon(os.path.join(tmp, "repro.sock"), workers=1, env=env)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            [status] = client.submit([spec])
            job_id = status["job_id"]
            victim = None
            deadline = time.time() + 60
            while time.time() < deadline:
                info = client.info()
                busy = [w for w in info["workers"]
                        if w["current"] == job_id and w["alive"]]
                if busy:
                    victim = busy[0]["pid"]
                    break
                state = client.status([job_id])[0]["state"]
                if state in jobstates.TERMINAL:
                    return ChaosOutcome(
                        name, False,
                        error=f"job reached {state!r} before the kill "
                              f"landed (run too short for the scenario)")
                time.sleep(0.01)
            if victim is None:
                return ChaosOutcome(name, False,
                                    error="job never started running")
            os.kill(victim, signal.SIGKILL)
            [row] = client.results([job_id], timeout=300.0)
            respawns = client.info()["respawns"]
        finally:
            daemon.shutdown()
            experiment._memo.clear()
            experiment._memo.update(saved_memo)
    if row["state"] != jobstates.DONE:
        return ChaosOutcome(
            name, False,
            error=f"job ended {row['state']!r} after worker kill: "
                  f"{row.get('error', '')}")
    if respawns != 1:
        return ChaosOutcome(name, False,
                            error=f"expected 1 respawn, got {respawns}")
    if row["attempts"] != 1:
        return ChaosOutcome(
            name, False,
            error=f"expected 1 recorded requeue, got {row['attempts']}")
    reference = _service_reference(spec)
    if row["result"] != reference:
        diff = [key for key in sorted(set(row["result"]) | set(reference))
                if row["result"].get(key) != reference.get(key)]
        return ChaosOutcome(
            name, False,
            error=f"result diverges from direct run on {diff[:3]}")
    return ChaosOutcome(name, True,
                        detail="worker killed mid-job; requeued, respawned, "
                               "bit-identical")


def _scenario_service_dedup() -> ChaosOutcome:
    """Identical specs must join one job, and a fresh daemon over the
    same sharded store must answer from cache without re-simulating."""
    from repro.harness import experiment
    from repro.harness.experiment import RunSpec
    from repro.service import jobs as jobstates
    from repro.service.client import ServiceClient
    from repro.service.daemon import Daemon

    name = "service-dedup-and-store"
    spec = RunSpec(16, Variant.REUSE_NOACK, _WORKLOAD, _SEED,
                   measure_instructions=600, warmup_instructions=150)
    saved_memo = dict(experiment._memo)
    experiment._memo.clear()
    with tempfile.TemporaryDirectory() as tmp:
        env = dict(os.environ,
                   REPRO_CACHE=os.path.join(tmp, "store") + os.sep)
        daemon = Daemon(os.path.join(tmp, "a.sock"), workers=1, env=env)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            [first] = client.submit([spec])
            [second] = client.submit([spec])
            if first["job_id"] != second["job_id"]:
                return ChaosOutcome(
                    name, False,
                    error="resubmitting an identical spec spawned a "
                          "second job instead of joining the first")
            [row] = client.results([first["job_id"]], timeout=300.0)
            first_result = row["result"]
        finally:
            daemon.shutdown()
            experiment._memo.clear()
            experiment._memo.update(saved_memo)
        if row["state"] != jobstates.DONE:
            return ChaosOutcome(name, False,
                                error=f"job ended {row['state']!r}: "
                                      f"{row.get('error', '')}")
        # A fresh daemon over the same store: submit must be answered
        # from the store, never re-simulated.
        daemon = Daemon(os.path.join(tmp, "b.sock"), workers=1, env=env)
        daemon.start()
        try:
            client = ServiceClient(daemon.address)
            [cached] = client.submit([spec])
            if cached["state"] != jobstates.DONE or \
                    cached["source"] != "cache":
                return ChaosOutcome(
                    name, False,
                    error=f"store hit not honoured: state "
                          f"{cached['state']!r} source {cached['source']!r}")
            [row2] = client.results([cached["job_id"]], wait=False)
            executed = sum(w["executed"]
                           for w in client.info()["workers"])
        finally:
            daemon.shutdown()
    if executed != 0:
        return ChaosOutcome(name, False,
                            error=f"restarted daemon re-simulated "
                                  f"{executed} job(s) despite a store hit")
    if row2["result"] != first_result:
        return ChaosOutcome(name, False,
                            error="stored result differs from the one the "
                                  "first daemon computed")
    return ChaosOutcome(name, True,
                        detail="dedup joined, store hit served without "
                               "re-simulation")


def run_chaos_campaign(
    pipelines=PIPELINES,
    echo: Optional[Callable[[str], None]] = None,
) -> List[ChaosOutcome]:
    """Run every chaos scenario; returns one outcome per scenario.

    Recovery scenarios run once per router pipeline in ``pipelines``
    (``fastpath`` and the ``classic`` reference by default); damaged-file
    scenarios are pipeline-independent and run once.
    """
    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    outcomes: List[ChaosOutcome] = []

    def run(scenario: Callable[[], ChaosOutcome]) -> None:
        outcome = scenario()
        outcomes.append(outcome)
        verdict = "ok" if outcome.ok else "FAIL"
        say(f"  {outcome.scenario:34s} {verdict}  "
            f"{outcome.detail or outcome.error}")

    for pipeline in pipelines:
        say(f"pipeline: {pipeline}")
        reference = _reference(pipeline)
        run(lambda: _scenario_clean(pipeline, reference))
        # Before the first snapshot (fresh respawn + full replay) and
        # after several (snapshot restore + partial replay).
        run(lambda: _scenario_worker_sigkill(pipeline, reference, 3,
                                             "early"))
        run(lambda: _scenario_worker_sigkill(pipeline, reference, 200,
                                             "late"))
        run(lambda: _scenario_worker_sigstop(pipeline, reference))
        run(lambda: _scenario_coordinator_sigkill(pipeline, reference))
        run(lambda: _scenario_singleproc_sigkill(pipeline))
    say("pipeline-independent scenarios")
    run(_scenario_respawn_exhausted)
    run(_scenario_corrupt_checkpoint)
    run(_scenario_stale_or_foreign_checkpoint)
    say("service scenarios")
    run(_scenario_service_worker_sigkill)
    run(_scenario_service_dedup)
    return outcomes
