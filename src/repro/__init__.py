"""Reactive Circuits: dynamic construction of circuits for reactive traffic
in homogeneous CMPs - a full reproduction of the DATE 2014 paper.

Quickstart::

    from repro import SystemConfig, Variant, build_system, workload_by_name

    config = SystemConfig(n_cores=16).with_variant(Variant.COMPLETE_NOACK)
    system = build_system(config, workload_by_name("canneal"))
    system.warmup(2_000)
    cycles = system.run_instructions(10_000)

See :mod:`repro.harness` for the table/figure reproduction entry points.
"""

from repro.circuits.outcomes import ReplyOutcome, outcome_fractions
from repro.cpu.workloads import (
    ALL_WORKLOADS,
    MULTIPROGRAMMED_MIX,
    PARALLEL_WORKLOADS,
    WorkloadProfile,
    workload_by_name,
)
from repro.sim.config import (
    CacheConfig,
    CircuitConfig,
    CircuitMode,
    NocConfig,
    SystemConfig,
    Variant,
    variant_config,
)
from repro.api import compare_variants, run_matrix
from repro.partition import (
    Partition,
    build_partitioned_system,
    quadrants,
)
from repro.system import CmpSystem, build_system
from repro.telemetry import Telemetry, TelemetryConfig

__version__ = "1.0.0"

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "Partition",
    "build_partitioned_system",
    "quadrants",
    "ALL_WORKLOADS",
    "CacheConfig",
    "CircuitConfig",
    "CircuitMode",
    "CmpSystem",
    "MULTIPROGRAMMED_MIX",
    "NocConfig",
    "PARALLEL_WORKLOADS",
    "ReplyOutcome",
    "SystemConfig",
    "Variant",
    "WorkloadProfile",
    "build_system",
    "compare_variants",
    "run_matrix",
    "outcome_fractions",
    "variant_config",
    "workload_by_name",
]
