"""Coherence message construction (the paper's Table 3 message set).

Requests travel on VN0 (XY routing); replies on VN1 (YX routing).  Request
messages that will be answered by a circuit-eligible reply carry the
circuit metadata the routers need to reserve the reply's path: the circuit
identity (requestor node + cache line address), the expected reply length,
and the destination turnaround estimate used by timed reservations.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.noc.flit import Message


class Kind:
    """Message kind constants (names follow the paper's Tables 1 and 3)."""

    # Requests (VN0).
    GETS = "GETS"
    GETX = "GETX"
    FWD_GETS = "FWD_GETS"
    FWD_GETX = "FWD_GETX"
    INV = "INV"
    WB_L1 = "WB_L1"
    MEM_READ = "MEM_READ"
    WB_L2 = "WB_L2"
    # Replies (VN1).
    L2_REPLY = "L2_REPLY"
    L2_WB_ACK = "L2_WB_ACK"
    MEMORY_DATA = "MEMORY_DATA"
    MEMORY_ACK = "MEMORY_ACK"
    L1_DATA_ACK = "L1_DATA_ACK"
    L1_INV_ACK = "L1_INV_ACK"
    L1_TO_L1 = "L1_TO_L1"


REQUEST_KINDS = frozenset({
    Kind.GETS, Kind.GETX, Kind.FWD_GETS, Kind.FWD_GETX,
    Kind.INV, Kind.WB_L1, Kind.MEM_READ, Kind.WB_L2,
})

REPLY_KINDS = frozenset({
    Kind.L2_REPLY, Kind.L2_WB_ACK, Kind.MEMORY_DATA, Kind.MEMORY_ACK,
    Kind.L1_DATA_ACK, Kind.L1_INV_ACK, Kind.L1_TO_L1,
})

#: Replies that a preceding request can reserve a circuit for (sec. 4.1).
CIRCUIT_ELIGIBLE_REPLIES = frozenset({
    Kind.L2_REPLY, Kind.L2_WB_ACK, Kind.MEMORY_DATA, Kind.MEMORY_ACK,
})


class Payload:
    """Protocol payload attached to every coherence message."""

    __slots__ = ("addr", "requestor", "exclusive", "ack_suppressed",
                 "circuit_resolved", "undone_circuit")

    def __init__(self, addr: int, requestor: Optional[int] = None) -> None:
        #: Cache line address (block-aligned).
        self.addr = addr
        #: Original requesting node (for forwarded requests / L1-to-L1).
        self.requestor = requestor
        #: Data replies: line granted exclusively (E for reads, M for writes).
        self.exclusive = False
        #: Set on data replies riding complete circuits: skip L1_DATA_ACK.
        self.ack_suppressed = False
        #: Hook invoked by the NI when circuit use is resolved (sec. 4.6).
        self.circuit_resolved: Optional[Any] = None
        #: The reply replaces one whose circuit was undone (Fig. 6 account).
        self.undone_circuit = False


def _line_flits(flit_bytes: int, line_bytes: int) -> int:
    return 1 + (line_bytes + flit_bytes - 1) // flit_bytes


class MessageFactory:
    """Builds coherence messages for one system configuration."""

    def __init__(self, config) -> None:
        self.config = config
        self.data_flits = _line_flits(config.noc.flit_bytes, config.cache.line_bytes)

    # -- requests that reserve circuits for their replies -----------------
    def _request(self, kind: str, src: int, dest: int, addr: int,
                 n_flits: int, reply_flits: int, turnaround: int) -> Message:
        msg = Message(src, dest, 0, n_flits, kind, Payload(addr, requestor=src))
        msg.builds_circuit = True
        msg.circuit_key = (src, addr, msg.uid)
        msg.reply_flits = reply_flits
        msg.expected_turnaround = turnaround
        return msg

    def gets(self, src: int, dest: int, addr: int) -> Message:
        """Read request; reserves a circuit for the 5-flit data reply."""
        return self._request(Kind.GETS, src, dest, addr, 1,
                             self.data_flits, self.config.cache.l2_hit_cycles)

    def getx(self, src: int, dest: int, addr: int) -> Message:
        """Write/ownership request; reserves a circuit for the data reply."""
        return self._request(Kind.GETX, src, dest, addr, 1,
                             self.data_flits, self.config.cache.l2_hit_cycles)

    def wb_l1(self, src: int, dest: int, addr: int) -> Message:
        """L1 replacement data (5 flits); reserves a circuit for the ack."""
        return self._request(Kind.WB_L1, src, dest, addr, self.data_flits,
                             1, self.config.cache.l2_hit_cycles)

    def mem_read(self, src: int, dest: int, addr: int) -> Message:
        """L2-miss fetch; reserves a circuit for the MEMORY data reply."""
        return self._request(Kind.MEM_READ, src, dest, addr, 1,
                             self.data_flits,
                             self.config.cache.memory_latency_cycles)

    def wb_l2(self, src: int, dest: int, addr: int) -> Message:
        """L2 replacement data; reserves a circuit for the MEMORY ack."""
        return self._request(Kind.WB_L2, src, dest, addr, self.data_flits,
                             1, self.config.cache.memory_latency_cycles)

    # -- requests without circuit-eligible replies -------------------------
    def forward(self, kind: str, src: int, owner: int, addr: int,
                requestor: int, undone_circuit: bool) -> Message:
        """FWD_GETS/FWD_GETX toward the exclusively-owning L1."""
        payload = Payload(addr, requestor=requestor)
        payload.undone_circuit = undone_circuit
        return Message(src, owner, 0, 1, kind, payload)

    def inv(self, src: int, sharer: int, addr: int) -> Message:
        """Invalidation toward one sharer (write or L2 replacement)."""
        return Message(src, sharer, 0, 1, Kind.INV, Payload(addr))

    # -- replies -----------------------------------------------------------
    def _reply(self, kind: str, src: int, dest: int, addr: int, n_flits: int,
               request: Optional[Message]) -> Message:
        msg = Message(src, dest, 1, n_flits, kind, Payload(addr))
        if kind in CIRCUIT_ELIGIBLE_REPLIES:
            msg.circuit_eligible = True
            if request is not None:
                msg.circuit_key = request.circuit_key
        return msg

    def l2_reply(self, src: int, dest: int, addr: int,
                 request: Message, exclusive: bool) -> Message:
        """Data reply from the home L2 bank (circuit-eligible)."""
        msg = self._reply(Kind.L2_REPLY, src, dest, addr, self.data_flits, request)
        msg.payload.exclusive = exclusive
        return msg

    def l2_wb_ack(self, src: int, dest: int, addr: int, request: Message) -> Message:
        """Writeback acknowledgement (circuit-eligible)."""
        return self._reply(Kind.L2_WB_ACK, src, dest, addr, 1, request)

    def memory_data(self, src: int, dest: int, addr: int, request: Message) -> Message:
        """Line from a memory controller (circuit-eligible)."""
        return self._reply(Kind.MEMORY_DATA, src, dest, addr, self.data_flits, request)

    def memory_ack(self, src: int, dest: int, addr: int, request: Message) -> Message:
        """Memory write acknowledgement (circuit-eligible)."""
        return self._reply(Kind.MEMORY_ACK, src, dest, addr, 1, request)

    def l1_data_ack(self, src: int, dest: int, addr: int) -> Message:
        """Data-reception ack from L1 to the home bank (sec. 4.6 target)."""
        return self._reply(Kind.L1_DATA_ACK, src, dest, addr, 1, None)

    def l1_inv_ack(self, src: int, dest: int, addr: int) -> Message:
        """Invalidation acknowledgement from a (possibly stale) sharer."""
        return self._reply(Kind.L1_INV_ACK, src, dest, addr, 1, None)

    def l1_to_l1(self, src: int, dest: int, addr: int, exclusive: bool,
                 undone_circuit: bool) -> Message:
        """Direct cache-to-cache data transfer from the owning L1."""
        msg = self._reply(Kind.L1_TO_L1, src, dest, addr, self.data_flits, None)
        msg.payload.exclusive = exclusive
        if undone_circuit:
            msg.outcome_hint = "undone"
        return msg
