"""Private L1 cache controller (MESI, blocking in-order core).

State machine notes:

* The core blocks on every miss (single outstanding demand request), so the
  only transient state needed is the single pending miss record.
* E and M replacements send ``WB_L1`` (the paper's "replacement data from
  L1") and are acknowledged with ``L2_WB_ACK``; S replacements are silent.
  Evicted E/M lines sit in a writeback buffer until the ack arrives so the
  L1 can still answer a forwarded request that raced with the writeback.
* On a data reply delivered over a guaranteed complete circuit the L2 has
  already self-acknowledged (section 4.6): ``payload.ack_suppressed`` tells
  this controller to skip the ``L1_DATA_ACK`` and count it as eliminated.
"""

from __future__ import annotations

import enum
from functools import partial
from typing import Callable, Dict, Optional, Tuple

from repro.coherence.base import ScheduledController
from repro.coherence.cache import CacheArray
from repro.coherence.messages import Kind, MessageFactory
from repro.noc.flit import Message
from repro.sim.stats import Stats


class L1State(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


class L1Line:
    __slots__ = ("state",)

    def __init__(self, state: L1State) -> None:
        self.state = state


class L1Controller(ScheduledController):
    """One core's private L1 data cache + coherence engine."""

    def __init__(
        self,
        node: int,
        config,
        factory: MessageFactory,
        ni,
        home_of: Callable[[int], int],
        stats: Stats,
    ) -> None:
        super().__init__()
        self.node = node
        self.config = config
        self.factory = factory
        self.ni = ni
        self.home_of = home_of
        self.stats = stats
        cache = config.cache
        self.array: CacheArray[L1Line] = CacheArray(
            cache.l1_sets, cache.l1_assoc, cache.line_bytes
        )
        #: (addr, is_write) of the single outstanding demand miss.
        self.pending: Optional[Tuple[int, bool]] = None
        #: Evicted-but-unacknowledged lines: addr -> was_modified.
        self.wb_buffer: Dict[int, bool] = {}
        #: The pending miss waits for our own writeback to be acknowledged.
        self._deferred = False
        #: Callback restarting the blocked core (set by the tile).
        self.resume_core: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Functional warmup (no messages, no timing).
    # ------------------------------------------------------------------
    def prewarm_line(self, addr: int, state: L1State) -> bool:
        """Install a line directly (functional warmup); False if set full."""
        if addr in self.array:
            return True
        if not self.array.has_free_way(addr):
            return False
        self.array.install(addr, L1Line(state))
        return True

    # ------------------------------------------------------------------
    # Core-facing interface.
    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool, cycle: int) -> bool:
        """Demand access; returns True on hit (core continues next cycle)."""
        line = self.array.lookup(addr)
        if line is not None:
            if not is_write:
                self.stats.bump("l1.load_hits")
                return True
            if line.state is L1State.MODIFIED:
                self.stats.bump("l1.store_hits")
                return True
            if line.state is L1State.EXCLUSIVE:
                line.state = L1State.MODIFIED  # silent E -> M upgrade
                self.stats.bump("l1.store_hits")
                return True
            # Store to a SHARED line: needs exclusivity (upgrade miss).
        assert self.pending is None, "blocking core cannot have two misses"
        self.pending = (addr, is_write)
        self.stats.bump("l1.store_misses" if is_write else "l1.load_misses")
        if addr in self.wb_buffer:
            # Our own writeback for this line is still in flight; requesting
            # now could reorder with it on the request VN.  Issue once the
            # L2_WB_ACK arrives (the core stays blocked meanwhile).
            self._deferred = True
            self.stats.bump("l1.deferred_rerequests")
            return False
        self._issue_miss(addr, is_write, cycle)
        return False

    def _issue_miss(self, addr: int, is_write: bool, cycle: int) -> None:
        home = self.home_of(addr)
        msg = (self.factory.getx if is_write else self.factory.gets)(
            self.node, home, addr
        )
        self.ni.enqueue(msg, cycle)

    # ------------------------------------------------------------------
    # Message handling (dispatched by the tile).
    # ------------------------------------------------------------------
    def receive(self, msg: Message, cycle: int) -> None:
        handler = {
            Kind.L2_REPLY: self._on_data,
            Kind.L1_TO_L1: self._on_data,
            Kind.L2_WB_ACK: self._on_wb_ack,
            Kind.INV: self._on_inv,
            Kind.FWD_GETS: self._on_forward,
            Kind.FWD_GETX: self._on_forward,
        }[msg.kind]
        latency = self.config.cache.l1_hit_cycles
        # partial, not a lambda: pending events must survive checkpoint
        # pickling (repro.sim.checkpoint).
        self.schedule(cycle + latency, partial(handler, msg))

    def _on_data(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        assert self.pending is not None and self.pending[0] == addr, (
            f"L1 {self.node}: unexpected data reply for {addr:#x}"
        )
        _addr, is_write = self.pending
        self.pending = None
        if is_write:
            state = L1State.MODIFIED
        elif msg.payload.exclusive:
            state = L1State.EXCLUSIVE
        else:
            state = L1State.SHARED
        self._install(addr, state, cycle)
        if msg.payload.ack_suppressed:
            # The ACK was made unnecessary by the complete circuit (4.6);
            # the paper accounts these as zero-latency eliminated replies.
            self.stats.bump("circuit.outcome.eliminated")
            self.stats.bump("circuit.replies_total")
            self.stats.bump(f"msg.count.{Kind.L1_DATA_ACK}_eliminated")
            self.stats.observe("lat.net.norep", 0.0)
            self.stats.observe("lat.queue.norep", 0.0)
        elif msg.kind in (Kind.L2_REPLY, Kind.L1_TO_L1):
            home = self.home_of(addr)
            self.ni.enqueue(self.factory.l1_data_ack(self.node, home, addr), cycle)
        if self.resume_core is not None:
            self.resume_core(cycle)

    def _install(self, addr: int, state: L1State, cycle: int) -> None:
        if addr in self.array:
            line = self.array.lookup(addr)
            line.state = state
            return
        if not self.array.has_free_way(addr):
            victim = self.array.choose_victim(addr, lambda line: True)
            assert victim is not None
            self._evict(victim, cycle)
        self.array.install(addr, L1Line(state))

    def _evict(self, addr: int, cycle: int) -> None:
        line = self.array.remove(addr)
        assert line is not None
        if line.state is not L1State.MODIFIED:
            # Clean (S/E) replacements are silent; the L2 copy is valid.
            self.stats.bump("l1.silent_evictions")
            return
        self.wb_buffer[addr] = True
        home = self.home_of(addr)
        wb = self.factory.wb_l1(self.node, home, addr)
        wb.payload.exclusive = True  # dirty-data flag for the L2
        self.ni.enqueue(wb, cycle)
        self.stats.bump("l1.writebacks")

    def _on_wb_ack(self, msg: Message, cycle: int) -> None:
        self.wb_buffer.pop(msg.payload.addr, None)
        if self._deferred and self.pending is not None:
            addr, is_write = self.pending
            if addr == msg.payload.addr:
                self._deferred = False
                self._issue_miss(addr, is_write, cycle)

    def _on_inv(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        self.array.remove(addr)
        # Acked even when we silently dropped the line (stale sharer) or
        # while a demand miss is pending: the directory counts every ack.
        home = self.home_of(addr)
        self.ni.enqueue(self.factory.l1_inv_ack(self.node, home, addr), cycle)
        self.stats.bump("l1.invalidations")

    def _on_forward(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        requestor = msg.payload.requestor
        exclusive = msg.kind == Kind.FWD_GETX
        line = self.array.peek(addr)
        if line is not None and line.state in (L1State.EXCLUSIVE, L1State.MODIFIED):
            if exclusive:
                self.array.remove(addr)
            else:
                line.state = L1State.SHARED
        elif addr in self.wb_buffer:
            # Our writeback is in flight; serve the forward from the buffer.
            if exclusive:
                self.wb_buffer.pop(addr, None)
        else:
            # Silent clean-E replacement raced with the forward.  The line
            # was never written (a modified line would have a writeback in
            # flight), so the L2's copy is still valid; hardware would NACK
            # and let the L2 supply the data - we fold that round trip into
            # the same L1_TO_L1 message (see DESIGN.md).
            self.stats.bump("l1.stale_forwards")
        reply = self.factory.l1_to_l1(
            self.node, requestor, addr, exclusive,
            undone_circuit=msg.payload.undone_circuit,
        )
        self.ni.enqueue(reply, cycle)
        self.stats.bump("l1.forwards_served")

    # ------------------------------------------------------------------
    def busy(self) -> bool:
        return self.pending is not None or bool(self.wb_buffer) or bool(self._events)
