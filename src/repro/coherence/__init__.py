"""MESI directory coherence protocol over the NoC (paper Tables 2 and 3)."""

from repro.coherence.cache import CacheArray, PseudoLruTree
from repro.coherence.l1 import L1Controller
from repro.coherence.l2dir import L2BankController
from repro.coherence.memory import MemoryController
from repro.coherence.messages import Kind

__all__ = [
    "CacheArray",
    "Kind",
    "L1Controller",
    "L2BankController",
    "MemoryController",
    "PseudoLruTree",
]
