"""Shared L2 bank with integrated directory (MESI, inclusive).

Each tile owns one bank; lines are interleaved across banks by block
address.  The directory blocks a line while a transaction is in flight
(until the requestor's ``L1_DATA_ACK``), queueing later requests - this is
the serialisation the NoAck optimisation (section 4.6) removes: when the
data reply departs on a guaranteed complete circuit the bank
self-acknowledges and unblocks the line immediately.
"""

from __future__ import annotations

import enum
from collections import deque
from functools import partial
from typing import Callable, Deque, Dict, Optional, Set

from repro.coherence.base import ScheduledController
from repro.coherence.cache import CacheArray
from repro.coherence.messages import Kind, MessageFactory
from repro.noc.flit import Message
from repro.sim.stats import Stats


class DirLine:
    """L2 line: data state plus directory sharing info."""

    __slots__ = ("dirty", "owner", "sharers", "busy")

    def __init__(self) -> None:
        self.dirty = False
        #: L1 holding the line in E/M (exclusive ownership), if any.
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()
        #: A transaction is in flight for this line (requests must queue).
        self.busy = False


class _TxnKind(enum.Enum):
    FETCH = "fetch"  # L2 miss: memory read + grant
    GRANT = "grant"  # data reply sent, waiting for L1_DATA_ACK
    INV_GRANT = "inv"  # invalidating sharers before an exclusive grant
    FWD = "fwd"  # forwarded to the owning L1, waiting for the ack
    EVICT = "evict"  # victim eviction (invalidations + L2 writeback)


class Txn:
    __slots__ = ("kind", "addr", "requestor", "is_write", "acks_needed",
                 "mem_pending", "request", "circuit_cancelled")

    def __init__(self, kind: _TxnKind, addr: int, requestor: int = -1,
                 is_write: bool = False, request: Optional[Message] = None) -> None:
        self.kind = kind
        self.addr = addr
        self.requestor = requestor
        self.is_write = is_write
        self.acks_needed = 0
        self.mem_pending = False
        #: The original GETS/GETX (keeps the circuit key for the reply).
        self.request = request
        #: The reserved circuit was undone before use (L2 miss ablation /
        #: owner forwarding) - the eventual reply reports "undone".
        self.circuit_cancelled = False


class L2BankController(ScheduledController):
    """One L2 bank + directory slice."""

    def __init__(
        self,
        node: int,
        config,
        factory: MessageFactory,
        ni,
        mc_of: Callable[[int], int],
        stats: Stats,
    ) -> None:
        super().__init__()
        self.node = node
        self.config = config
        self.factory = factory
        self.ni = ni
        self.mc_of = mc_of
        self.stats = stats
        cache = config.cache
        self.array: CacheArray[DirLine] = CacheArray(
            cache.l2_bank_sets, cache.l2_assoc, cache.line_bytes,
            block_stride=config.n_cores,
        )
        self.txns: Dict[int, Txn] = {}
        self.queues: Dict[int, Deque[Message]] = {}

    # ------------------------------------------------------------------
    # Functional warmup (no messages, no timing).
    # ------------------------------------------------------------------
    def prewarm_line(self, addr: int, owner: Optional[int] = None,
                     sharers: Optional[Set[int]] = None) -> bool:
        """Install a line directly (functional warmup); False if set full."""
        line = self.array.peek(addr)
        if line is not None:
            if owner is not None and line.owner is None and not line.sharers:
                line.owner = owner
            return True
        if not self.array.has_free_way(addr):
            return False
        line = DirLine()
        line.owner = owner
        if sharers:
            line.sharers.update(sharers)
        self.array.install(addr, line)
        return True

    # ------------------------------------------------------------------
    def receive(self, msg: Message, cycle: int) -> None:
        handler = {
            Kind.GETS: self._on_request,
            Kind.GETX: self._on_request,
            Kind.WB_L1: self._on_writeback,
            Kind.L1_DATA_ACK: self._on_data_ack,
            Kind.L1_INV_ACK: self._on_inv_ack,
            Kind.MEMORY_DATA: self._on_memory_data,
            Kind.MEMORY_ACK: self._on_memory_ack,
        }[msg.kind]
        # partial, not a lambda: pending events must survive checkpoint
        # pickling (repro.sim.checkpoint).
        self.schedule(cycle + self.config.cache.l2_hit_cycles,
                      partial(handler, msg))

    # -- demand requests ---------------------------------------------------
    def _on_request(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        line = self.array.peek(addr)
        if (line is not None and line.busy) or addr in self.txns:
            self.queues.setdefault(addr, deque()).append(msg)
            self.stats.bump("l2.requests_queued")
            return
        self._process_request(msg, cycle)

    def _process_request(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        is_write = msg.kind == Kind.GETX
        requestor = msg.src
        line = self.array.lookup(addr)
        if line is None:
            self._start_fetch(msg, cycle)
            return
        self.stats.bump("l2.hits")
        if line.owner is not None and line.owner != requestor:
            self._forward_to_owner(line, msg, cycle)
        elif line.owner == requestor:
            # The owner silently dropped its clean E copy and re-requests
            # (its L1 defers re-requests while a writeback is in flight, so
            # no WB race is possible here): grant the line again.
            line.owner = None
            self._grant(line, msg, cycle)
        elif is_write and line.sharers - {requestor}:
            self._invalidate_then_grant(line, msg, cycle)
        else:
            self._grant(line, msg, cycle)

    def _start_fetch(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        self.stats.bump("l2.misses")
        if not self.array.has_free_way(addr):
            victim = self.array.choose_victim(addr, lambda l: not l.busy)
            if victim is None:
                # Every way busy: retry after another directory access.
                self.schedule(cycle + self.config.cache.l2_hit_cycles,
                              partial(self._on_request, msg))
                self.stats.bump("l2.fetch_retries")
                return
            self._start_eviction(victim, cycle)
        placeholder = DirLine()
        placeholder.busy = True
        self.array.install(addr, placeholder)
        txn = Txn(_TxnKind.FETCH, addr, msg.src, msg.kind == Kind.GETX, msg)
        txn.mem_pending = True
        self.txns[addr] = txn
        if self.config.circuit.undo_on_l2_miss and msg.circuit_key is not None:
            if self.ni.cancel_circuit(msg.circuit_key, cycle):
                txn.circuit_cancelled = True
        mc = self.mc_of(addr)
        self.ni.enqueue(self.factory.mem_read(self.node, mc, addr), cycle)

    def _start_eviction(self, addr: int, cycle: int) -> None:
        line = self.array.remove(addr)
        assert line is not None and not line.busy
        self.stats.bump("l2.evictions")
        txn = Txn(_TxnKind.EVICT, addr)
        targets = set(line.sharers)
        if line.owner is not None:
            targets.add(line.owner)
            line.dirty = True  # the owner's copy supersedes ours
        txn.acks_needed = len(targets)
        # Track dirtiness through the txn via is_write (reused as a flag).
        txn.is_write = line.dirty
        self.txns[addr] = txn
        for sharer in targets:
            self.ni.enqueue(self.factory.inv(self.node, sharer, addr), cycle)
        if txn.acks_needed == 0:
            self._finish_eviction(txn, cycle)

    def _finish_eviction(self, txn: Txn, cycle: int) -> None:
        if txn.is_write:  # dirty: write back to memory, await the ack
            mc = self.mc_of(txn.addr)
            self.ni.enqueue(self.factory.wb_l2(self.node, mc, txn.addr), cycle)
            txn.mem_pending = True
            self.stats.bump("l2.writebacks")
        else:
            self.txns.pop(txn.addr, None)
            self._drain(txn.addr, cycle)

    def _forward_to_owner(self, line: DirLine, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        is_write = msg.kind == Kind.GETX
        undone = False
        if msg.circuit_key is not None:
            # The reply will come from the owner L1, not from us: the
            # circuit reserved between requestor and this bank is undone.
            undone = self.ni.cancel_circuit(msg.circuit_key, cycle)
        kind = Kind.FWD_GETX if is_write else Kind.FWD_GETS
        self.ni.enqueue(
            self.factory.forward(kind, self.node, line.owner, addr,
                                 msg.src, undone),
            cycle,
        )
        line.busy = True
        txn = Txn(_TxnKind.FWD, addr, msg.src, is_write, msg)
        self.txns[addr] = txn
        self.stats.bump("l2.forwards")

    def _invalidate_then_grant(self, line: DirLine, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        line.busy = True
        txn = Txn(_TxnKind.INV_GRANT, addr, msg.src, True, msg)
        targets = line.sharers - {msg.src}
        txn.acks_needed = len(targets)
        self.txns[addr] = txn
        for sharer in targets:
            self.ni.enqueue(self.factory.inv(self.node, sharer, addr), cycle)
        self.stats.bump("l2.write_invalidations", len(targets))

    def _grant(self, line: DirLine, msg: Message, cycle: int) -> None:
        """Send the data reply and hold the line until it is acknowledged."""
        addr = msg.payload.addr
        is_write = msg.kind == Kind.GETX
        exclusive = is_write or not line.sharers
        line.busy = True
        txn = Txn(_TxnKind.GRANT, addr, msg.src, is_write, msg)
        self.txns[addr] = txn
        reply = self.factory.l2_reply(self.node, msg.src, addr,
                                      msg, exclusive)
        reply.payload.circuit_resolved = partial(
            self._on_reply_resolved, txn, reply
        )
        self.ni.enqueue(reply, cycle)

    def _on_reply_resolved(self, txn: Txn, reply: Message,
                           used_circuit: bool, cycle: int) -> None:
        """NI resolved whether the data reply rides a complete circuit."""
        if not used_circuit or not self.config.circuit.no_ack:
            return
        # Section 4.6: the circuit guarantees ordered, unblocked delivery,
        # so acknowledge the data now and tell the L1 not to send the ACK.
        reply.payload.ack_suppressed = True
        self.stats.bump("l2.self_acks")
        self._complete_grant(txn, cycle, suppressed=True)

    def _complete_grant(self, txn: Txn, cycle: int, suppressed: bool) -> None:
        addr = txn.addr
        line = self.array.peek(addr)
        assert line is not None
        if txn.is_write:
            line.owner = txn.requestor
            line.sharers.clear()
        else:
            if line.sharers:
                line.sharers.add(txn.requestor)
                line.owner = None
            else:
                line.owner = txn.requestor  # exclusive (E) grant
        line.busy = False
        self.txns.pop(addr, None)
        self._drain(addr, cycle)

    # -- acknowledgements ----------------------------------------------------
    def _on_data_ack(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        txn = self.txns.get(addr)
        if txn is None:
            return  # already self-acknowledged via the circuit (4.6)
        if txn.kind is _TxnKind.FWD:
            line = self.array.peek(addr)
            assert line is not None
            old_owner = line.owner
            if txn.is_write:
                line.owner = txn.requestor
                line.sharers.clear()
            else:
                if old_owner is not None:
                    line.sharers.add(old_owner)
                line.sharers.add(txn.requestor)
                line.owner = None
                line.dirty = True
            line.busy = False
            self.txns.pop(addr, None)
            self._drain(addr, cycle)
        elif txn.kind in (_TxnKind.GRANT,):
            self._complete_grant(txn, cycle, suppressed=False)

    def _on_inv_ack(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        txn = self.txns.get(addr)
        if txn is None:
            return
        txn.acks_needed -= 1
        if txn.acks_needed > 0:
            return
        if txn.kind is _TxnKind.EVICT:
            self._finish_eviction(txn, cycle)
        elif txn.kind is _TxnKind.INV_GRANT:
            line = self.array.peek(addr)
            assert line is not None
            line.sharers = {s for s in line.sharers if s == txn.requestor}
            txn.kind = _TxnKind.GRANT
            reply = self.factory.l2_reply(self.node, txn.requestor, addr,
                                          txn.request, True)
            if txn.circuit_cancelled:
                reply.outcome_hint = "undone"
            reply.payload.circuit_resolved = partial(
                self._on_reply_resolved, txn, reply
            )
            self.ni.enqueue(reply, cycle)

    # -- writebacks ------------------------------------------------------------
    def _on_writeback(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        line = self.array.peek(addr)
        if line is not None and line.owner == msg.src:
            line.owner = None
            line.dirty = line.dirty or msg.payload.exclusive
        elif line is not None:
            line.sharers.discard(msg.src)
        ack = self.factory.l2_wb_ack(self.node, msg.src, addr, msg)
        self.ni.enqueue(ack, cycle)
        if line is not None and not line.busy:
            self._drain(addr, cycle)

    # -- memory ------------------------------------------------------------------
    def _on_memory_data(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        txn = self.txns.get(addr)
        assert txn is not None and txn.kind is _TxnKind.FETCH
        txn.mem_pending = False
        line = self.array.peek(addr)
        assert line is not None
        line.dirty = False
        # Grant straight out of the fetch transaction.
        txn.kind = _TxnKind.GRANT
        reply = self.factory.l2_reply(self.node, txn.requestor, addr,
                                      txn.request, True)
        if txn.circuit_cancelled:
            reply.outcome_hint = "undone"
        reply.payload.circuit_resolved = partial(
            self._on_reply_resolved, txn, reply
        )
        self.ni.enqueue(reply, cycle)

    def _on_memory_ack(self, msg: Message, cycle: int) -> None:
        addr = msg.payload.addr
        txn = self.txns.get(addr)
        if txn is not None and txn.kind is _TxnKind.EVICT:
            self.txns.pop(addr, None)
            self._drain(addr, cycle)

    # -- queued requests ------------------------------------------------------
    def _drain(self, addr: int, cycle: int) -> None:
        queue = self.queues.get(addr)
        while queue:
            line = self.array.peek(addr)
            if addr in self.txns or (line is not None and line.busy):
                break
            self._process_request(queue.popleft(), cycle)
        if queue is not None and not queue:
            self.queues.pop(addr, None)

    # ------------------------------------------------------------------
    def busy(self) -> bool:
        return bool(self.txns) or bool(self.queues) or bool(self._events)
