"""Memory controller tiles (paper: 4 on the chip edges, 160-cycle latency).

A controller answers ``MEM_READ`` with a ``MEMORY_DATA`` line and ``WB_L2``
with a ``MEMORY_ACK`` after the fixed DRAM latency.  Both replies are
circuit-eligible: the L2 bank's request reserves their return path.
"""

from __future__ import annotations

from functools import partial

from repro.coherence.base import ScheduledController
from repro.coherence.messages import Kind, MessageFactory
from repro.noc.flit import Message
from repro.sim.stats import Stats


class MemoryController(ScheduledController):
    """One edge-tile memory controller."""

    def __init__(self, node: int, config, factory: MessageFactory, ni,
                 stats: Stats) -> None:
        super().__init__()
        self.node = node
        self.config = config
        self.factory = factory
        self.ni = ni
        self.stats = stats

    def receive(self, msg: Message, cycle: int) -> None:
        due = cycle + self.config.cache.memory_latency_cycles
        # partials, not lambdas: pending events must survive checkpoint
        # pickling (repro.sim.checkpoint).
        if msg.kind == Kind.MEM_READ:
            self.schedule(due, partial(self._read_done, msg))
        elif msg.kind == Kind.WB_L2:
            self.schedule(due, partial(self._write_done, msg))
        else:  # pragma: no cover - dispatch invariant
            raise ValueError(f"memory controller got {msg.kind}")

    def _read_done(self, msg: Message, cycle: int) -> None:
        self.stats.bump("mem.reads")
        reply = self.factory.memory_data(self.node, msg.src, msg.payload.addr, msg)
        self.ni.enqueue(reply, cycle)

    def _write_done(self, msg: Message, cycle: int) -> None:
        self.stats.bump("mem.writes")
        reply = self.factory.memory_ack(self.node, msg.src, msg.payload.addr, msg)
        self.ni.enqueue(reply, cycle)

    def busy(self) -> bool:
        return bool(self._events)
