"""Set-associative cache arrays with tree pseudo-LRU replacement.

Both the private L1s (32 KB, 4-way) and the shared L2 banks (1 MB, 16-way)
use the same array structure; only the per-line metadata differs (the L2
lines additionally carry directory state, attached by the L2 controller).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Optional, TypeVar

L = TypeVar("L")


class PseudoLruTree:
    """Binary-tree pseudo-LRU for a power-of-two number of ways."""

    def __init__(self, ways: int) -> None:
        if ways < 1 or ways & (ways - 1):
            raise ValueError("pseudo-LRU needs a power-of-two way count")
        self.ways = ways
        self._bits = [False] * max(1, ways - 1)

    def touch(self, way: int) -> None:
        """Mark ``way`` most-recently used (flip the path bits away)."""
        if self.ways == 1:
            return
        node = 0
        span = self.ways
        base = 0
        while span > 1:
            half = span // 2
            go_right = way >= base + half
            self._bits[node] = not go_right  # point away from the used half
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                base += half
            span = half

    def victim(self) -> int:
        """Follow the bits toward the pseudo-least-recently-used way."""
        if self.ways == 1:
            return 0
        node = 0
        span = self.ways
        base = 0
        while span > 1:
            half = span // 2
            go_right = self._bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                base += half
            span = half
        return base


class CacheSet(Generic[L]):
    """One set: way -> line object (``None`` for empty ways)."""

    __slots__ = ("lines", "addrs", "plru")

    def __init__(self, ways: int) -> None:
        self.lines: List[Optional[L]] = [None] * ways
        self.addrs: List[Optional[int]] = [None] * ways
        self.plru = PseudoLruTree(ways)


class CacheArray(Generic[L]):
    """Tag array indexed by block address (block = addr // line_bytes).

    ``block_stride`` handles bank interleaving: a shared L2 bank in an
    N-node chip only sees every N-th block, so its set index must use the
    bank-local block number (block // N) or only 1/N of its sets would
    ever be occupied.
    """

    def __init__(self, sets: int, ways: int, line_bytes: int,
                 block_stride: int = 1) -> None:
        if sets < 1:
            raise ValueError("cache needs at least one set")
        self.sets = sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.block_stride = block_stride
        self._sets: List[CacheSet[L]] = [CacheSet(ways) for _ in range(sets)]
        #: addr -> (set_index, way) for O(1) lookup.
        self._where: Dict[int, int] = {}

    def set_index(self, addr: int) -> int:
        return (addr // self.line_bytes // self.block_stride) % self.sets

    def lookup(self, addr: int) -> Optional[L]:
        way = self._where.get(addr)
        if way is None:
            return None
        cache_set = self._sets[self.set_index(addr)]
        cache_set.plru.touch(way)
        return cache_set.lines[way]

    def peek(self, addr: int) -> Optional[L]:
        """Lookup without updating recency."""
        way = self._where.get(addr)
        if way is None:
            return None
        return self._sets[self.set_index(addr)].lines[way]

    def install(self, addr: int, line: L) -> None:
        """Place ``line`` at a free way; caller must have evicted first."""
        cache_set = self._sets[self.set_index(addr)]
        for way, existing in enumerate(cache_set.lines):
            if existing is None:
                cache_set.lines[way] = line
                cache_set.addrs[way] = addr
                self._where[addr] = way
                cache_set.plru.touch(way)
                return
        raise ValueError(f"no free way in set {self.set_index(addr)}")

    def has_free_way(self, addr: int) -> bool:
        cache_set = self._sets[self.set_index(addr)]
        return any(line is None for line in cache_set.lines)

    def choose_victim(
        self, addr: int, evictable: Callable[[L], bool]
    ) -> Optional[int]:
        """Address of the pseudo-LRU evictable line in ``addr``'s set.

        Walks ways starting from the PLRU choice so busy (non-evictable)
        lines are skipped; returns None when every way is unevictable.
        """
        cache_set = self._sets[self.set_index(addr)]
        start = cache_set.plru.victim()
        for offset in range(self.ways):
            way = (start + offset) % self.ways
            line = cache_set.lines[way]
            if line is not None and evictable(line):
                return cache_set.addrs[way]
        return None

    def remove(self, addr: int) -> Optional[L]:
        way = self._where.pop(addr, None)
        if way is None:
            return None
        cache_set = self._sets[self.set_index(addr)]
        line = cache_set.lines[way]
        cache_set.lines[way] = None
        cache_set.addrs[way] = None
        return line

    def occupancy(self) -> int:
        return len(self._where)

    def items(self):
        """Yield every resident ``(addr, line)`` pair, recency untouched."""
        for cache_set in self._sets:
            for addr, line in zip(cache_set.addrs, cache_set.lines):
                if addr is not None:
                    yield addr, line

    def __contains__(self, addr: int) -> bool:
        return addr in self._where
