"""Shared controller machinery: per-cycle scheduled actions."""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class ScheduledController:
    """Base for cache/memory controllers: a heap of (due_cycle, action).

    Controllers receive messages from the NI during the NI's tick and
    schedule their handlers ``latency`` cycles later, modelling the array /
    directory / DRAM access time.  Handlers run during the controller's own
    tick, which the system builder orders before the NIs so that a response
    enqueued at cycle ``c`` first injects at ``c + 1``.
    """

    def __init__(self) -> None:
        self._events: List[Tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0

    def schedule(self, due: int, action: Callable[[int], None]) -> None:
        """Run ``action`` during the tick of cycle ``due``."""
        heapq.heappush(self._events, (due, self._seq, action))
        self._seq += 1

    def tick(self, cycle: int) -> None:
        """Execute every action whose due cycle has arrived."""
        events = self._events
        while events and events[0][0] <= cycle:
            _due, _seq, action = heapq.heappop(events)
            action(cycle)

    def pending_events(self) -> int:
        """Scheduled actions not yet executed (drain detection)."""
        return len(self._events)
