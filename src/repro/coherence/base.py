"""Shared controller machinery: per-cycle scheduled actions."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class ScheduledController:
    """Base for cache/memory controllers: a heap of (due_cycle, action).

    Controllers receive messages from the NI during the NI's tick and
    schedule their handlers ``latency`` cycles later, modelling the array /
    directory / DRAM access time.  Handlers run during the controller's own
    tick, which the system builder orders before the NIs so that a response
    enqueued at cycle ``c`` first injects at ``c + 1``.

    The event heap doubles as the activity report for the simulator
    kernel: a controller with no pending events sleeps, and every
    ``schedule`` call (which always comes from a tick or receive at an
    earlier cycle - handler latencies are >= 1) pokes ``kernel_wake`` so
    a sleeping controller is rescheduled for its next due handler.
    """

    def __init__(self) -> None:
        self._events: List[Tuple[int, int, Callable[[int], None]]] = []
        self._seq = 0
        #: Set by the simulator kernel; pokes this controller awake.
        self.kernel_wake = None

    def schedule(self, due: int, action: Callable[[int], None]) -> None:
        """Run ``action`` during the tick of cycle ``due``."""
        heapq.heappush(self._events, (due, self._seq, action))
        self._seq += 1
        if self.kernel_wake is not None:
            self.kernel_wake(due)

    def tick(self, cycle: int) -> None:
        """Execute every action whose due cycle has arrived."""
        events = self._events
        while events and events[0][0] <= cycle:
            _due, _seq, action = heapq.heappop(events)
            action(cycle)

    def next_wake(self, cycle: int) -> Optional[int]:
        """Sleep until the next scheduled handler (None = until receive)."""
        if not self._events:
            return None
        return self._events[0][0]

    def pending_events(self) -> int:
        """Scheduled actions not yet executed (drain detection)."""
        return len(self._events)
