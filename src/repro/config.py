"""Unified configuration resolution for every ``REPRO_*`` knob.

The harness grew one environment variable per PR -- ``REPRO_JOBS``,
``REPRO_CACHE``, ``REPRO_CHECK``, ``REPRO_SHARDS``, ``REPRO_CHECKPOINT``,
``REPRO_TOPOLOGY``, ... -- each parsed ad hoc at its point of use.  This
module is the one place that knows them all:

* a declarative :data:`SETTINGS` registry (name, environment variable,
  type, default, constraint) covering every knob;
* :func:`overrides` -- resolve the whole configuration with explicit
  precedence **kwargs > environment > defaults**, returning per-setting
  values *and* the source each value came from;
* :func:`resolve` -- resolve a single setting under the same rules;
* typed :class:`ConfigError` (a ``ValueError`` subclass, so existing
  ``except ValueError`` call sites keep working) that names the
  offending source: the environment variable for environment values,
  ``<name>= (keyword)`` for keyword overrides.

``python -m repro.harness env`` prints the effective resolved
configuration as a table (value + source per setting).

The legacy per-module resolvers (``repro.harness.parallel.resolve_jobs``,
``repro.harness.experiment.scale`` / ``env_flag``, ...) now delegate to
this layer, so a malformed value produces the same typed error no matter
which entry point touches it first.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ConfigError",
    "Resolved",
    "SETTINGS",
    "describe",
    "overrides",
    "resolve",
    "setting",
]


class ConfigError(ValueError):
    """A configuration value failed validation.

    ``source`` names where the offending value came from -- the
    environment variable (e.g. ``"REPRO_JOBS"``) or the keyword argument
    (e.g. ``"jobs= (keyword)"``) -- and is always embedded in the
    message so the user can find and fix it.
    """

    def __init__(self, name: str, source: str, message: str) -> None:
        super().__init__(message)
        self.setting = name
        self.source = source


# ----------------------------------------------------------------------
# Value parsers.  Each takes (raw, source, setting) and either returns
# the typed value or raises a ConfigError naming the source.
# ----------------------------------------------------------------------

_FLAG_TRUE = {"1", "true", "yes", "on"}
_FLAG_FALSE = {"", "0", "false", "no", "off"}


def _parse_bool(raw, source: str, setting: "Setting"):
    if isinstance(raw, bool):
        return raw
    value = str(raw).strip().lower()
    if value in _FLAG_TRUE:
        return True
    if value in _FLAG_FALSE:
        return False
    raise ConfigError(
        setting.name, source,
        f"{source} must be one of 1/0/true/false/yes/no/on/off, got {raw!r}"
    )


def _parse_int(minimum: Optional[int] = None, hint: str = ""):
    def parse(raw, source: str, setting: "Setting"):
        try:
            value = int(raw)
        except (TypeError, ValueError):
            raise ConfigError(
                setting.name, source,
                f"{source} must be an integer{hint}, got {raw!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise ConfigError(
                setting.name, source,
                f"{source} must be >= {minimum}{hint}, got {raw!r}"
            )
        return value

    return parse


def _parse_float(minimum_exclusive: Optional[float] = None, hint: str = ""):
    def parse(raw, source: str, setting: "Setting"):
        try:
            value = float(raw)
        except (TypeError, ValueError):
            raise ConfigError(
                setting.name, source,
                f"{source} must be a number{hint}, got {raw!r}"
            ) from None
        if not math.isfinite(value) or (
            minimum_exclusive is not None and value <= minimum_exclusive
        ):
            raise ConfigError(
                setting.name, source,
                f"{source} must be a finite number"
                + (f" > {minimum_exclusive:g}" if minimum_exclusive is not None
                   else "")
                + f"{hint}, got {raw!r}"
            )
        return value

    return parse


def _parse_str(raw, source: str, setting: "Setting"):
    return str(raw)


def _parse_topology(raw, source: str, setting: "Setting"):
    value = str(raw).strip().lower()
    if not value:
        return ""
    from repro.noc.topology import TOPOLOGY_CHOICES

    if value not in TOPOLOGY_CHOICES:
        raise ConfigError(
            setting.name, source,
            f"{source} must be one of {', '.join(TOPOLOGY_CHOICES)}, "
            f"got {raw!r}"
        )
    return value


# Bespoke parsers preserving the exact long-standing messages of the
# legacy resolvers (tests match on them).

def _parse_jobs(raw, source: str, setting: "Setting"):
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            setting.name, source,
            f"{source} must be a non-negative integer "
            f"(0 = one worker per CPU core), got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(
            setting.name, source,
            f"{source} / --jobs must be >= 0 "
            f"(0 = one worker per CPU core), got {value}"
        )
    return value


def _parse_scale(raw, source: str, setting: "Setting"):
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            setting.name, source,
            f"{source} must be a number (simulation-length multiplier, "
            f"e.g. {source}=0.5), got {raw!r}"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise ConfigError(
            setting.name, source,
            f"{source} must be a finite number > 0 (it multiplies the "
            f"measured instruction quanta), got {raw!r}"
        )
    return value


# ----------------------------------------------------------------------
# The registry.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Setting:
    """One configurable knob: identity, type and constraint."""

    name: str
    env: str
    default: object
    parse: Callable
    help: str


#: Every REPRO_* knob, in display order.  ``default`` is the effective
#: value when neither a keyword override nor the environment supplies
#: one (some call sites apply further context-specific defaults, e.g.
#: ``resolve_jobs(default=...)``).
SETTINGS: Dict[str, Setting] = {}


def _register(name: str, env: str, default, parse, help_text: str) -> None:
    SETTINGS[name] = Setting(name, env, default, parse, help_text)


_register("jobs", "REPRO_JOBS", None, _parse_jobs,
          "worker processes for sweeps (0 = one per CPU core)")
_register("scale", "REPRO_SCALE", 1.0, _parse_scale,
          "simulation-length multiplier")
_register("full", "REPRO_FULL", False, _parse_bool,
          "sweep all 22 workloads instead of the 6-workload subset")
_register("cache", "REPRO_CACHE", "", _parse_str,
          "result store path: a .json file (legacy) or a sharded directory")
_register("cache_shards", "REPRO_CACHE_SHARDS", 0,
          _parse_int(0, " (shard files; 0 = auto-detect layout)"),
          "shard count when creating a sharded result store")
_register("check", "REPRO_CHECK", False, _parse_bool,
          "attach the invariant monitor inside every experiment")
_register("check_interval", "REPRO_CHECK_INTERVAL", 2000,
          _parse_int(1, " (cycles between invariant checks)"),
          "cycles between invariant monitor audits")
_register("failfast", "REPRO_FAILFAST", False, _parse_bool,
          "abort sweeps on the first failing run")
_register("crash_dir", "REPRO_CRASH_DIR", os.path.join("out", "crash"),
          _parse_str, "directory for crash reports")
_register("shards", "REPRO_SHARDS", 1,
          _parse_int(1, " (single-run mesh shards)"),
          "split each run across N worker processes (bit-identical)")
_register("checkpoint", "REPRO_CHECKPOINT", 0,
          _parse_int(1, " (cycles between durable checkpoints)"),
          "cycles between durable checkpoints (unset = off)")
_register("checkpoint_dir", "REPRO_CHECKPOINT_DIR",
          os.path.join("out", "checkpoint"), _parse_str,
          "checkpoint root directory")
_register("resume", "REPRO_RESUME", False, _parse_bool,
          "resume interrupted runs from their checkpoints")
_register("topology", "REPRO_TOPOLOGY", "mesh", _parse_topology,
          "network topology (mesh, torus or cmesh)")
_register("shard_timeout", "REPRO_SHARD_TIMEOUT", 1200.0,
          _parse_float(0.0, " of seconds"),
          "seconds before a silent shard worker is declared dead")
_register("shard_respawns", "REPRO_SHARD_RESPAWNS", 2,
          _parse_int(0, ""),
          "respawn budget per shard worker")
_register("service", "REPRO_SERVICE", "", _parse_str,
          "job-daemon address (unix socket path or host:port); "
          "when set, repro.api routes work through the daemon")
_register("service_workers", "REPRO_SERVICE_WORKERS", 0,
          _parse_int(0, " (0 = one per CPU core)"),
          "daemon worker-fleet size")


@dataclass(frozen=True)
class Resolved:
    """One resolved setting: its value and where it came from."""

    name: str
    value: object
    source: str  # "default", the env var name, or "<name>= (keyword)"


def setting(name: str) -> Setting:
    """The registry entry for ``name`` (KeyError for unknown settings)."""
    return SETTINGS[name]


def resolve(name: str, override=None, default=None):
    """Resolve one setting: ``override`` > environment > default.

    ``default`` replaces the registry default when not None (call sites
    with context-dependent defaults use it).  Raises :class:`ConfigError`
    naming the offending source on a malformed value.
    """
    return _resolve(name, override, default).value


def _resolve(name: str, override=None, default=None) -> Resolved:
    entry = SETTINGS[name]
    if override is not None:
        source = f"{name}= (keyword)"
        return Resolved(name, entry.parse(override, source, entry), source)
    raw = os.environ.get(entry.env)
    if raw is not None and raw.strip() != "":
        return Resolved(name, entry.parse(raw, entry.env, entry), entry.env)
    value = default if default is not None else entry.default
    return Resolved(name, value, "default")


def overrides(**kwargs) -> Dict[str, Resolved]:
    """Resolve every registered setting (kwargs > environment > defaults).

    Unknown keyword names raise :class:`ConfigError` immediately, so a
    typo cannot silently fall through to the environment.
    """
    unknown = sorted(set(kwargs) - set(SETTINGS))
    if unknown:
        raise ConfigError(
            unknown[0], f"{unknown[0]}= (keyword)",
            f"unknown setting(s) {', '.join(unknown)}; valid settings: "
            f"{', '.join(sorted(SETTINGS))}"
        )
    return {
        name: _resolve(name, kwargs.get(name))
        for name in SETTINGS
    }


def describe(**kwargs) -> List[Tuple[str, str, str, str]]:
    """Rows for the ``repro.harness env`` display.

    Returns ``(name, env var, rendered value, source)`` per setting; a
    malformed environment value renders as ``<error: ...>`` instead of
    aborting the whole table.
    """
    rows = []
    for name, entry in SETTINGS.items():
        try:
            resolved = _resolve(name, kwargs.get(name))
            value, source = resolved.value, resolved.source
        except ConfigError as exc:
            value, source = f"<error: {exc}>", entry.env
        rows.append((name, entry.env, repr(value), source))
    return rows
