"""Partitioned chips (the paper's section-5.5 scalability argument).

The paper argues that future many-core chips will be space-partitioned
(citing Tilera's Multicore Hardwall) and that Reactive Circuits can then
"be used independently inside each partition, eliminating concerns about
the need to scale to a larger number of cores".

This module builds that usage model: the mesh is split into rectangular
partitions, each running its own workload against its own slice of the
shared L2 (addresses are homed inside the owning partition, so request /
reply traffic never crosses a partition boundary - XY/YX dimension-order
routing keeps minimal paths inside any rectangle).  Only memory traffic
leaves a partition, as on real tiled chips where DRAM controllers sit on
the die edge and are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.trace import AccessStream
from repro.cpu.workloads import WorkloadProfile
from repro.noc.topology import Mesh
from repro.sim.config import SystemConfig
from repro.sim.rng import DeterministicRng
from repro.system import CmpSystem

#: Address-space stride separating partitions' shared regions (lines).
_PARTITION_SHARED_STRIDE = 1 << 20


@dataclass(frozen=True)
class Partition:
    """A rectangle of tiles running one workload."""

    workload: WorkloadProfile
    x0: int
    y0: int
    width: int
    height: int

    def nodes(self, mesh: Mesh) -> List[int]:
        out = []
        for y in range(self.y0, self.y0 + self.height):
            for x in range(self.x0, self.x0 + self.width):
                out.append(mesh.node_at(x, y))
        return out


def quadrants(mesh: Mesh, workloads: Sequence[WorkloadProfile]
              ) -> List[Partition]:
    """Split a mesh into four equal quadrants running ``workloads``."""
    if len(workloads) != 4:
        raise ValueError("quadrants() needs exactly four workloads")
    half = mesh.side // 2
    if half * 2 != mesh.side:
        raise ValueError("mesh side must be even for quadrants")
    corners = [(0, 0), (half, 0), (0, half), (half, half)]
    return [
        Partition(workload, x, y, half, half)
        for workload, (x, y) in zip(workloads, corners)
    ]


def build_partitioned_system(config: SystemConfig,
                             partitions: Sequence[Partition]) -> CmpSystem:
    """A CMP whose coherence domains are isolated per partition.

    Every tile must belong to exactly one partition.  Each partition's
    addresses (private regions, its own shared region) are homed on its
    own L2 banks, so all request/reply/forward/invalidate traffic - and
    therefore every reactive circuit - stays inside the partition.
    """
    mesh = Mesh(config.mesh_side)
    line = config.cache.line_bytes
    owner_of_node: Dict[int, int] = {}
    for index, part in enumerate(partitions):
        for node in part.nodes(mesh):
            if node in owner_of_node:
                raise ValueError(f"node {node} assigned to two partitions")
            owner_of_node[node] = index
    if len(owner_of_node) != mesh.n_nodes:
        missing = set(range(mesh.n_nodes)) - set(owner_of_node)
        raise ValueError(f"nodes without a partition: {sorted(missing)}")

    rng = DeterministicRng(config.seed)
    part_nodes: List[List[int]] = [p.nodes(mesh) for p in partitions]
    streams: List[Optional[AccessStream]] = [None] * mesh.n_nodes
    for index, part in enumerate(partitions):
        shared_base = index * _PARTITION_SHARED_STRIDE
        part_rng = rng.stream(f"partition/{index}/{part.workload.name}")
        local = part.workload.streams(len(part_nodes[index]), line, part_rng)
        for stream, node in zip(local, part_nodes[index]):
            # Re-base the stream onto the global core id and the
            # partition's shared-region window.
            rebased = AccessStream(stream.params, node, line,
                                   stream.rng, shared_base_line=shared_base)
            streams[node] = rebased

    #: Home addresses on the banks of the partition that owns them.  The
    #: partition is identified from the address itself: private regions
    #: encode their core (hence partition), shared regions their window.
    def home_of(addr: int) -> int:
        block = addr // line
        part_index = _partition_of_block(block, owner_of_node, streams)
        nodes = part_nodes[part_index]
        return nodes[block % len(nodes)]

    def _partition_of_block(block: int, owners, streams_) -> int:
        from repro.cpu.trace import _COLD_BASE_LINE, _PRIVATE_BASE_LINE, \
            _PRIVATE_SPAN_LINES

        if block >= _COLD_BASE_LINE:
            core = (block - _COLD_BASE_LINE) // _PRIVATE_SPAN_LINES
            return owners[min(core, mesh.n_nodes - 1)]
        if block >= _PRIVATE_BASE_LINE:
            core = (block - _PRIVATE_BASE_LINE) // _PRIVATE_SPAN_LINES
            return owners[min(core, mesh.n_nodes - 1)]
        return min(block // _PARTITION_SHARED_STRIDE, len(partitions) - 1)

    system = CmpSystem(config, streams=streams, home_of=home_of)
    system.partitions = list(partitions)  # type: ignore[attr-defined]
    system.partition_nodes = part_nodes  # type: ignore[attr-defined]
    return system


def install_crossing_counter(system: CmpSystem) -> None:
    """Count delivered messages whose endpoints sit in different
    partitions (memory traffic excluded).  Call before running; results
    land in ``partition.crossings`` / ``partition.messages``."""
    from repro.coherence.messages import Kind

    owner: Dict[int, int] = {}
    for index, nodes in enumerate(system.partition_nodes):
        for node in nodes:
            owner[node] = index
    memory_kinds = {Kind.MEM_READ, Kind.WB_L2, Kind.MEMORY_DATA,
                    Kind.MEMORY_ACK}
    for ni in system.network.interfaces:
        inner = ni.deliver

        def wrapped(msg, cycle, _inner=inner):
            if msg.kind not in memory_kinds:
                system.stats.bump("partition.messages")
                if owner[msg.src] != owner[msg.dest]:
                    system.stats.bump("partition.crossings")
            _inner(msg, cycle)

        ni.deliver = wrapped


def traffic_crosses_partitions(system: CmpSystem) -> Tuple[int, int]:
    """(cross-partition, total) coherence messages delivered so far."""
    return (system.stats.counter("partition.crossings"),
            system.stats.counter("partition.messages"))
