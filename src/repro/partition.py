"""Partitioned chips (the paper's section-5.5 scalability argument).

The paper argues that future many-core chips will be space-partitioned
(citing Tilera's Multicore Hardwall) and that Reactive Circuits can then
"be used independently inside each partition, eliminating concerns about
the need to scale to a larger number of cores".

This module builds that usage model: the mesh is split into rectangular
partitions, each running its own workload against its own slice of the
shared L2 (addresses are homed inside the owning partition, so request /
reply traffic never crosses a partition boundary - XY/YX dimension-order
routing keeps minimal paths inside any rectangle).  Only memory traffic
leaves a partition, as on real tiled chips where DRAM controllers sit on
the die edge and are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.trace import AccessStream
from repro.cpu.workloads import WorkloadProfile
from repro.noc.topology import Topology, build_topology
from repro.sim.config import SystemConfig
from repro.sim.rng import DeterministicRng
from repro.system import CmpSystem

#: Address-space stride separating partitions' shared regions (lines).
_PARTITION_SHARED_STRIDE = 1 << 20


@dataclass(frozen=True)
class Partition:
    """A rectangle of the router grid running one workload."""

    workload: WorkloadProfile
    x0: int
    y0: int
    width: int
    height: int

    def nodes(self, topo: Topology) -> List[int]:
        """All nodes of the routers inside the rectangle, row-major."""
        out: List[int] = []
        for y in range(self.y0, self.y0 + self.height):
            for x in range(self.x0, self.x0 + self.width):
                out.extend(topo.nodes_of(topo.router_at(x, y)))
        return out


def quadrants(topo: Topology, workloads: Sequence[WorkloadProfile]
              ) -> List[Partition]:
    """Split a topology's grid into four quadrants running ``workloads``."""
    if len(workloads) != 4:
        raise ValueError("quadrants() needs exactly four workloads")
    width, height = topo.grid_shape
    half_w, half_h = width // 2, height // 2
    if half_w * 2 != width or half_h * 2 != height:
        raise ValueError("router grid must be even-sided for quadrants")
    corners = [(0, 0), (half_w, 0), (0, half_h), (half_w, half_h)]
    return [
        Partition(workload, x, y, half_w, half_h)
        for workload, (x, y) in zip(workloads, corners)
    ]


def build_partitioned_system(config: SystemConfig,
                             partitions: Sequence[Partition]) -> CmpSystem:
    """A CMP whose coherence domains are isolated per partition.

    Every tile must belong to exactly one partition.  Each partition's
    addresses (private regions, its own shared region) are homed on its
    own L2 banks, so all request/reply/forward/invalidate traffic - and
    therefore every reactive circuit - stays inside the partition.
    """
    topo = build_topology(config)
    line = config.cache.line_bytes
    owner_of_node: Dict[int, int] = {}
    for index, part in enumerate(partitions):
        for node in part.nodes(topo):
            if node in owner_of_node:
                raise ValueError(f"node {node} assigned to two partitions")
            owner_of_node[node] = index
    if len(owner_of_node) != topo.n_nodes:
        missing = set(range(topo.n_nodes)) - set(owner_of_node)
        raise ValueError(f"nodes without a partition: {sorted(missing)}")

    rng = DeterministicRng(config.seed)
    part_nodes: List[List[int]] = [p.nodes(topo) for p in partitions]
    streams: List[Optional[AccessStream]] = [None] * topo.n_nodes
    for index, part in enumerate(partitions):
        shared_base = index * _PARTITION_SHARED_STRIDE
        part_rng = rng.stream(f"partition/{index}/{part.workload.name}")
        local = part.workload.streams(len(part_nodes[index]), line, part_rng)
        for stream, node in zip(local, part_nodes[index]):
            # Re-base the stream onto the global core id and the
            # partition's shared-region window.
            rebased = AccessStream(stream.params, node, line,
                                   stream.rng, shared_base_line=shared_base)
            streams[node] = rebased

    #: Home addresses on the banks of the partition that owns them.  The
    #: partition is identified from the address itself: private regions
    #: encode their core (hence partition), shared regions their window.
    def home_of(addr: int) -> int:
        block = addr // line
        part_index = _partition_of_block(block, owner_of_node, streams)
        nodes = part_nodes[part_index]
        return nodes[block % len(nodes)]

    def _partition_of_block(block: int, owners, streams_) -> int:
        from repro.cpu.trace import _COLD_BASE_LINE, _PRIVATE_BASE_LINE, \
            _PRIVATE_SPAN_LINES

        if block >= _COLD_BASE_LINE:
            core = (block - _COLD_BASE_LINE) // _PRIVATE_SPAN_LINES
            return owners[min(core, topo.n_nodes - 1)]
        if block >= _PRIVATE_BASE_LINE:
            core = (block - _PRIVATE_BASE_LINE) // _PRIVATE_SPAN_LINES
            return owners[min(core, topo.n_nodes - 1)]
        return min(block // _PARTITION_SHARED_STRIDE, len(partitions) - 1)

    system = CmpSystem(config, streams=streams, home_of=home_of)
    system.partitions = list(partitions)  # type: ignore[attr-defined]
    system.partition_nodes = part_nodes  # type: ignore[attr-defined]
    return system


def install_crossing_counter(system: CmpSystem) -> None:
    """Count delivered messages whose endpoints sit in different
    partitions (memory traffic excluded).  Call before running; results
    land in ``partition.crossings`` / ``partition.messages``."""
    from repro.coherence.messages import Kind

    owner: Dict[int, int] = {}
    for index, nodes in enumerate(system.partition_nodes):
        for node in nodes:
            owner[node] = index
    memory_kinds = {Kind.MEM_READ, Kind.WB_L2, Kind.MEMORY_DATA,
                    Kind.MEMORY_ACK}
    for ni in system.network.interfaces:
        inner = ni.deliver

        def wrapped(msg, cycle, _inner=inner):
            if msg.kind not in memory_kinds:
                system.stats.bump("partition.messages")
                if owner[msg.src] != owner[msg.dest]:
                    system.stats.bump("partition.crossings")
            _inner(msg, cycle)

        ni.deliver = wrapped


def traffic_crosses_partitions(system: CmpSystem) -> Tuple[int, int]:
    """(cross-partition, total) coherence messages delivered so far."""
    return (system.stats.counter("partition.crossings"),
            system.stats.counter("partition.messages"))


# ---------------------------------------------------------------------------
# Shard geometry for the parallel engine (repro.sim.shard)
#
# Unlike the paper's partitions above, shards do not constrain traffic:
# they split the chip across worker processes and any cross-shard link
# becomes a window-buffered boundary channel.  Any exact cover of the
# topology is therefore *correct*; horizontal router-grid row bands
# minimise the number of boundary links under XY/YX routing and keep the
# geometry trivial to reason about (each shard is a contiguous run of
# rows).  On a torus the wraparound links between the first and last
# band simply become extra boundary channels - boundary_links() derives
# them from the topology adjacency, not from band arithmetic.


def shard_bands(topo: Topology, n_shards: int) -> List[List[int]]:
    """Split ``topo`` into ``n_shards`` horizontal router-row bands.

    Bands are assigned top to bottom; on ragged splits (grid height not
    a multiple of ``n_shards``) the first ``height % n_shards`` bands
    get one extra row, so band heights differ by at most one.  Every
    node lands in exactly one band and every band holds at least one
    full row of routers (all nodes of a router share its band).
    """
    width, height = topo.grid_shape
    if not 1 <= n_shards <= height:
        raise ValueError(
            f"need 1 <= shards <= grid height, got {n_shards} on a "
            f"{width}x{height} {topo.name}"
        )
    base, extra = divmod(height, n_shards)
    bands: List[List[int]] = []
    y = 0
    for index in range(n_shards):
        band_height = base + (1 if index < extra else 0)
        bands.append([node
                      for yy in range(y, y + band_height)
                      for x in range(width)
                      for node in topo.nodes_of(topo.router_at(x, yy))])
        y += band_height
    assert y == height
    return bands


def shard_assignment(topo: Topology, n_shards: int) -> List[int]:
    """``assignment[node] -> shard index`` for the row-band split."""
    assignment = [-1] * topo.n_nodes
    for index, nodes in enumerate(shard_bands(topo, n_shards)):
        for node in nodes:
            if assignment[node] != -1:
                raise ValueError(f"node {node} assigned to two shards")
            assignment[node] = index
    missing = [n for n, s in enumerate(assignment) if s == -1]
    if missing:
        raise ValueError(f"nodes without a shard: {missing}")
    return assignment


def router_shard(topo: Topology, assignment: Sequence[int],
                 router: int) -> int:
    """Shard of ``router`` under a per-node ``assignment``.

    Row-band splits never divide a router's local nodes across shards,
    so the router's shard is its first node's shard.
    """
    return assignment[topo.nodes_of(router)[0]]


def boundary_links(topo: Topology, assignment: Sequence[int]
                   ) -> List[Tuple[int, int, int]]:
    """Directed links ``(router, port, neighbor_router)`` crossing shards.

    The edges are exactly the topology adjacency crossing the cut (on a
    torus that includes the wraparound links), enumerated in a canonical
    order (ascending router, then port value) so every worker process
    derives the identical boundary-channel table from the same
    assignment.  ``assignment`` maps *nodes* to shards; all local nodes
    of a router share its shard.
    """
    edges: List[Tuple[int, int, int]] = []
    for router in range(topo.n_routers):
        shard = router_shard(topo, assignment, router)
        for port, neighbor, _back in topo.neighbors(router):
            if shard != router_shard(topo, assignment, neighbor):
                edges.append((router, port, neighbor))
    return edges
