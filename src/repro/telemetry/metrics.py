"""Time-series metric probes sampled on a kernel-friendly cadence.

A :class:`MetricRegistry` holds named probes - zero-argument-ish callables
``fn(cycle) -> float`` - and a shared cycle axis.  A :class:`MetricSampler`
watchdog invokes :meth:`MetricRegistry.sample` every ``interval`` cycles.

The sampler follows the :class:`~repro.validate.invariants.InvariantMonitor`
pattern exactly: it is a *read-only* simulator watchdog, so attaching it
never perturbs simulation state - stats counters and finish cycles stay
bit-identical to an unsampled run - and its ``next_due`` keeps the
activity-driven kernel's fast-forward legal (quiet gaps only ever stop at
sampling boundaries, where the hook actually runs).

Probe factories (:func:`counter_rate`, :func:`ratio_delta`,
:func:`mean_delta`, :func:`histogram_percentile_delta`, :func:`gauge`)
turn the cumulative :class:`~repro.sim.stats.Stats` accumulators into
*interval* values: each sample answers "what happened since the previous
sample", which is the time-resolved view the end-of-run aggregates cannot
give.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Callable, Dict, List, Optional

from repro.sim.stats import Stats

Probe = Callable[[int], float]


# ----------------------------------------------------------------------
# Probe factories: cumulative Stats accumulators -> per-interval values.
# ----------------------------------------------------------------------
def gauge(fn: Callable[[int], float]) -> Probe:
    """An instantaneous probe; ``fn(cycle)`` is reported verbatim."""
    return fn


def counter_rate(stats: Stats, key: str, interval: int) -> Probe:
    """Counter delta per cycle over the sampling interval."""
    last = [0]

    def probe(cycle: int) -> float:
        current = stats.counter(key)
        delta = current - last[0]
        last[0] = current
        return delta / interval

    return probe


def ratio_delta(stats: Stats, num_key: str, den_key: str) -> Probe:
    """Interval ratio of two counters (e.g. circuit hits / replies).

    Reports ``delta(num) / delta(den)`` since the previous sample, or 0.0
    for intervals where the denominator did not move.
    """
    last = [0, 0]

    def probe(cycle: int) -> float:
        num = stats.counter(num_key)
        den = stats.counter(den_key)
        d_num = num - last[0]
        d_den = den - last[1]
        last[0] = num
        last[1] = den
        return d_num / d_den if d_den else 0.0

    return probe


def mean_delta(stats: Stats, key: str) -> Probe:
    """Interval mean of a :class:`~repro.sim.stats.MeanStat` stream.

    Uses total/count deltas, so it reports the mean of only the samples
    observed since the previous metric sample (0.0 for empty intervals).
    """
    last = [0.0, 0]

    def probe(cycle: int) -> float:
        stat = stats.means.get(key)
        total = stat.total if stat is not None else 0.0
        count = stat.count if stat is not None else 0
        d_total = total - last[0]
        d_count = count - last[1]
        last[0] = total
        last[1] = count
        return d_total / d_count if d_count else 0.0

    return probe


def histogram_percentile_delta(stats: Stats, key: str, p: float) -> Probe:
    """Percentile ``p`` of a histogram's *interval* distribution.

    Snapshots the histogram's buckets each sample and computes the
    percentile over the bucket-count differences, i.e. over only the
    values recorded since the previous sample (0.0 for empty intervals).
    """
    last_buckets: Dict[int, int] = {}
    last_count = [0]

    def probe(cycle: int) -> float:
        hist = stats.histograms.get(key)
        if hist is None:
            return 0.0
        fresh = hist.count - last_count[0]
        last_count[0] = hist.count
        if fresh <= 0:
            last_buckets.clear()
            last_buckets.update(hist.buckets)
            return 0.0
        target = max(1, int(round(fresh * p / 100.0)))
        seen = 0
        value = 0.0
        for bucket in sorted(hist.buckets):
            delta = hist.buckets[bucket] - last_buckets.get(bucket, 0)
            if delta <= 0:
                continue
            seen += delta
            value = bucket * hist.bucket_width
            if seen >= target:
                break
        last_buckets.clear()
        last_buckets.update(hist.buckets)
        return value

    return probe


# ----------------------------------------------------------------------
# Registry + sampler.
# ----------------------------------------------------------------------
class MetricRegistry:
    """Named time-series probes sharing one cycle axis.

    Probes are sampled in registration order; every stream therefore has
    exactly ``len(registry.cycles)`` points and rows export cleanly to
    CSV/JSON.
    """

    def __init__(self) -> None:
        self.cycles: List[int] = []
        self._order: List[str] = []
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, List[float]] = {}
        self._subscribers: List[Callable[[int, Dict[str, float]], None]] = []

    def add_probe(self, name: str, probe: Probe) -> None:
        if name in self._probes:
            raise ValueError(f"duplicate metric probe {name!r}")
        self._order.append(name)
        self._probes[name] = probe
        self._series[name] = []

    def subscribe(self, fn: Callable[[int, Dict[str, float]], None]) -> None:
        """Call ``fn(cycle, {name: value})`` after every sample.

        This is the live-streaming hook: the service daemon registers a
        subscriber that forwards each sample to interested clients while
        the run is still in flight.  Subscribers observe values, never
        produce them, so subscribed runs stay bit-identical.
        """
        self._subscribers.append(fn)

    def names(self) -> List[str]:
        return list(self._order)

    def sample(self, cycle: int) -> None:
        self.cycles.append(cycle)
        for name in self._order:
            self._series[name].append(self._probes[name](cycle))
        if self._subscribers:
            values = {name: self._series[name][-1] for name in self._order}
            for fn in self._subscribers:
                fn(cycle, values)

    def series(self, name: str) -> List[float]:
        return self._series[name]

    def __len__(self) -> int:
        return len(self.cycles)

    # -- export --------------------------------------------------------
    def rows(self) -> List[List[float]]:
        """One row per sample: ``[cycle, stream0, stream1, ...]``."""
        columns = [self._series[name] for name in self._order]
        return [
            [cycle] + [column[i] for column in columns]
            for i, cycle in enumerate(self.cycles)
        ]

    def as_dict(self) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {"cycle": list(self.cycles)}
        for name in self._order:
            out[name] = list(self._series[name])
        return out

    def write_csv(self, path: str) -> str:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["cycle"] + self._order)
            writer.writerows(self.rows())
        return path

    def write_json(self, path: str) -> str:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1)
        return path


class MetricSampler:
    """Read-only simulator watchdog driving a :class:`MetricRegistry`.

    Samples on every ``interval`` boundary (cycle 0 is skipped: every
    delta probe would report an empty interval).  ``next_due`` bounds the
    kernel's global fast-forward to sampling boundaries so cadence is
    exact even through quiet gaps, while never forcing any *component*
    awake - which is why sampled runs stay bit-identical.
    """

    def __init__(self, registry: MetricRegistry, interval: int = 1000) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = interval
        self._sim = None

    def attach(self, sim) -> "MetricSampler":
        sim.add_watchdog(self)
        self._sim = sim
        return self

    def detach(self) -> None:
        if self._sim is not None:
            self._sim.remove_watchdog(self)
            self._sim = None

    def __call__(self, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval:
            return
        self.registry.sample(cycle)

    def next_due(self, cycle: int) -> int:
        remainder = cycle % self.interval
        if remainder == 0 and cycle != 0:
            return cycle
        return cycle + self.interval - remainder
