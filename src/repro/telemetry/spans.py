"""Message-lifecycle spans and the Chrome-trace (Perfetto) exporter.

A :class:`SpanRecorder` is the observer object routers and network
interfaces call through their ``observer`` hook (guarded by
``observer is not None``, so disabled telemetry costs one attribute test
per event site).  It assembles, per message uid, the lifecycle

    enqueue -> plan -> inject -> (reservation placed / circuit hit /
    fallback) -> eject

and exports it two ways:

* :meth:`chrome_trace` / :meth:`write_chrome_trace`: the Chrome trace
  event format (``{"traceEvents": [...]}``) that https://ui.perfetto.dev
  loads directly.  One process per source node, one track per virtual
  network; each message is a complete ("X") slice spanning enqueue to
  eject with a nested slice for its in-network flight, and circuit
  reservations/hits appear as instant events on the owning router's
  process.  Cycles are exported as microseconds (1 cycle == 1 us).
* :meth:`breakdown_table`: a per-class latency breakdown (queue vs.
  network, packet vs. circuit) as an ASCII table.

Recording is bounded by ``limit``: once that many messages have been
opened, *new* messages are counted in :attr:`dropped` instead of
recorded (in-flight ones still complete), keeping memory use flat on
long runs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.sim.stats import Histogram, MeanStat


class MessageSpan:
    """Lifecycle record of one message (one leg; scroungers re-open)."""

    __slots__ = (
        "uid", "kind", "src", "dest", "vn", "enqueued", "planned", "plan_kind",
        "injected", "on_circuit", "ejected", "cls", "outcome", "hits",
        "reservations", "relayed",
    )

    def __init__(self, uid: int, kind: str, src: int, dest: int, vn: int,
                 enqueued: int) -> None:
        self.uid = uid
        self.kind = kind
        self.src = src
        self.dest = dest
        self.vn = vn
        self.enqueued = enqueued
        self.planned: Optional[int] = None
        self.plan_kind: Optional[str] = None
        self.injected: Optional[int] = None
        self.on_circuit = False
        self.ejected: Optional[int] = None
        self.cls: Optional[str] = None
        self.outcome: Optional[str] = None
        #: (router node, cycle) of each circuit-check hit along the path.
        self.hits: List = []
        #: (router node, cycle) of each reservation placed by this request.
        self.reservations: List = []
        self.relayed = False

    @property
    def complete(self) -> bool:
        return self.ejected is not None

    @property
    def queue_cycles(self) -> Optional[int]:
        if self.injected is None:
            return None
        return self.injected - self.enqueued

    @property
    def net_cycles(self) -> Optional[int]:
        if self.ejected is None or self.injected is None:
            return None
        return self.ejected - self.injected


class SpanRecorder:
    """Observer collecting message-lifecycle spans from routers and NIs."""

    def __init__(self, limit: int = 50_000) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.open: Dict[int, MessageSpan] = {}
        self.closed: List[MessageSpan] = []
        #: Messages not recorded because ``limit`` was already reached.
        self.dropped = 0

    def _span(self, msg) -> Optional[MessageSpan]:
        return self.open.get(msg.uid)

    # -- NI events -----------------------------------------------------
    def ni_enqueue(self, ni, msg, cycle: int) -> None:
        if len(self.closed) + len(self.open) >= self.limit:
            self.dropped += 1
            return
        self.open[msg.uid] = MessageSpan(
            msg.uid, str(msg.kind), msg.src, msg.dest, msg.vn, cycle
        )

    def ni_plan(self, ni, msg, plan, cycle: int) -> None:
        span = self._span(msg)
        if span is not None:
            span.planned = cycle
            span.plan_kind = plan.kind

    def ni_inject(self, ni, msg, cycle: int, circuit: bool) -> None:
        span = self._span(msg)
        if span is not None:
            span.injected = cycle
            span.on_circuit = circuit

    def ni_relay(self, ni, msg, cycle: int) -> None:
        """Scrounger reached its intermediate hop; close this leg and
        re-open a fresh span for the relayed leg."""
        span = self.open.pop(msg.uid, None)
        if span is not None:
            span.ejected = cycle
            span.cls = "relay"
            span.relayed = True
            self.closed.append(span)
        self.ni_enqueue(ni, msg, cycle)

    def ni_eject(self, ni, msg, cycle: int, cls: str) -> None:
        span = self.open.pop(msg.uid, None)
        if span is not None:
            span.ejected = cycle
            span.cls = cls
            span.outcome = msg.outcome
            self.closed.append(span)

    # -- router events -------------------------------------------------
    def router_reservation(self, router, msg, cycle: int) -> None:
        span = self._span(msg)
        if span is not None:
            span.reservations.append((router.node, cycle))

    def router_circuit_hit(self, router, flit, cycle: int) -> None:
        span = self._span(flit.msg)
        if span is not None and flit.is_head:
            span.hits.append((router.node, cycle))

    # -- export --------------------------------------------------------
    def spans(self) -> List[MessageSpan]:
        """All recorded spans, completed first, in completion order."""
        return self.closed + list(self.open.values())

    def chrome_trace(self) -> dict:
        """The span set in Chrome trace event format (Perfetto-loadable)."""
        events: List[dict] = []
        nodes = sorted({s.src for s in self.spans()})
        for node in nodes:
            events.append({
                "name": "process_name", "ph": "M", "pid": node,
                "args": {"name": f"node{node}"},
            })
            for vn, label in ((0, "vn0 requests"), (1, "vn1 replies")):
                events.append({
                    "name": "thread_name", "ph": "M", "pid": node, "tid": vn,
                    "args": {"name": label},
                })
        for span in self.closed:
            args = {
                "uid": span.uid,
                "dest": span.dest,
                "plan": span.plan_kind,
                "outcome": span.outcome,
                "queue_cycles": span.queue_cycles,
                "net_cycles": span.net_cycles,
                "circuit_hits": len(span.hits),
            }
            events.append({
                "name": f"{span.kind} {span.src}->{span.dest}",
                "cat": span.cls or "msg",
                "ph": "X",
                "ts": span.enqueued,
                "dur": max(span.ejected - span.enqueued, 1),
                "pid": span.src,
                "tid": span.vn,
                "args": args,
            })
            if span.injected is not None and span.injected < span.ejected:
                events.append({
                    "name": "circuit flight" if span.on_circuit else "net flight",
                    "cat": "network",
                    "ph": "X",
                    "ts": span.injected,
                    "dur": span.ejected - span.injected,
                    "pid": span.src,
                    "tid": span.vn,
                    "args": {"uid": span.uid},
                })
            for node, cycle in span.reservations:
                events.append({
                    "name": "reservation", "cat": "circuit", "ph": "i",
                    "ts": cycle, "pid": span.src, "tid": span.vn, "s": "t",
                    "args": {"uid": span.uid, "router": node},
                })
            for node, cycle in span.hits:
                events.append({
                    "name": "circuit hit", "cat": "circuit", "ph": "i",
                    "ts": cycle, "pid": span.src, "tid": span.vn, "s": "t",
                    "args": {"uid": span.uid, "router": node},
                })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "spans": len(self.closed),
                "dropped": self.dropped,
                "unit": "1 trace us == 1 simulated cycle",
            },
        }

    def write_chrome_trace(self, path: str) -> str:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1, sort_keys=True)
        return path

    def breakdown_table(self) -> str:
        """Per-class latency breakdown of the completed spans."""
        queue: Dict[str, MeanStat] = {}
        net: Dict[str, MeanStat] = {}
        net_hist: Dict[str, Histogram] = {}
        hits: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for span in self.closed:
            cls = span.cls or "?"
            counts[cls] = counts.get(cls, 0) + 1
            if span.queue_cycles is not None:
                queue.setdefault(cls, MeanStat()).add(span.queue_cycles)
            if span.net_cycles is not None:
                net.setdefault(cls, MeanStat()).add(span.net_cycles)
                net_hist.setdefault(cls, Histogram()).add(span.net_cycles)
            hits[cls] = hits.get(cls, 0) + len(span.hits)
        header = (
            f"{'class':<8}{'msgs':>8}{'queue':>9}{'net':>9}"
            f"{'net p95':>9}{'hits/msg':>10}"
        )
        lines = [header, "-" * len(header)]
        for cls in sorted(counts):
            n = counts[cls]
            q = queue.get(cls, MeanStat()).mean
            m = net.get(cls, MeanStat()).mean
            p95 = net_hist[cls].percentile(95) if cls in net_hist else 0.0
            lines.append(
                f"{cls:<8}{n:>8}{q:>9.1f}{m:>9.1f}{p95:>9.1f}"
                f"{hits[cls] / n:>10.2f}"
            )
        if self.dropped:
            lines.append(f"({self.dropped} messages past the "
                         f"{self.limit}-span limit not recorded)")
        return "\n".join(lines)
