"""Interactive observation probes (formerly ``repro.noc.debug``).

These are the hand-held instruments of the telemetry subsystem - small,
composable and simulation-neutral:

* :func:`attach_tracer` streams every crossbar traversal to a callback or
  a log list - invaluable when debugging circuit reservations.
* :func:`utilization_heatmap` renders per-router crossbar activity as an
  ASCII grid, showing where traffic (and therefore contention)
  concentrates on the mesh.
* :func:`sleep_report` summarises the activity-driven kernel's wake/sleep
  state - who is asleep, until when, and how much ticking was skipped.
* :class:`LoadSampler` is a minimal periodic load probe; the full
  :class:`~repro.telemetry.metrics.MetricRegistry` supersedes it for
  multi-stream time series but it remains the cheapest single-number
  answer to "how loaded is this network?".

``repro.noc.debug`` keeps thin deprecation shims delegating here.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.network import Network

TraceEvent = Tuple[int, int, str, str, int]  # cycle, node, port, kind, uid


def attach_tracer(net: "Network",
                  callback: Optional[Callable] = None) -> List[TraceEvent]:
    """Attach a flit tracer to every router of ``net``.

    With no callback, events are appended to the returned list as
    ``(cycle, node, out_port, msg kind, msg uid)`` tuples.  Pass an
    explicit callback for custom handling (it receives the raw
    ``(cycle, router, out_port, flit)``).

    Tracers compose: attaching while another tracer is installed chains
    the new hook after the existing one instead of replacing it, and
    :func:`detach_tracer` pops only the most recent attachment.
    """
    events: List[TraceEvent] = []

    def default(cycle, router, out_port, flit):
        events.append(
            (cycle, router.node, router.mesh.port_name(out_port),
             flit.msg.kind, flit.msg.uid)
        )

    hook = callback if callback is not None else default
    for router in net.routers:
        previous = router.tracer

        def chained(cycle, r, out_port, flit, _prev=previous, _hook=hook):
            if _prev is not None:
                _prev(cycle, r, out_port, flit)
            _hook(cycle, r, out_port, flit)

        chained._prev_tracer = previous
        router.tracer = chained
    return events


def detach_tracer(net: "Network") -> None:
    """Detach the most recently attached tracer, restoring its predecessor."""
    for router in net.routers:
        router.tracer = getattr(router.tracer, "_prev_tracer", None)


def utilization_heatmap(net: "Network", width: int = 6) -> str:
    """ASCII grid of per-router crossbar traversal counts."""
    grid_w, grid_h = net.topo.grid_shape
    peak = max((r.forwarded for r in net.routers), default=0) or 1
    lines = [f"crossbar traversals per router (peak {peak})"]
    for y in range(grid_h):
        cells = []
        for x in range(grid_w):
            router = net.routers[net.topo.router_at(x, y)]
            cells.append(str(router.forwarded).rjust(width))
        lines.append("".join(cells))
    return "\n".join(lines)


def reset_utilization(net: "Network") -> None:
    for router in net.routers:
        router.forwarded = 0


def sleep_report(sim) -> str:
    """Summarise a Simulator's activity-driven sleep state.

    One line per sleeping component (class + node when available, with
    its scheduled wake cycle or ``ext`` for externally-woken sleepers),
    preceded by the aggregate skip counters.  Intended for interactive
    debugging and deadlock forensics: a component that should be working
    but shows up here points straight at broken wake bookkeeping.
    """
    sleepers = sim.sleeping_slots()
    lines = [
        f"cycle {sim.cycle}: {len(sleepers)} asleep, "
        f"{sim.ticks_run} ticks run, {sim.cycles_skipped} cycles "
        f"skipped (skip ratio {sim.skip_ratio():.3f})"
    ]
    for component, wake_at in sleepers:
        name = type(component).__name__
        node = getattr(component, "node", None)
        label = name if node is None else f"{name}[{node}]"
        due = "ext" if wake_at is None else f"@{wake_at}"
        lines.append(f"  {label} {due}")
    return "\n".join(lines)


class LoadSampler:
    """Periodic sampler of network activity (a Clocked component).

    Add to a simulator (``sim.add(LoadSampler(net))``) to record injected
    flits per interval - the time series behind "the network is lightly
    loaded" style claims (the paper quotes < 4 flits/100 cycles/node).
    """

    def __init__(self, net: "Network", interval: int = 100) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.net = net
        self.interval = interval
        self.samples: List[float] = []
        self._last_count = 0

    def tick(self, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval:
            return
        count = self.net.stats.counter("noc.flits_injected")
        delta = count - self._last_count
        self._last_count = count
        self.samples.append(delta / self.net.mesh.n_nodes)

    def next_wake(self, cycle: int) -> int:
        """Sleep until the next sampling boundary (counters accumulate
        in the stats object regardless, so skipped cycles lose nothing)."""
        return cycle + self.interval - cycle % self.interval

    def mean_load(self) -> float:
        """Average injected flits per interval per node."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def sparkline(self, width: int = 60) -> str:
        """Compact ASCII time series of the per-node load."""
        if not self.samples:
            return "(no samples)"
        ramp = " .:-=+*#%@"
        data = self.samples[-width:]
        peak = max(data) or 1.0
        chars = [ramp[min(len(ramp) - 1, int(v / peak * (len(ramp) - 1)))]
                 for v in data]
        return ("".join(chars)
                + f"  (peak {peak:.2f} flits/{self.interval}cyc/node)")
