"""Kernel self-profiler: where does simulator wall-time go?

Attaches to a :class:`~repro.sim.kernel.Simulator` by swapping each
registered slot's bound ``tick`` (``_Slot.tick``, the indirection the hot
loops call) for a timing wrapper, so attribution needs no cooperation
from - and adds no cost to - the components themselves.  Detaching
restores the original bound methods, leaving the simulator exactly as it
was.

The report aggregates per component *class* and per architectural
*group* (router / ni / coherence / driver), and pairs the wall-time
split with the activity-driven kernel's effectiveness counters
(ticks run vs. cycles skipped) - exactly the numbers the next
optimisation PR needs to pick its target.

Profiled runs are bit-identical to unprofiled ones (the wrapper calls
the original tick with unchanged arguments); only wall-time changes,
which is why the A/B tests compare stats, not seconds.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: Component class -> architectural group of the profiler report.
GROUP_OF = {
    "Router": "router",
    "ReferenceRouter": "router",
    "NetworkInterface": "ni",
    "ReferenceNetworkInterface": "ni",
    "L1Controller": "coherence",
    "L2BankController": "coherence",
    "MemoryController": "coherence",
    "Core": "driver",
    "RequestReplyTraffic": "driver",
}


def _calibrate_wrapper_overhead(perf, reps: int = 20_000, rounds: int = 3) -> float:
    """Measured cost, in seconds/tick, of the profiler's timing wrapper.

    Times ``reps`` calls through a wrapper identical to the one
    :meth:`KernelProfiler.attach` installs, minus the same calls made
    bare, and keeps the best (least noisy) of ``rounds`` rounds.  The
    report uses this to present overhead-corrected seconds instead of a
    hand-waved constant.
    """
    best = float("inf")
    for _ in range(rounds):
        cell = _Cell()

        def noop(cycle):
            pass

        def timed(cycle, _tick=noop, _cell=cell, _perf=perf):
            start = _perf()
            _tick(cycle)
            _cell.seconds += _perf() - start
            _cell.ticks += 1

        t0 = perf()
        for i in range(reps):
            timed(i)
        wrapped = perf() - t0
        t0 = perf()
        for i in range(reps):
            noop(i)
        bare = perf() - t0
        best = min(best, (wrapped - bare) / reps)
    return max(best, 0.0)


class _Cell:
    """Mutable (ticks, seconds) accumulator shared by one class's slots."""

    __slots__ = ("ticks", "seconds")

    def __init__(self) -> None:
        self.ticks = 0
        self.seconds = 0.0


class KernelProfiler:
    """Per-component-class wall-time and tick attribution."""

    def __init__(self) -> None:
        self._sim = None
        self._saved: List = []  # (slot, original tick, original tick_wake)
        self.cells: Dict[str, _Cell] = {}
        self.components: Dict[str, int] = {}
        self.wall_seconds = 0.0
        self._t0 = 0.0
        self._ticks0 = 0
        self._skipped0 = 0
        self._cycle0 = 0
        self.ticks_run = 0
        self.cycles_skipped = 0
        self.cycles = 0
        #: Seconds of self-measurement cost per wrapped tick, calibrated
        #: at attach time (0.0 until attached).
        self.overhead_per_tick = 0.0

    def attach(self, sim) -> "KernelProfiler":
        if self._sim is not None:
            raise RuntimeError("profiler already attached")
        self._sim = sim
        perf = time.perf_counter
        self.overhead_per_tick = _calibrate_wrapper_overhead(perf)
        for slot in sim._slots:
            name = type(slot.component).__name__
            cell = self.cells.setdefault(name, _Cell())
            self.components[name] = self.components.get(name, 0) + 1
            original = slot.tick
            original_tw = slot.tick_wake

            def timed(cycle, _tick=original, _cell=cell, _perf=perf):
                start = _perf()
                _tick(cycle)
                _cell.seconds += _perf() - start
                _cell.ticks += 1

            self._saved.append((slot, original, original_tw))
            slot.tick = timed
            if original_tw is not None:
                # Fused tick+next_wake fast path: the wrapper must hand
                # the sleep decision back to the kernel unchanged.
                def timed_tw(cycle, _tw=original_tw, _cell=cell, _perf=perf):
                    start = _perf()
                    due = _tw(cycle)
                    _cell.seconds += _perf() - start
                    _cell.ticks += 1
                    return due

                slot.tick_wake = timed_tw
        self._t0 = perf()
        self._ticks0 = sim.ticks_run
        self._skipped0 = sim.cycles_skipped
        self._cycle0 = sim.cycle
        return self

    def detach(self) -> None:
        sim = self._sim
        if sim is None:
            return
        self.wall_seconds += time.perf_counter() - self._t0
        self.ticks_run += sim.ticks_run - self._ticks0
        self.cycles_skipped += sim.cycles_skipped - self._skipped0
        self.cycles += sim.cycle - self._cycle0
        for slot, original, original_tw in self._saved:
            slot.tick = original
            slot.tick_wake = original_tw
        self._saved.clear()
        self._sim = None

    # -- reporting -----------------------------------------------------
    def report(self) -> dict:
        """Attribution as plain data (classes, groups, kernel counters)."""
        if self._sim is not None:  # live snapshot without detaching
            wall = self.wall_seconds + (time.perf_counter() - self._t0)
            ticks = self.ticks_run + (self._sim.ticks_run - self._ticks0)
            skipped = (self.cycles_skipped
                       + (self._sim.cycles_skipped - self._skipped0))
            cycles = self.cycles + (self._sim.cycle - self._cycle0)
        else:
            wall = self.wall_seconds
            ticks = self.ticks_run
            skipped = self.cycles_skipped
            cycles = self.cycles
        ticked = sum(cell.seconds for cell in self.cells.values())
        overhead = self.overhead_per_tick
        classes = {}
        groups: Dict[str, Dict[str, float]] = {}
        for name, cell in sorted(
            self.cells.items(), key=lambda item: -item[1].seconds
        ):
            group = GROUP_OF.get(name, "other")
            corrected = max(cell.seconds - cell.ticks * overhead, 0.0)
            classes[name] = {
                "group": group,
                "components": self.components[name],
                "ticks": cell.ticks,
                "seconds": cell.seconds,
                "seconds_corrected": corrected,
                "share": cell.seconds / wall if wall else 0.0,
            }
            agg = groups.setdefault(
                group, {"ticks": 0, "seconds": 0.0, "seconds_corrected": 0.0}
            )
            agg["ticks"] += cell.ticks
            agg["seconds"] += cell.seconds
            agg["seconds_corrected"] += corrected
        for agg in groups.values():
            agg["share"] = agg["seconds"] / wall if wall else 0.0
        possible = ticks + skipped
        wrapped_ticks = sum(cell.ticks for cell in self.cells.values())
        overhead_seconds = overhead * wrapped_ticks
        return {
            "wall_seconds": wall,
            "kernel_seconds": max(wall - ticked, 0.0),
            "cycles": cycles,
            "ticks_run": ticks,
            "cycles_skipped": skipped,
            "skip_ratio": skipped / possible if possible else 0.0,
            # Calibrated self-measurement cost (see attach): per wrapped
            # tick, in total, and as a share of attributed time.
            "overhead_per_tick": overhead,
            "overhead_seconds": overhead_seconds,
            "overhead_share": overhead_seconds / ticked if ticked else 0.0,
            "classes": classes,
            "groups": groups,
        }

    def table(self) -> str:
        """The report as an ASCII table (CLI ``profile`` output)."""
        report = self.report()
        header = (
            f"{'class':<22}{'group':<11}{'n':>5}{'ticks':>12}"
            f"{'seconds':>10}{'corrected':>11}{'share':>8}"
        )
        lines = [header, "-" * len(header)]
        for name, row in report["classes"].items():
            lines.append(
                f"{name:<22}{row['group']:<11}{row['components']:>5}"
                f"{row['ticks']:>12}{row['seconds']:>10.3f}"
                f"{row['seconds_corrected']:>11.3f}"
                f"{row['share']:>8.1%}"
            )
        lines.append("-" * len(header))
        for group, row in sorted(
            report["groups"].items(), key=lambda item: -item[1]["seconds"]
        ):
            lines.append(
                f"{'':<22}{group:<11}{'':>5}{row['ticks']:>12}"
                f"{row['seconds']:>10.3f}{row['seconds_corrected']:>11.3f}"
                f"{row['share']:>8.1%}"
            )
        lines.append(
            f"kernel overhead {report['kernel_seconds']:.3f}s of "
            f"{report['wall_seconds']:.3f}s wall; "
            f"{report['ticks_run']} ticks over {report['cycles']} cycles, "
            f"{report['cycles_skipped']} component-cycles skipped "
            f"(skip ratio {report['skip_ratio']:.3f})"
        )
        lines.append(
            f"self-measurement: {report['overhead_per_tick'] * 1e9:.0f} ns "
            f"per wrapped tick (calibrated at attach), "
            f"{report['overhead_seconds']:.3f}s total = "
            f"{report['overhead_share']:.1%} of attributed time; "
            f"the corrected column subtracts it"
        )
        return "\n".join(lines)
