"""Unified observation API: metrics, message spans, kernel profiling.

One façade replaces the grab-bag of per-tool entry points that used to
live in ``repro.noc.debug``:

    from repro.telemetry import Telemetry, TelemetryConfig

    telem = Telemetry(TelemetryConfig(interval=500))
    telem.attach(system)            # CmpSystem, RequestReplyTraffic,
    system.run_instructions(3000)   # or an explicit (sim, net) pair
    telem.detach()
    paths = telem.export("baseline_fft")
    print(telem.profiler.table())

Three instruments hang off the façade, each independently switchable in
:class:`TelemetryConfig`:

* :attr:`Telemetry.metrics` - a :class:`~repro.telemetry.metrics.MetricRegistry`
  of time-series probes (injection rate, throughput, buffer and
  circuit-table occupancy, interval circuit hit/miss/teardown rates,
  interval reply-latency percentiles) sampled by a read-only watchdog.
* :attr:`Telemetry.spans` - a :class:`~repro.telemetry.spans.SpanRecorder`
  observing message lifecycles through router/NI observer hooks, exported
  as Perfetto-loadable Chrome-trace JSON and a latency breakdown table.
* :attr:`Telemetry.profiler` - a :class:`~repro.telemetry.profiler.KernelProfiler`
  attributing wall-time and tick counts per component class.

All instruments are read-only observers: an attached Telemetry never
changes simulated behaviour, so stats counters and finish cycles remain
bit-identical to an unobserved run (enforced by tests).  When nothing is
attached the per-event cost is a single ``observer is None`` test at the
hook sites - the interactive probes in :mod:`repro.telemetry.probes`
(:func:`attach_tracer`, :func:`utilization_heatmap`, :func:`sleep_report`,
:class:`LoadSampler`) share the same property.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.telemetry.metrics import (
    MetricRegistry,
    MetricSampler,
    counter_rate,
    gauge,
    histogram_percentile_delta,
    mean_delta,
    ratio_delta,
)
from repro.telemetry.probes import (
    LoadSampler,
    TraceEvent,
    attach_tracer,
    detach_tracer,
    reset_utilization,
    sleep_report,
    utilization_heatmap,
)
from repro.telemetry.profiler import KernelProfiler
from repro.telemetry.spans import MessageSpan, SpanRecorder

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "MetricRegistry",
    "MetricSampler",
    "SpanRecorder",
    "MessageSpan",
    "KernelProfiler",
    "LoadSampler",
    "TraceEvent",
    "attach_tracer",
    "detach_tracer",
    "reset_utilization",
    "sleep_report",
    "utilization_heatmap",
    "gauge",
    "counter_rate",
    "ratio_delta",
    "mean_delta",
    "histogram_percentile_delta",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to observe and where to write it.

    The default interval (1000 cycles) matches the production cadence of
    the invariant monitor: fine enough to resolve circuit warm-up within
    a run, coarse enough that the sampling overhead stays below the 5%
    budget enforced by ``tools/bench_telemetry.py``.
    """

    metrics: bool = True
    spans: bool = True
    profile: bool = True
    interval: int = 1000
    #: Also record one buffer-occupancy stream per router (n_nodes extra
    #: streams; off by default to keep exports small on big meshes).
    per_router: bool = False
    #: Span-recording bound; messages beyond it are counted, not stored.
    span_limit: int = 50_000
    out_dir: str = os.path.join("out", "telemetry")
    trace_dir: str = os.path.join("out", "trace")
    #: Live-sample subscriber ``fn(cycle, {name: value})`` registered on
    #: the metric registry at attach time.  Observation only -- it cannot
    #: change what is sampled, so streamed runs stay bit-identical.  The
    #: service daemon uses this to forward in-flight metric series.
    on_sample: Optional[Callable[[int, Dict[str, float]], None]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def enabled(self) -> bool:
        return self.metrics or self.spans or self.profile


class Telemetry:
    """The attachable observation bundle (see module docstring)."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.registry: Optional[MetricRegistry] = None
        self.sampler: Optional[MetricSampler] = None
        self.spans: Optional[SpanRecorder] = None
        self.profiler: Optional[KernelProfiler] = None
        self._net = None
        self._attached = False

    # -- lifecycle -----------------------------------------------------
    def attach(self, target, net=None) -> "Telemetry":
        """Attach to a simulation.

        ``target`` may be a :class:`~repro.system.CmpSystem`, a
        :class:`~repro.noc.traffic.RequestReplyTraffic`, or a bare
        :class:`~repro.sim.kernel.Simulator` (pass ``net=`` explicitly
        in that case).  Attach *after* any warmup phase: warmup ends
        with a stats reset, which would corrupt the interval deltas.
        """
        if self._attached:
            raise RuntimeError("telemetry already attached")
        sim = getattr(target, "sim", target)
        if net is None:
            net = getattr(target, "network", None) or getattr(target, "net", None)
        if net is None:
            raise ValueError("cannot resolve a Network from target; pass net=")
        system = target if hasattr(target, "tiles") else None
        config = self.config
        self._net = net
        if config.metrics:
            self.registry = MetricRegistry()
            self._standard_probes(net, system)
            if config.on_sample is not None:
                self.registry.subscribe(config.on_sample)
            self.sampler = MetricSampler(self.registry, config.interval)
            self.sampler.attach(sim)
        if config.spans:
            self.spans = SpanRecorder(limit=config.span_limit)
            for router in net.routers:
                router.observer = self.spans
            for ni in net.interfaces:
                ni.observer = self.spans
        if config.profile:
            self.profiler = KernelProfiler()
            self.profiler.attach(sim)
        self._attached = True
        return self

    def detach(self) -> None:
        """Stop observing and restore every hook (idempotent)."""
        if not self._attached:
            return
        if self.sampler is not None:
            self.sampler.detach()
        if self.spans is not None and self._net is not None:
            for router in self._net.routers:
                router.observer = None
            for ni in self._net.interfaces:
                ni.observer = None
        if self.profiler is not None:
            self.profiler.detach()
        self._net = None
        self._attached = False

    # -- probe wiring --------------------------------------------------
    def _standard_probes(self, net, system) -> None:
        """Register the default metric streams against ``net``'s stats."""
        registry = self.registry
        stats = net.stats
        interval = self.config.interval
        registry.add_probe(
            "inj_rate", counter_rate(stats, "noc.flits_injected", interval)
        )
        registry.add_probe(
            "throughput", counter_rate(stats, "noc.flits_delivered", interval)
        )
        registry.add_probe("buffer_occupancy", gauge(
            lambda cycle: net.buffered_flits()
        ))
        for vn in range(len(net.config.noc.vcs_per_vn)):
            registry.add_probe(f"buf_vn{vn}", gauge(
                lambda cycle, _vn=vn: net.buffered_flits_by_vn()[_vn]
            ))
        if self.config.per_router:
            for router in net.routers:
                registry.add_probe(f"buf_r{router.node}", gauge(
                    lambda cycle, _r=router: _r.buffered_flits()
                ))
        registry.add_probe("circuit_entries", gauge(
            lambda cycle: net.live_circuit_entries(cycle)
        ))
        registry.add_probe("circuit_hit_rate", ratio_delta(
            stats, "circuit.outcome.on_circuit", "circuit.replies_total"
        ))
        registry.add_probe("circuit_miss_rate", ratio_delta(
            stats, "circuit.reservation_failed", "circuit.replies_total"
        ))
        registry.add_probe(
            "teardown_rate",
            counter_rate(stats, "circuit.entries_undone", interval),
        )
        registry.add_probe("reply_lat_mean", mean_delta(stats, "lat.net.crep"))
        registry.add_probe(
            "reply_lat_p95",
            histogram_percentile_delta(stats, "lat.net.crep", 95),
        )
        if system is not None:
            registry.add_probe("controller_backlog", gauge(
                lambda cycle: system.controller_backlog()
            ))

    # -- export --------------------------------------------------------
    def export(self, label: str) -> Dict[str, str]:
        """Write every enabled instrument's artifacts; returns the paths.

        ``label`` names the files (``<out_dir>/<label>_metrics.csv``,
        ``<trace_dir>/<label>.json``, ...); slashes are replaced so any
        spec key is usable as-is.
        """
        safe = label.replace(os.sep, "_").replace("/", "_")
        paths: Dict[str, str] = {}
        if self.registry is not None:
            base = os.path.join(self.config.out_dir, safe)
            paths["metrics_csv"] = self.registry.write_csv(base + "_metrics.csv")
            paths["metrics_json"] = self.registry.write_json(
                base + "_metrics.json"
            )
        if self.spans is not None:
            paths["trace"] = self.spans.write_chrome_trace(
                os.path.join(self.config.trace_dir, safe + ".json")
            )
            paths["breakdown"] = _write_text(
                os.path.join(self.config.out_dir, safe + "_breakdown.txt"),
                self.spans.breakdown_table(),
            )
        if self.profiler is not None:
            paths["profile"] = _write_text(
                os.path.join(self.config.out_dir, safe + "_profile.txt"),
                self.profiler.table(),
            )
        return paths


def _write_text(path: str, text: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
