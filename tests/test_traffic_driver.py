"""Synthetic request-reply traffic driver."""

from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant


def make(variant=Variant.COMPLETE, rate=5.0, seed=3):
    config = SystemConfig(n_cores=16).with_variant(variant)
    return RequestReplyTraffic(config, rate, seed=seed)


def test_traffic_conserves_messages():
    traffic = make()
    traffic.run(2000)
    traffic.drain()
    assert traffic.requests_sent > 0
    assert traffic.replies_received == traffic.requests_sent


def test_traffic_is_deterministic():
    a, b = make(seed=9), make(seed=9)
    a.run(1500)
    b.run(1500)
    assert a.requests_sent == b.requests_sent
    assert a.reply_latencies == b.reply_latencies


def test_offered_load_tracks_rate():
    light = make(rate=2.0)
    heavy = make(rate=20.0)
    light.run(3000)
    heavy.run(3000)
    assert heavy.offered_load_flits_per_kcycle_node() > \
        2 * light.offered_load_flits_per_kcycle_node()


def test_latency_grows_with_load():
    light = make(rate=2.0, variant=Variant.BASELINE)
    heavy = make(rate=60.0, variant=Variant.BASELINE)
    light.run(3000)
    light.drain()
    heavy.run(3000)
    heavy.drain()
    assert heavy.mean_reply_latency() > light.mean_reply_latency()


def test_circuit_success_rate_none_without_circuits():
    traffic = make(variant=Variant.BASELINE, rate=0.0)
    traffic.run(100)
    assert traffic.circuit_success_rate() is None


def test_circuits_help_latency_under_light_load():
    base = make(variant=Variant.BASELINE, rate=3.0)
    circ = make(variant=Variant.COMPLETE, rate=3.0)
    base.run(4000)
    base.drain()
    circ.run(4000)
    circ.drain()
    assert circ.mean_reply_latency() < base.mean_reply_latency()
