"""Contracts of the Topology / RoutingFunction abstraction.

Every registered topology (mesh, torus, concentrated mesh) must honour
the same protocol the routers and the sharding layer build on: port
symmetry and neighbor reciprocity, deterministic routes that reach the
destination within the diameter without revisiting a router, and the
paper's invariant - the reply path visits exactly the request path's
routers in reverse.  Alongside the routing contract this file pins the
generalized partition helpers (exactly-once node cover, boundary edges
== the adjacency crossing cut), the typed configuration validation
(unknown names raise :class:`ConfigError` naming the valid choices and
the offending source), and the memory-controller placement, which must
stay byte-identical to the historical square-mesh algorithm.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import (
    DimensionOrderRouting,
    path_routers,
    route_tables,
)
from repro.noc.topology import (
    CONCENTRATION,
    TOPOLOGY_CHOICES,
    CMesh,
    ConfigError,
    Mesh,
    Port,
    Torus,
    build_topology,
    make_topology,
    memory_controller_nodes,
    resolve_topology,
    topology_grid_side,
)
from repro.partition import (
    boundary_links,
    router_shard,
    shard_assignment,
    shard_bands,
)
from repro.sim.config import NocConfig, SystemConfig
from repro.validate import check_topology

#: Every topology at both paper chip sizes (all three support 16 and 64).
CASES = [(name, cores) for name in TOPOLOGY_CHOICES for cores in (16, 64)]
CASE_IDS = [f"{name}-{cores}" for name, cores in CASES]

_TOPOS = {}


def topo_for(name, cores):
    key = (name, cores)
    if key not in _TOPOS:
        _TOPOS[key] = make_topology(name, cores)
    return _TOPOS[key]


# ---------------------------------------------------------------------------
# Static protocol contracts: ports, neighbors, embedding.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,cores", CASES, ids=CASE_IDS)
def test_neighbor_reciprocity_and_port_symmetry(name, cores):
    """neighbors() triples are mutually consistent: the opposite port on
    the neighbor routes straight back, and opposite() is an involution."""
    topo = topo_for(name, cores)
    for router in range(topo.n_routers):
        triples = topo.neighbors(router)
        ports = [port for port, _, _ in triples]
        assert ports == sorted(ports), "network ports must come in order"
        for port, neighbor, back in triples:
            assert 0 <= port < topo.local_base
            assert 0 <= back < topo.local_base
            assert topo.opposite(port) == back
            assert topo.opposite(back) == port
            assert topo.neighbor(router, port) == neighbor
            assert topo.neighbor(neighbor, back) == router
            assert topo.has_neighbor(router, port)


@pytest.mark.parametrize("name,cores", CASES, ids=CASE_IDS)
def test_node_embedding(name, cores):
    """Every node maps into exactly one router at a distinct local port."""
    topo = topo_for(name, cores)
    assert topo.n_nodes == cores
    seen = set()
    for node in range(topo.n_nodes):
        router = topo.router_of(node)
        port = topo.local_port(node)
        assert node in topo.nodes_of(router)
        assert topo.local_base <= port < topo.max_radix
        assert (router, port) not in seen
        seen.add((router, port))
    covered = sorted(
        node for r in range(topo.n_routers) for node in topo.nodes_of(r)
    )
    assert covered == list(range(topo.n_nodes))


@pytest.mark.parametrize("name,cores", CASES, ids=CASE_IDS)
def test_grid_embedding_round_trips(name, cores):
    topo = topo_for(name, cores)
    width, height = topo.grid_shape
    assert width * height == topo.n_routers
    for router in range(topo.n_routers):
        x, y = topo.coords(router)
        assert 0 <= x < width and 0 <= y < height
        assert topo.router_at(x, y) == router


def test_cmesh_radix_and_local_ports():
    """The concentrated mesh is the variant that kills the 5-port
    assumption: four local ports per router, radix 8."""
    topo = topo_for("cmesh", 16)
    assert isinstance(topo, CMesh)
    assert topo.n_routers == 4 and topo.n_nodes == 16
    assert topo.local_base == 4 and topo.max_radix == 4 + CONCENTRATION
    assert topo.nodes_of(0) == [0, 1, 2, 3]
    assert [topo.local_port(n) for n in range(4)] == [4, 5, 6, 7]
    assert topo.port_name(4) == "LOCAL0"
    assert topo.port_name(7) == "LOCAL3"


def test_torus_wraparound_links_and_diameter():
    topo = topo_for("torus", 16)
    assert isinstance(topo, Torus)
    assert topo.wraps
    # Router 0 has all four network neighbors (wrap west and north).
    assert [port for port, _, _ in topo.neighbors(0)] == [
        int(Port.NORTH), int(Port.SOUTH), int(Port.EAST), int(Port.WEST)
    ]
    assert topo.neighbor(0, int(Port.WEST)) == 3
    assert topo.neighbor(0, int(Port.NORTH)) == 12
    assert topo.diameter == 4  # 2 * (4 // 2), vs. 6 on the 4x4 mesh
    assert topo_for("mesh", 16).diameter == 6


# ---------------------------------------------------------------------------
# Routing contract: reach, bound, no cycles, same-routers reply.
# ---------------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(
    case=st.sampled_from(CASES),
    src=st.integers(min_value=0),
    dst=st.integers(min_value=0),
)
def test_request_path_reaches_destination_within_diameter(case, src, dst):
    topo = topo_for(*case)
    src %= topo.n_nodes
    dst %= topo.n_nodes
    path = path_routers(topo, 0, src, dst)
    assert path[0] == topo.router_of(src)
    assert path[-1] == topo.router_of(dst)
    assert len(path) - 1 <= topo.diameter
    assert len(set(path)) == len(path), "routing cycle: router revisited"


@settings(max_examples=120, deadline=None)
@given(
    case=st.sampled_from(CASES),
    src=st.integers(min_value=0),
    dst=st.integers(min_value=0),
)
def test_reply_path_is_reversed_request_path(case, src, dst):
    """The paper's invariant, for every topology: the reply (VN1)
    retraces exactly the request's routers in reverse order."""
    topo = topo_for(*case)
    src %= topo.n_nodes
    dst %= topo.n_nodes
    request = path_routers(topo, 0, src, dst)
    reply = path_routers(topo, 1, dst, src)
    assert reply == list(reversed(request))


@pytest.mark.parametrize("name,cores", CASES, ids=CASE_IDS)
def test_route_tables_match_routing_function(name, cores):
    """The dense tables both router pipelines consume are exactly the
    RoutingFunction, entry for entry (eject at the destination router)."""
    topo = topo_for(name, cores)
    req_table, rep_table = route_tables(topo)
    xy = DimensionOrderRouting(topo, xy=True)
    yx = DimensionOrderRouting(topo, xy=False)
    for router in range(topo.n_routers):
        for dest in range(topo.n_nodes):
            assert req_table[router][dest] == xy.next_port(router, dest)
            assert rep_table[router][dest] == yx.next_port(router, dest)
            if topo.router_of(dest) == router:
                assert req_table[router][dest] == topo.local_port(dest)
            else:
                assert req_table[router][dest] < topo.local_base


@pytest.mark.parametrize("name", TOPOLOGY_CHOICES)
def test_static_self_check_is_clean(name):
    """The `repro check --topology` machinery agrees with the above."""
    report = check_topology(name, n_cores=16)
    assert report.ok, report.problems
    assert report.checks_run > 0


# ---------------------------------------------------------------------------
# Partition helpers, generalized to any topology.
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(case=st.sampled_from(CASES), data=st.data())
def test_shard_bands_cover_every_node_exactly_once(case, data):
    topo = topo_for(*case)
    _, height = topo.grid_shape
    n_shards = data.draw(st.integers(min_value=1, max_value=height))
    bands = shard_bands(topo, n_shards)
    assert len(bands) == n_shards
    flat = [node for band in bands for node in band]
    assert sorted(flat) == list(range(topo.n_nodes))


@settings(max_examples=60, deadline=None)
@given(case=st.sampled_from(CASES), data=st.data())
def test_boundary_links_equal_adjacency_crossing_cut(case, data):
    """boundary_links must be exactly the edges of the topology adjacency
    whose endpoints land in different shards - including torus wrap links."""
    topo = topo_for(*case)
    _, height = topo.grid_shape
    n_shards = data.draw(st.integers(min_value=1, max_value=height))
    assignment = shard_assignment(topo, n_shards)
    expected = [
        (router, port, neighbor)
        for router in range(topo.n_routers)
        for port, neighbor, _back in topo.neighbors(router)
        if router_shard(topo, assignment, router)
        != router_shard(topo, assignment, neighbor)
    ]
    assert boundary_links(topo, assignment) == expected


def test_torus_boundary_includes_wraparound_cut():
    """With >1 shard on a torus, the top and bottom row bands also touch
    through the wraparound links; the cut must include them."""
    topo = topo_for("torus", 16)
    assignment = shard_assignment(topo, 2)
    edges = boundary_links(topo, assignment)
    wrap = [(r, p, n) for r, p, n in edges
            if abs(topo.coords(r)[1] - topo.coords(n)[1]) > 1]
    assert wrap, "expected wraparound links in the torus shard cut"
    mesh = topo_for("mesh", 16)
    mesh_edges = boundary_links(mesh, shard_assignment(mesh, 2))
    assert len(edges) == len(mesh_edges) + len(wrap)


# ---------------------------------------------------------------------------
# Typed configuration validation.
# ---------------------------------------------------------------------------
def test_unknown_topology_name_raises_config_error():
    with pytest.raises(ConfigError) as err:
        resolve_topology("ring")
    message = str(err.value)
    assert "config.noc.topology" in message
    for choice in TOPOLOGY_CHOICES:
        assert choice in message


def test_malformed_env_topology_raises_config_error(monkeypatch):
    monkeypatch.setenv("REPRO_TOPOLOGY", "hypercube")
    with pytest.raises(ConfigError) as err:
        resolve_topology("")
    message = str(err.value)
    assert "REPRO_TOPOLOGY" in message
    for choice in TOPOLOGY_CHOICES:
        assert choice in message


def test_env_topology_resolves_and_explicit_config_wins(monkeypatch):
    monkeypatch.setenv("REPRO_TOPOLOGY", "torus")
    assert resolve_topology("") == "torus"
    assert resolve_topology("cmesh") == "cmesh"
    cfg = SystemConfig(n_cores=16)
    assert cfg.noc.topology == "torus"  # resolved eagerly at construction
    monkeypatch.delenv("REPRO_TOPOLOGY")
    assert resolve_topology("") == "mesh"


def test_unknown_topology_in_system_config_raises():
    with pytest.raises(ConfigError):
        SystemConfig(n_cores=16, noc=NocConfig(topology="ring"))


def test_cmesh_core_count_validation():
    with pytest.raises(ConfigError, match="cmesh"):
        topology_grid_side("cmesh", 17)
    with pytest.raises(ConfigError, match="cmesh"):
        topology_grid_side("cmesh", 20)  # 4 * 5, 5 is not a square
    assert topology_grid_side("cmesh", 16) == 2
    assert topology_grid_side("cmesh", 64) == 4
    with pytest.raises(ValueError):
        topology_grid_side("mesh", 17)


def test_build_topology_follows_config():
    cfg = SystemConfig(n_cores=16, noc=NocConfig(topology="torus"))
    topo = build_topology(cfg)
    assert isinstance(topo, Torus) and topo.n_nodes == 16
    assert type(build_topology(SystemConfig(n_cores=16))) is Mesh


# ---------------------------------------------------------------------------
# Memory-controller placement: generic == historical, square meshes.
# ---------------------------------------------------------------------------
def _legacy_mesh_mc_nodes(mesh, count):
    """The pre-abstraction square-mesh literal algorithm, verbatim."""
    side = mesh.side
    mid = side // 2
    preferred = [
        mesh.node_at(mid, 0),
        mesh.node_at(0, mid),
        mesh.node_at(side - 1, mid),
        mesh.node_at(mid, side - 1),
    ]
    if count <= 4:
        picks = []
        for node in preferred:
            if node not in picks:
                picks.append(node)
            if len(picks) == count:
                return picks
    perimeter = list(dict.fromkeys(list(mesh.edge_nodes())))
    step = max(1, len(perimeter) // count)
    picks = [perimeter[(i * step) % len(perimeter)] for i in range(count)]
    return list(dict.fromkeys(picks))[:count]


@pytest.mark.parametrize("side", range(2, 9))
@pytest.mark.parametrize("count", range(1, 9))
def test_mc_placement_matches_legacy_square_mesh(side, count):
    mesh = Mesh(side)
    assert memory_controller_nodes(mesh, count) \
        == _legacy_mesh_mc_nodes(mesh, count)


@pytest.mark.parametrize("name,cores", CASES, ids=CASE_IDS)
def test_mc_placement_valid_on_every_topology(name, cores):
    topo = topo_for(name, cores)
    nodes = memory_controller_nodes(topo, 4)
    assert len(nodes) == len(set(nodes)) == 4
    edge = set(topo.edge_routers())
    for node in nodes:
        assert 0 <= node < topo.n_nodes
        assert topo.router_of(node) in edge
