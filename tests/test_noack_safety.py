"""The section-4.6 safety argument, checked dynamically.

Eliminating L1_DATA_ACK is only sound if data sent over a complete
circuit provably arrives before anything the unblocked directory sends
afterwards.  We instrument a full system and check the ordering for every
self-acknowledged transaction.
"""

from collections import defaultdict

from repro import Variant, build_system, workload_by_name
from repro.coherence.messages import Kind
from repro.sim.config import small_test_config


def test_circuit_data_always_beats_subsequent_messages():
    config = small_test_config(16, Variant.COMPLETE_NOACK, seed=9)
    system = build_system(config, workload_by_name("fluidanimate"))

    # Record per (destination L1, address): delivery cycle of suppressed
    # data replies, and of any INV/FWD that follows for the same line.
    data_arrivals = {}
    violations = []

    for tile in system.tiles:
        inner = tile.ni.deliver

        def wrapped(msg, cycle, _inner=inner, node=tile.node):
            addr = getattr(msg.payload, "addr", None)
            if addr is not None:
                key = (node, addr)
                if msg.kind == Kind.L2_REPLY and msg.payload.ack_suppressed:
                    data_arrivals[key] = cycle
                elif msg.kind in (Kind.INV, Kind.FWD_GETS, Kind.FWD_GETX):
                    sent_after_data = data_arrivals.get(key)
                    if sent_after_data is not None and cycle < sent_after_data:
                        violations.append((key, cycle, sent_after_data))
            _inner(msg, cycle)

        tile.ni.deliver = wrapped

    system.run_instructions(500, max_cycles=1_500_000)
    assert data_arrivals, "expected some self-acknowledged replies"
    assert not violations, violations
