"""The sharded result store: routing, migration, multiprocess safety.

The hammer tests at the bottom are the acceptance gate of the store: N
concurrent writer processes across M shards, one of them crashing while
it holds a shard lock mid-publish, and the surviving entries must be
exactly the union of what the live writers wrote - nothing lost, nothing
duplicated across shard files.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.harness.cache import (
    DEFAULT_SHARDS,
    MANIFEST_NAME,
    QUARANTINE_KEEP,
    ResultCache,
    ShardedCache,
    migrate_legacy_file,
    open_cache,
    parse_spec_key,
    prune_quarantine,
    spec_key_shard,
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_SHARDS", raising=False)


def _key(n_cores=16, variant="Baseline", workload="canneal", seed=1,
         measure=10000, warmup=2000, topology=""):
    base = f"{n_cores}/{variant}/{workload}/{seed}/{measure}/{warmup}"
    return f"{base}/{topology}" if topology else base


# ----------------------------------------------------------------------
# Spec-key schema.
# ----------------------------------------------------------------------

def test_parse_spec_key_roundtrips_mesh_key():
    parsed = parse_spec_key(_key())
    assert parsed == {
        "n_cores": 16, "variant": "Baseline", "workload": "canneal",
        "seed": 1, "measure_instructions": 10000,
        "warmup_instructions": 2000,
    }


def test_parse_spec_key_accepts_topology_suffix():
    parsed = parse_spec_key(_key(topology="torus"))
    assert parsed["topology"] == "torus"


@pytest.mark.parametrize("bad", [
    "16/Baseline/canneal/1/10000",            # too few components
    "16/Baseline/canneal/1/10000/2000/torus/x",  # too many
    "x/Baseline/canneal/1/10000/2000",        # non-integer n_cores
    "16/Baseline/canneal/one/10000/2000",     # non-integer seed
    "16/NotAVariant/canneal/1/10000/2000",    # unknown variant
    "16/baseline/canneal/1/10000/2000",       # wrong case (schema is exact)
    "16/Baseline//1/10000/2000",              # empty workload
    "16/Baseline/canneal/1/0/2000",           # out-of-range measure
    "16/Baseline/canneal/1/10000/2000/mesh",  # mesh never carries suffix
    "16/Baseline/canneal/1/10000/2000/ring",  # unknown topology
])
def test_parse_spec_key_rejects(bad):
    with pytest.raises(ValueError):
        parse_spec_key(bad)


def test_shard_routing_is_stable_and_cell_grouped():
    n = 8
    base = spec_key_shard(_key(seed=1), n)
    # Every seed/quantum/topology variation of one sweep cell shares a
    # shard; the index is deterministic and in range.
    for key in (_key(seed=7), _key(measure=123, warmup=45),
                _key(topology="torus")):
        assert spec_key_shard(key, n) == base
    for workload in ("fft", "lu_cb", "radix", "barnes"):
        assert 0 <= spec_key_shard(_key(workload=workload), n) < n
    assert spec_key_shard(_key(), n) == spec_key_shard(_key(), n)


# ----------------------------------------------------------------------
# Sharded store basics.
# ----------------------------------------------------------------------

def test_sharded_roundtrip_and_shard_placement(tmp_path):
    root = str(tmp_path / "store")
    store = ShardedCache(root, n_shards=4)
    entries = {
        _key(workload=f"wl{i}", seed=s): {"i": i, "s": s}
        for i in range(6) for s in (1, 2)
    }
    store.store_many(entries)
    assert store.load_all() == entries
    for key, entry in entries.items():
        assert store.load(key) == entry
    # Each key lives in exactly the shard file its routing names.
    seen = {}
    for name in os.listdir(root):
        if not name.startswith("shard-") or not name.endswith(".json"):
            continue
        index = int(name[len("shard-"):-len(".json")])
        with open(os.path.join(root, name)) as handle:
            data = json.load(handle)
        for key in data["entries"]:
            assert spec_key_shard(key, 4) == index
            assert key not in seen, f"{key} duplicated across shards"
            seen[key] = index
    assert set(seen) == set(entries)


def test_manifest_anchors_geometry_over_requests(tmp_path):
    root = str(tmp_path / "store")
    ShardedCache(root, n_shards=4).store(_key(), {"v": 1})
    # A later opener asking for a different geometry follows the manifest.
    reopened = ShardedCache(root, n_shards=32)
    assert reopened.n_shards == 4
    assert reopened.load(_key()) == {"v": 1}
    with open(os.path.join(root, MANIFEST_NAME)) as handle:
        assert json.load(handle)["n_shards"] == 4


def test_open_cache_picks_backend(tmp_path, monkeypatch):
    plain = str(tmp_path / "cache.json")
    assert isinstance(open_cache(plain), ResultCache)
    assert isinstance(open_cache(str(tmp_path / "store") + os.sep),
                      ShardedCache)
    existing_dir = tmp_path / "dirstore"
    existing_dir.mkdir()
    assert isinstance(open_cache(str(existing_dir)), ShardedCache)
    monkeypatch.setenv("REPRO_CACHE_SHARDS", "8")
    via_env = open_cache(str(tmp_path / "envstore"))
    assert isinstance(via_env, ShardedCache)
    assert via_env.n_shards == 8


def test_open_cache_defaults_shard_count(tmp_path):
    store = open_cache(str(tmp_path / "store") + os.sep)
    assert store.n_shards == DEFAULT_SHARDS


def test_corrupt_shard_is_quarantined_not_fatal(tmp_path):
    root = str(tmp_path / "store")
    store = ShardedCache(root, n_shards=2)
    key = _key()
    store.store(key, {"v": 1})
    shard_path = store.shard_for(key).path
    with open(shard_path, "w") as handle:
        handle.write("{ not json")
    assert store.load(key) is None
    corrupt = [n for n in os.listdir(root) if ".corrupt." in n]
    assert len(corrupt) == 1
    store.store(key, {"v": 2})
    assert store.load(key) == {"v": 2}


# ----------------------------------------------------------------------
# Legacy-file migration.
# ----------------------------------------------------------------------

def test_migration_routes_good_and_quarantines_bad(tmp_path):
    path = str(tmp_path / "cache.json")
    legacy = ResultCache(path)
    good = {_key(workload=f"wl{i}"): {"i": i} for i in range(4)}
    bad = {"garbage-key": {"old": 1},
           "16/gone_variant/fft/1/100/10": {"old": 2}}
    legacy.store_many(dict(good, **bad))

    store = open_cache(path, n_shards=4)
    assert isinstance(store, ShardedCache)
    assert os.path.isdir(path)
    assert store.load_all() == good
    # The legacy file survives as an escape hatch...
    backup = ResultCache(path + ".migrated").load_all()
    assert set(backup) == set(good) | set(bad)
    # ...and the unparseable entries are quarantined inside the store.
    quarantined = [n for n in os.listdir(path)
                   if n.startswith("quarantined-keys.")]
    assert len(quarantined) == 1
    with open(os.path.join(path, quarantined[0])) as handle:
        payload = json.load(handle)
    assert payload["entries"] == bad
    assert payload["reason"]


def test_migration_is_idempotent(tmp_path):
    path = str(tmp_path / "cache.json")
    ResultCache(path).store(_key(), {"v": 1})
    first = open_cache(path, n_shards=2)
    second = open_cache(path, n_shards=2)
    assert isinstance(second, ShardedCache)
    assert first.load_all() == second.load_all() == {_key(): {"v": 1}}


def test_migrate_legacy_file_direct_on_missing_file(tmp_path):
    # Migrating a path that never existed just builds an empty store.
    path = str(tmp_path / "cache.json")
    store = migrate_legacy_file(path, n_shards=2)
    assert store.load_all() == {}


# ----------------------------------------------------------------------
# Quarantine pruning.
# ----------------------------------------------------------------------

def test_prune_quarantine_keeps_newest(tmp_path):
    for n in range(QUARANTINE_KEEP + 3):
        victim = tmp_path / f"cache.json.corrupt.1.{n}"
        victim.write_text("{}")
        os.utime(victim, (n, n))  # monotone mtimes, oldest first
    prune_quarantine(str(tmp_path), "cache.json.corrupt.")
    left = sorted(p.name for p in tmp_path.iterdir())
    assert len(left) == QUARANTINE_KEEP
    # The newest (highest-mtime) files survive.
    assert f"cache.json.corrupt.1.{QUARANTINE_KEEP + 2}" in left
    assert "cache.json.corrupt.1.0" not in left


def test_quarantine_entries_prunes_its_own_pile(tmp_path):
    store = ShardedCache(str(tmp_path / "store"), n_shards=2)
    for n in range(QUARANTINE_KEEP + 2):
        path = store.quarantine_entries({"bad": {"n": n}}, "test")
        os.utime(path, (n, n))
    piles = [n for n in os.listdir(store.root)
             if n.startswith("quarantined-keys.")]
    assert len(piles) == QUARANTINE_KEEP


# ----------------------------------------------------------------------
# Multiprocess hammer.
# ----------------------------------------------------------------------

N_WRITERS = 5
KEYS_PER_WRITER = 30
HAMMER_SHARDS = 4


def _writer_keys(writer_id):
    """Writer-unique keys spread across sweep cells (hence shards)."""
    return {
        _key(n_cores=16 + 16 * writer_id, workload=f"wl{i % 6}",
             seed=writer_id, measure=1000 + i): {"writer": writer_id, "i": i}
        for i in range(KEYS_PER_WRITER)
    }


def _hammer_writer(root, writer_id, barrier):
    store = ShardedCache(root, lock_timeout=120.0, lock_stale=1.0)
    barrier.wait()
    for key, entry in _writer_keys(writer_id).items():
        store.store(key, entry)


def _crashing_writer(root, barrier):
    """Dies mid-publish while holding a shard lock (simulated SIGKILL)."""
    from repro.harness import cache as cache_mod

    def crash_publish(self, entries):
        os._exit(17)

    cache_mod.ResultCache._publish = crash_publish
    store = cache_mod.ShardedCache(root, lock_timeout=120.0, lock_stale=1.0)
    barrier.wait()
    store.store(_key(n_cores=16, workload="wl0", seed=99), {"doomed": True})


def test_multiprocess_hammer_no_lost_or_duplicated_entries(tmp_path):
    root = str(tmp_path / "store")
    ShardedCache(root, n_shards=HAMMER_SHARDS)  # anchor geometry up front
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(N_WRITERS + 1)
    writers = [
        ctx.Process(target=_hammer_writer, args=(root, wid, barrier))
        for wid in range(N_WRITERS)
    ]
    crasher = ctx.Process(target=_crashing_writer, args=(root, barrier))
    for proc in writers + [crasher]:
        proc.start()
    for proc in writers:
        proc.join(timeout=300)
        assert proc.exitcode == 0
    crasher.join(timeout=300)
    assert crasher.exitcode == 17  # really died inside _publish

    expected = {}
    for wid in range(N_WRITERS):
        expected.update(_writer_keys(wid))
    store = ShardedCache(root, lock_stale=1.0)
    assert store.n_shards == HAMMER_SHARDS
    merged = store.load_all()
    assert merged == expected  # nothing lost, nothing extra
    # No key appears in more than one shard file, and every shard file
    # holds only keys that route to it.
    total = 0
    for name in os.listdir(root):
        if not name.startswith("shard-") or not name.endswith(".json"):
            continue
        index = int(name[len("shard-"):-len(".json")])
        with open(os.path.join(root, name)) as handle:
            entries = json.load(handle)["entries"]
        for key in entries:
            assert spec_key_shard(key, HAMMER_SHARDS) == index
        total += len(entries)
    assert total == len(expected)


def test_crash_mid_publish_leaves_store_recoverable(tmp_path):
    root = str(tmp_path / "store")
    pre_key = _key(n_cores=16, workload="wl0", seed=1)
    store = ShardedCache(root, n_shards=2, lock_stale=1.0)
    store.store(pre_key, {"v": "pre-existing"})

    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(1)
    crasher = ctx.Process(target=_crashing_writer, args=(root, barrier))
    crasher.start()
    crasher.join(timeout=60)
    assert crasher.exitcode == 17
    # The corpse left its shard lock behind...
    locks = [n for n in os.listdir(root)
             if n.startswith("shard-") and n.endswith(".lock")]
    assert locks, "crashing writer should have died holding a shard lock"
    # ...but a later writer breaks the stale lock and proceeds, and the
    # atomic-publish discipline means nothing already stored was torn.
    time.sleep(1.1)  # age the lock past lock_stale
    after_key = _key(n_cores=16, workload="wl0", seed=2)
    store.store(after_key, {"v": "after-crash"})
    merged = store.load_all()
    assert merged[pre_key] == {"v": "pre-existing"}
    assert merged[after_key] == {"v": "after-crash"}
    assert not any(".corrupt." in n for n in os.listdir(root))
