"""Unified configuration (:mod:`repro.config`): precedence, typed errors,
the ``env`` CLI view, and the legacy resolvers that now delegate here.
"""

import pytest

from repro import config
from repro.harness import experiment, parallel
from repro.harness.__main__ import main as harness_main


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for entry in config.SETTINGS.values():
        monkeypatch.delenv(entry.env, raising=False)


# ----------------------------------------------------------------------
# Precedence: kwargs > environment > defaults.
# ----------------------------------------------------------------------

def test_resolve_precedence(monkeypatch):
    assert config.resolve("jobs") is None  # registry default
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert config.resolve("jobs") == 4  # environment
    assert config.resolve("jobs", override=2) == 2  # keyword wins
    assert config.resolve("jobs", override=0) == 0  # 0 is a real override


def test_resolve_call_site_default(monkeypatch):
    assert config.resolve("scale") == 1.0
    assert config.resolve("jobs", default=8) == 8
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert config.resolve("jobs", default=8) == 2  # env beats the default


def test_overrides_reports_value_and_source(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    resolved = config.overrides(jobs=3)
    assert resolved["jobs"].value == 3
    assert resolved["jobs"].source == "jobs= (keyword)"
    assert resolved["scale"].value == 0.5
    assert resolved["scale"].source == "REPRO_SCALE"
    assert resolved["full"].value is False
    assert resolved["full"].source == "default"
    assert set(resolved) == set(config.SETTINGS)


def test_overrides_rejects_unknown_setting():
    with pytest.raises(config.ConfigError, match="unknown setting"):
        config.overrides(jobz=3)


def test_empty_env_value_falls_through_to_default(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "")
    assert config.resolve("jobs") is None
    monkeypatch.setenv("REPRO_SCALE", "   ")
    assert config.resolve("scale") == 1.0


# ----------------------------------------------------------------------
# Typed errors naming the offending source.
# ----------------------------------------------------------------------

def test_env_error_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "banana")
    with pytest.raises(config.ConfigError, match="REPRO_JOBS") as info:
        config.resolve("jobs")
    assert info.value.setting == "jobs"
    assert info.value.source == "REPRO_JOBS"
    assert isinstance(info.value, ValueError)  # legacy excepts still work


def test_keyword_error_names_the_keyword():
    with pytest.raises(config.ConfigError, match=r"scale= \(keyword\)") \
            as info:
        config.resolve("scale", override="zero")
    assert info.value.source == "scale= (keyword)"


@pytest.mark.parametrize("name,env,bad", [
    ("scale", "REPRO_SCALE", "-1"),
    ("scale", "REPRO_SCALE", "inf"),
    ("full", "REPRO_FULL", "maybe"),
    ("cache_shards", "REPRO_CACHE_SHARDS", "-3"),
    ("check_interval", "REPRO_CHECK_INTERVAL", "0"),
    ("shard_timeout", "REPRO_SHARD_TIMEOUT", "0"),
    ("topology", "REPRO_TOPOLOGY", "ring"),
    ("service_workers", "REPRO_SERVICE_WORKERS", "lots"),
])
def test_constraints_enforced_per_setting(monkeypatch, name, env, bad):
    monkeypatch.setenv(env, bad)
    with pytest.raises(config.ConfigError, match=env):
        config.resolve(name)


def test_bool_flags_accept_the_usual_spellings(monkeypatch):
    for raw, expected in [("1", True), ("yes", True), ("on", True),
                          ("TRUE", True), ("0", False), ("off", False),
                          ("no", False), ("false", False)]:
        monkeypatch.setenv("REPRO_FULL", raw)
        assert config.resolve("full") is expected


# ----------------------------------------------------------------------
# The env view (library + CLI).
# ----------------------------------------------------------------------

def test_describe_renders_errors_inline(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "banana")
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    rows = {name: (value, source)
            for name, _env, value, source in config.describe()}
    assert rows["scale"] == ("0.5", "REPRO_SCALE")
    assert "<error:" in rows["jobs"][0]
    assert "REPRO_JOBS" in rows["jobs"][0]


def test_cli_env_subcommand_prints_the_table(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    monkeypatch.setenv("REPRO_JOBS", "banana")
    assert harness_main(["env"]) == 0
    out = capsys.readouterr().out
    assert "REPRO_SCALE" in out and "0.25" in out
    assert "REPRO_SERVICE" in out  # every registered knob is listed
    assert "<error:" in out  # malformed values render, not crash


# ----------------------------------------------------------------------
# Legacy resolvers now delegate here.
# ----------------------------------------------------------------------

def test_legacy_resolvers_raise_the_typed_error(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "oops")
    with pytest.raises(config.ConfigError, match="REPRO_SCALE"):
        experiment.scale()
    monkeypatch.setenv("REPRO_JOBS", "nope")
    with pytest.raises(config.ConfigError, match="REPRO_JOBS"):
        parallel.resolve_jobs(None)
    monkeypatch.setenv("REPRO_FULL", "perhaps")
    with pytest.raises(config.ConfigError, match="REPRO_FULL"):
        experiment.env_flag("REPRO_FULL")


def test_legacy_resolvers_read_values_through_config(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert experiment.scale() == 0.5
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert parallel.resolve_jobs(None) == 3
    monkeypatch.setenv("REPRO_FULL", "yes")
    assert experiment.env_flag("REPRO_FULL") is True
