"""Network interface details: injection arbitration, credits, reassembly."""

from repro.noc.flit import Message
from repro.noc.network import Network
from repro.sim.config import SystemConfig, Variant


def make_net(variant=Variant.BASELINE):
    net = Network(SystemConfig(n_cores=16).with_variant(variant))
    delivered = []
    for node in range(16):
        net.set_deliver(node, lambda m, c, d=delivered: d.append((c, m)))
    return net, delivered


def run(net, cycles, start=1):
    for cycle in range(start, start + cycles):
        net.tick(cycle)
    return start + cycles


def test_one_flit_per_cycle_injection():
    net, _ = make_net()
    ni = net.interfaces[0]
    big = Message(0, 3, 0, 5, "REQ")
    ni.enqueue(big, 0)
    seen = []
    for cycle in range(1, 5):
        net.tick(cycle)
        seen.append(net.stats.counter("noc.flits_injected"))
    # exactly one flit leaves the NI per cycle
    assert seen == [1, 2, 3, 4]


def test_interleaves_vns_fairly():
    net, delivered = make_net()
    ni = net.interfaces[0]
    ni.enqueue(Message(0, 3, 0, 5, "REQ"), 0)
    reply = Message(0, 3, 1, 5, "REP")
    ni.enqueue(reply, 0)
    run(net, 100)
    kinds = {m.kind for _c, m in delivered}
    assert kinds == {"REQ", "REP"}
    # both finished around the same time: neither starved
    times = {m.kind: c for c, m in delivered}
    assert abs(times["REQ"] - times["REP"]) <= 6


def test_injection_respects_credits():
    """With the router's input buffer full, the NI must stall."""
    net, _ = make_net()
    ni = net.interfaces[0]
    # fill with a message that cannot drain quickly (12 flits > 5-deep
    # buffer) plus another behind it
    ni.enqueue(Message(0, 3, 0, 12, "BULK1"), 0)
    run(net, 4)
    # at most depth + in-flight flits may have left the NI
    assert net.stats.counter("noc.flits_injected") <= 6


def test_reassembly_handles_interleaved_messages():
    net, delivered = make_net()
    # two sources send to the same sink concurrently; flits interleave at
    # the sink's ejection link
    net.interfaces[1].enqueue(Message(1, 0, 0, 5, "A"), 0)
    net.interfaces[4].enqueue(Message(4, 0, 0, 5, "B"), 0)
    run(net, 200)
    kinds = sorted(m.kind for _c, m in delivered)
    assert kinds == ["A", "B"]
    for _c, m in delivered:
        assert m.network_latency > 0


def test_ni_credit_mirror_restored_after_traffic():
    net, _ = make_net()
    for node in range(4):
        net.interfaces[node].enqueue(Message(node, 15, 0, 5, "REQ"), 0)
    run(net, 400)
    depth = net.config.noc.buffer_depth_flits
    for ni in net.interfaces:
        for vn, row in enumerate(ni.credits):
            for credits in row:
                assert credits == depth


def test_queue_accounting_accumulates():
    net, delivered = make_net()
    ni = net.interfaces[0]
    first = Message(0, 3, 0, 5, "FIRST")
    second = Message(0, 3, 0, 1, "SECOND")
    ni.enqueue(first, 0)
    ni.enqueue(second, 0)
    run(net, 200)
    by_kind = {m.kind: m for _c, m in delivered}
    assert by_kind["SECOND"].queueing_latency >= 5  # waited for 5 flits
    assert by_kind["FIRST"].queueing_latency <= 2


def test_enqueued_message_not_injectable_same_cycle():
    net, _ = make_net()
    ni = net.interfaces[0]
    msg = Message(0, 1, 0, 1, "REQ")
    ni.enqueue(msg, 5)
    net.tick(5)
    assert net.stats.counter("noc.flits_injected") == 0
    net.tick(6)
    assert net.stats.counter("noc.flits_injected") == 1
