"""Unit tests for the unified telemetry subsystem (repro.telemetry)."""

import json
import os

import pytest

from repro.harness.experiment import RunResult, RunSpec
from repro.noc.traffic import RequestReplyTraffic
from repro.sim.config import SystemConfig, Variant
from repro.sim.kernel import Simulator
from repro.sim.stats import Stats
from repro.telemetry import (
    KernelProfiler,
    MetricRegistry,
    MetricSampler,
    SpanRecorder,
    Telemetry,
    TelemetryConfig,
    counter_rate,
    gauge,
    histogram_percentile_delta,
    mean_delta,
    ratio_delta,
)


# ----------------------------------------------------------------------
# Metric probes and registry.
# ----------------------------------------------------------------------
def test_probe_factories_report_interval_values():
    stats = Stats()
    registry = MetricRegistry()
    registry.add_probe("rate", counter_rate(stats, "flits", interval=10))
    registry.add_probe("hit_rate", ratio_delta(stats, "hits", "total"))
    registry.add_probe("lat", mean_delta(stats, "lat"))
    registry.add_probe("p95", histogram_percentile_delta(stats, "dist", 95))
    registry.add_probe("level", gauge(lambda cycle: 7))

    stats.bump("flits", 20)
    stats.bump("hits", 3)
    stats.bump("total", 4)
    stats.observe("lat", 10)
    stats.observe("lat", 30)
    for v in range(100):
        stats.record("dist", v)
    registry.sample(10)

    # second interval: different activity, deltas must not leak
    stats.bump("flits", 5)
    stats.bump("total", 2)
    stats.observe("lat", 100)
    stats.record("dist", 1000)
    registry.sample(20)

    assert registry.cycles == [10, 20]
    assert registry.series("rate") == [2.0, 0.5]
    assert registry.series("hit_rate") == [0.75, 0.0]
    assert registry.series("lat") == [20.0, 100.0]
    assert registry.series("p95")[0] == 94  # 95th of 0..99
    assert registry.series("p95")[1] == 1000  # only the fresh sample
    assert registry.series("level") == [7, 7]


def test_interval_percentile_empty_interval_is_zero():
    stats = Stats()
    probe = histogram_percentile_delta(stats, "dist", 50)
    stats.record("dist", 42)
    assert probe(10) == 42
    assert probe(20) == 0.0  # nothing new this interval


def test_registry_rejects_duplicates_and_exports(tmp_path):
    registry = MetricRegistry()
    registry.add_probe("a", gauge(lambda c: 1.5))
    with pytest.raises(ValueError):
        registry.add_probe("a", gauge(lambda c: 2))
    registry.sample(100)
    assert registry.rows() == [[100, 1.5]]
    csv_path = registry.write_csv(str(tmp_path / "m.csv"))
    json_path = registry.write_json(str(tmp_path / "m.json"))
    assert open(csv_path).read().splitlines()[0] == "cycle,a"
    assert json.load(open(json_path)) == {"cycle": [100], "a": [1.5]}


class _Idle:
    """Component that never has work (sleeps forever once registered)."""

    def tick(self, cycle):
        pass

    def next_wake(self, cycle):
        return None


def test_sampler_cadence_on_kernel(tmp_path):
    sim = Simulator()
    sim.add(_Idle())
    registry = MetricRegistry()
    registry.add_probe("cycle_echo", gauge(lambda cycle: cycle))
    sampler = MetricSampler(registry, interval=10).attach(sim)
    sim.run(35)
    # exact cadence even though the only component sleeps (fast-forward
    # is bounded by the sampler's next_due)
    assert registry.cycles == [10, 20, 30]
    assert registry.series("cycle_echo") == [10, 20, 30]
    sampler.detach()
    sim.run(20)
    assert registry.cycles == [10, 20, 30]  # detached: no more samples
    assert sampler.next_due(15) == 20
    assert sampler.next_due(20) == 20
    assert sampler.next_due(0) == 10
    with pytest.raises(ValueError):
        MetricSampler(registry, interval=0)


# ----------------------------------------------------------------------
# Span recorder.
# ----------------------------------------------------------------------
def test_span_recorder_full_lifecycle(chip):
    c = chip(variant=Variant.COMPLETE_NOACK)
    recorder = SpanRecorder()
    for router in c.net.routers:
        router.observer = recorder
    for ni in c.net.interfaces:
        ni.observer = recorder
    c.request(0, 5)
    c.run_until_drained()
    spans = {s.cls: s for s in recorder.closed}
    assert set(spans) == {"req", "crep"}
    req = spans["req"]
    assert req.kind == "REQUEST" and req.src == 0 and req.dest == 5
    assert req.enqueued <= req.injected <= req.ejected
    assert req.reservations, "circuit-building request placed no reservation"
    crep = spans["crep"]
    assert crep.on_circuit and crep.plan_kind == "circuit"
    assert crep.hits, "circuit reply saw no circuit-check hits"
    assert crep.queue_cycles >= 0 and crep.net_cycles > 0

    trace = recorder.chrome_trace()
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i"} <= phases
    slices = [e for e in events if e["ph"] == "X"]
    assert all(e["dur"] >= 1 and e["ts"] >= 0 for e in slices)
    table = recorder.breakdown_table()
    assert "crep" in table and "hits/msg" in table


def test_span_recorder_respects_limit(chip):
    c = chip(variant=Variant.BASELINE)
    recorder = SpanRecorder(limit=1)
    for ni in c.net.interfaces:
        ni.observer = recorder
    c.request(0, 1, builds_circuit=False)
    c.request(2, 3, builds_circuit=False)
    c.run_until_drained()
    assert len(recorder.closed) == 1
    assert recorder.dropped >= 1
    assert "not recorded" in recorder.breakdown_table()


# ----------------------------------------------------------------------
# Kernel profiler.
# ----------------------------------------------------------------------
def test_profiler_attributes_and_restores():
    traffic = RequestReplyTraffic(SystemConfig(n_cores=16),
                                  requests_per_node_per_kcycle=30.0, seed=3)
    profiler = KernelProfiler().attach(traffic.sim)
    with pytest.raises(RuntimeError):
        profiler.attach(traffic.sim)
    traffic.run(400)
    report = profiler.report()  # live snapshot
    assert report["classes"]["Router"]["ticks"] > 0
    profiler.detach()
    # original bound ticks restored: hot loop calls the component again
    for slot in traffic.sim._slots:
        assert slot.tick.__self__ is slot.component
    report = profiler.report()
    assert report["wall_seconds"] > 0
    assert set(report["groups"]) <= {"router", "ni", "driver", "coherence",
                                     "other"}
    assert report["classes"]["Router"]["group"] == "router"
    assert report["classes"]["RequestReplyTraffic"]["group"] == "driver"
    total_ticks = sum(r["ticks"] for r in report["classes"].values())
    assert total_ticks == report["ticks_run"]
    table = profiler.table()
    assert "Router" in table and "skip ratio" in table
    profiler.detach()  # idempotent


# ----------------------------------------------------------------------
# Facade.
# ----------------------------------------------------------------------
def test_facade_attach_detach_and_export(tmp_path):
    config = TelemetryConfig(
        interval=100,
        out_dir=str(tmp_path / "telemetry"),
        trace_dir=str(tmp_path / "trace"),
    )
    traffic = RequestReplyTraffic(SystemConfig(n_cores=16),
                                  requests_per_node_per_kcycle=30.0, seed=3)
    telem = Telemetry(config).attach(traffic)
    with pytest.raises(RuntimeError):
        telem.attach(traffic)
    assert all(r.observer is telem.spans for r in traffic.net.routers)
    traffic.run(500)
    telem.detach()
    assert all(r.observer is None for r in traffic.net.routers)
    assert all(ni.observer is None for ni in traffic.net.interfaces)
    assert not traffic.sim._watchdogs
    assert len(telem.registry) >= 4
    streams = telem.registry.names()
    assert "circuit_hit_rate" in streams and len(streams) >= 5
    assert telem.spans.closed, "no message spans recorded"

    paths = telem.export("unit")
    assert set(paths) == {"metrics_csv", "metrics_json", "trace",
                          "breakdown", "profile"}
    for path in paths.values():
        assert os.path.exists(path)
    trace = json.load(open(paths["trace"]))
    assert trace["traceEvents"], "empty Chrome trace"
    telem.detach()  # idempotent


def test_facade_requires_a_network():
    with pytest.raises(ValueError):
        Telemetry().attach(Simulator())


def test_facade_disabled_instruments():
    config = TelemetryConfig(metrics=False, spans=False, profile=False)
    assert not config.enabled
    traffic = RequestReplyTraffic(SystemConfig(n_cores=16),
                                  requests_per_node_per_kcycle=10.0, seed=1)
    telem = Telemetry(config).attach(traffic)
    assert telem.registry is None and telem.spans is None
    assert telem.profiler is None
    assert traffic.net.routers[0].observer is None
    assert telem.export("nothing") == {}
    telem.detach()


# ----------------------------------------------------------------------
# RunSpec / RunResult integration surface.
# ----------------------------------------------------------------------
def test_runspec_telemetry_is_cache_key_neutral(monkeypatch):
    plain = RunSpec(16, Variant.BASELINE, "fft")
    observed = RunSpec(16, Variant.BASELINE, "fft",
                       telemetry=TelemetryConfig())
    assert plain.key() == observed.key()
    assert not plain.observed and observed.observed
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    scaled = observed.scaled()
    assert scaled.telemetry == observed.telemetry
    assert "/" not in observed.label()


def test_run_result_histogram_accessors():
    result = RunResult(
        spec_key="k", n_cores=16, variant="Baseline", workload="fft",
        exec_cycles=100,
        counters={"msg.count.GETS": 3, "msg.count.GETX": 1, "other": 9},
        means={"lat.net.req.p95": 12.5},
        histograms={
            "lat.net.crep": {
                "bucket_width": 1,
                "count": 4,
                "buckets": {"10": 2, "30": 2},
            }
        },
    )
    hist = result.histogram("lat.net.crep")
    assert hist.count == 4
    assert result.percentile("lat.net.crep", 50) == 10
    assert result.percentile("lat.net.crep", 100) == 30
    # pre-histogram cache entries fall back to the precomputed means
    assert result.percentile("lat.net.req", 95) == 12.5
    assert result.percentile("lat.net.norep", 95) == 0.0
    assert result.histogram("lat.net.norep") is None
    assert result.counters_with_prefix("msg.count.") == {
        "msg.count.GETS": 3, "msg.count.GETX": 1,
    }
    # round-trips through the JSON cache shape
    again = RunResult.from_json(json.loads(json.dumps(result.to_json())))
    assert again.percentile("lat.net.crep", 100) == 30
