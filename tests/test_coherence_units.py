"""L1 / L2-directory / memory controller unit tests with a captured NI."""

import pytest

from repro.coherence.l1 import L1Controller, L1State
from repro.coherence.l2dir import L2BankController
from repro.coherence.memory import MemoryController
from repro.coherence.messages import Kind, MessageFactory
from repro.sim.config import SystemConfig, Variant
from repro.sim.stats import Stats


class FakeNi:
    """Captures outgoing messages instead of injecting them."""

    def __init__(self):
        self.sent = []
        self.cancelled = []

    def enqueue(self, msg, cycle):
        self.sent.append((cycle, msg))

    def cancel_circuit(self, key, cycle):
        self.cancelled.append(key)
        return True

    def kinds(self):
        return [m.kind for _, m in self.sent]

    def last(self):
        return self.sent[-1][1]

    def clear(self):
        self.sent.clear()


@pytest.fixture
def setup():
    config = SystemConfig(n_cores=16).with_variant(Variant.BASELINE)
    factory = MessageFactory(config)
    stats = Stats()
    return config, factory, stats


def make_l1(setup, node=0):
    config, factory, stats = setup
    ni = FakeNi()
    l1 = L1Controller(node, config, factory, ni, home_of=lambda a: 3,
                      stats=stats)
    return l1, ni


def make_l2(setup, node=3):
    config, factory, stats = setup
    ni = FakeNi()
    l2 = L2BankController(node, config, factory, ni, mc_of=lambda a: 12,
                          stats=stats)
    return l2, ni


def drive(ctrl, cycles=40, start=0):
    for cycle in range(start, start + cycles):
        ctrl.tick(cycle)


# ---------------------------------------------------------------------------
# L1 controller.
# ---------------------------------------------------------------------------

def test_l1_load_miss_sends_gets(setup):
    l1, ni = make_l1(setup)
    assert l1.access(0x1000, False, 0) is False
    assert ni.kinds() == [Kind.GETS]
    assert ni.last().dest == 3
    assert ni.last().builds_circuit


def test_l1_store_miss_sends_getx(setup):
    l1, ni = make_l1(setup)
    l1.access(0x1000, True, 0)
    assert ni.kinds() == [Kind.GETX]


def test_l1_hits_dont_send(setup):
    l1, ni = make_l1(setup)
    l1.prewarm_line(0x1000, L1State.EXCLUSIVE)
    assert l1.access(0x1000, False, 0) is True
    assert l1.access(0x1000, True, 1) is True  # silent E->M upgrade
    assert ni.sent == []
    assert l1.array.peek(0x1000).state is L1State.MODIFIED


def test_l1_store_to_shared_is_upgrade_miss(setup):
    l1, ni = make_l1(setup)
    l1.prewarm_line(0x1000, L1State.SHARED)
    assert l1.access(0x1000, True, 0) is False
    assert ni.kinds() == [Kind.GETX]


def test_l1_data_reply_installs_resumes_and_acks(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    resumed = []
    l1.resume_core = resumed.append
    l1.access(0x1000, False, 0)
    ni.clear()
    reply = factory.l2_reply(3, 0, 0x1000, ni_request(factory), exclusive=True)
    l1.receive(reply, 5)
    drive(l1, 10, start=5)
    assert l1.array.peek(0x1000).state is L1State.EXCLUSIVE
    assert resumed
    assert ni.kinds() == [Kind.L1_DATA_ACK]


def ni_request(factory):
    return factory.gets(0, 3, 0x1000)


def test_l1_suppressed_ack_is_counted_eliminated(setup):
    config, factory, stats = setup
    l1, ni = make_l1(setup)
    l1.resume_core = lambda c: None
    l1.access(0x1000, False, 0)
    ni.clear()
    reply = factory.l2_reply(3, 0, 0x1000, ni_request(factory), exclusive=True)
    reply.payload.ack_suppressed = True
    l1.receive(reply, 5)
    drive(l1, 10, start=5)
    assert ni.sent == []  # no ACK on the wire
    assert stats.counter("circuit.outcome.eliminated") == 1


def test_l1_modified_eviction_writes_back(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    l1.resume_core = lambda c: None
    # fill one set (4 ways) with MODIFIED lines: set stride = sets*64
    stride = config.cache.l1_sets * 64
    for i in range(4):
        l1.prewarm_line(0x10000 + i * stride, L1State.MODIFIED)
    l1.access(0x10000 + 4 * stride, False, 0)
    ni.clear()
    reply = factory.l2_reply(3, 0, 0x10000 + 4 * stride,
                             ni_request(factory), exclusive=True)
    l1.receive(reply, 5)
    drive(l1, 10, start=5)
    kinds = ni.kinds()
    assert Kind.WB_L1 in kinds
    wb = next(m for _, m in ni.sent if m.kind == Kind.WB_L1)
    assert wb.n_flits == 5  # replacement data carries the line
    assert wb.payload.exclusive  # dirty
    assert len(l1.wb_buffer) == 1


def test_l1_clean_eviction_is_silent(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    l1.resume_core = lambda c: None
    stride = config.cache.l1_sets * 64
    for i in range(4):
        l1.prewarm_line(0x10000 + i * stride, L1State.EXCLUSIVE)
    l1.access(0x10000 + 4 * stride, False, 0)
    ni.clear()
    reply = factory.l2_reply(3, 0, 0x10000 + 4 * stride,
                             ni_request(factory), exclusive=True)
    l1.receive(reply, 5)
    drive(l1, 10, start=5)
    assert Kind.WB_L1 not in ni.kinds()


def test_l1_inv_acks_even_when_line_absent(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    inv = factory.inv(3, 0, 0x2000)
    l1.receive(inv, 2)
    drive(l1, 10, start=2)
    assert ni.kinds() == [Kind.L1_INV_ACK]


def test_l1_forward_gets_downgrades_and_serves(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    l1.prewarm_line(0x3000, L1State.MODIFIED)
    fwd = factory.forward(Kind.FWD_GETS, 3, 0, 0x3000, requestor=9,
                          undone_circuit=True)
    l1.receive(fwd, 2)
    drive(l1, 10, start=2)
    assert l1.array.peek(0x3000).state is L1State.SHARED
    reply = ni.last()
    assert reply.kind == Kind.L1_TO_L1
    assert reply.dest == 9
    assert reply.outcome_hint == "undone"
    assert not reply.payload.exclusive


def test_l1_forward_getx_invalidates(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    l1.prewarm_line(0x3000, L1State.EXCLUSIVE)
    fwd = factory.forward(Kind.FWD_GETX, 3, 0, 0x3000, requestor=9,
                          undone_circuit=False)
    l1.receive(fwd, 2)
    drive(l1, 10, start=2)
    assert l1.array.peek(0x3000) is None
    assert ni.last().payload.exclusive


def test_l1_defers_rerequest_during_own_writeback(setup):
    config, factory, _ = setup
    l1, ni = make_l1(setup)
    l1.resume_core = lambda c: None
    l1.wb_buffer[0x4000] = True  # writeback in flight
    assert l1.access(0x4000, False, 0) is False
    assert ni.sent == []  # deferred
    ack = factory.l2_wb_ack(3, 0, 0x4000, factory.wb_l1(0, 3, 0x4000))
    l1.receive(ack, 2)
    drive(l1, 10, start=2)
    assert ni.kinds() == [Kind.GETS]


# ---------------------------------------------------------------------------
# L2 bank / directory.
# ---------------------------------------------------------------------------

def run_l2(l2, until=400):
    drive(l2, until)


def test_l2_miss_fetches_from_memory_then_grants(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    gets = factory.gets(0, 3, 0x5000)
    l2.receive(gets, 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.MEM_READ]
    assert ni.last().dest == 12
    mem = factory.memory_data(12, 3, 0x5000, ni.last())
    ni.clear()
    l2.receive(mem, 30)
    drive(l2, 20, start=30)
    assert ni.kinds() == [Kind.L2_REPLY]
    assert ni.last().payload.exclusive  # sole sharer gets E
    assert ni.last().dest == 0


def test_l2_hit_grants_shared_when_other_sharers(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    l2.prewarm_line(0x5000, sharers={7})
    gets = factory.gets(0, 3, 0x5000)
    l2.receive(gets, 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.L2_REPLY]
    assert not ni.last().payload.exclusive


def test_l2_blocks_line_until_data_ack(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    l2.prewarm_line(0x5000, sharers={7})
    l2.receive(factory.gets(0, 3, 0x5000), 0)
    drive(l2, 20)
    ni.clear()
    # second request while blocked: queued, no reply yet
    l2.receive(factory.gets(1, 3, 0x5000), 21)
    drive(l2, 20, start=21)
    assert ni.sent == []
    # ack unblocks and the queued request is served
    l2.receive(factory.l1_data_ack(0, 3, 0x5000), 60)
    drive(l2, 20, start=60)
    assert ni.kinds() == [Kind.L2_REPLY]
    assert ni.last().dest == 1


def test_l2_forwards_to_exclusive_owner_and_cancels_circuit(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    l2.prewarm_line(0x5000, owner=7)
    gets = factory.gets(0, 3, 0x5000)
    l2.receive(gets, 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.FWD_GETS]
    fwd = ni.last()
    assert fwd.dest == 7 and fwd.payload.requestor == 0
    assert fwd.payload.undone_circuit  # FakeNi confirms cancellation
    assert ni.cancelled == [gets.circuit_key]
    # data ack from requestor completes: both become sharers
    l2.receive(factory.l1_data_ack(0, 3, 0x5000), 40)
    drive(l2, 20, start=40)
    line = l2.array.peek(0x5000)
    assert line.owner is None
    assert line.sharers == {0, 7}
    assert line.dirty


def test_l2_getx_invalidates_sharers_before_grant(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    l2.prewarm_line(0x5000, sharers={5, 9})
    l2.receive(factory.getx(0, 3, 0x5000), 0)
    drive(l2, 20)
    kinds = ni.kinds()
    assert kinds.count(Kind.INV) == 2
    assert Kind.L2_REPLY not in kinds
    ni.clear()
    l2.receive(factory.l1_inv_ack(5, 3, 0x5000), 30)
    l2.receive(factory.l1_inv_ack(9, 3, 0x5000), 31)
    drive(l2, 20, start=31)
    assert ni.kinds() == [Kind.L2_REPLY]
    assert ni.last().payload.exclusive
    l2.receive(factory.l1_data_ack(0, 3, 0x5000), 60)
    drive(l2, 10, start=60)
    assert l2.array.peek(0x5000).owner == 0


def test_l2_writeback_from_owner(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    l2.prewarm_line(0x5000, owner=0)
    wb = factory.wb_l1(0, 3, 0x5000)
    wb.payload.exclusive = True
    l2.receive(wb, 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.L2_WB_ACK]
    line = l2.array.peek(0x5000)
    assert line.owner is None and line.dirty


def test_l2_stale_writeback_still_acked(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    l2.prewarm_line(0x5000, owner=9)  # ownership moved on
    wb = factory.wb_l1(0, 3, 0x5000)
    l2.receive(wb, 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.L2_WB_ACK]
    assert l2.array.peek(0x5000).owner == 9  # untouched


def test_l2_eviction_invalidates_and_writes_back(setup):
    config, factory, _ = setup
    l2, ni = make_l2(setup)
    # fill one set (16 ways): bank 3 owns blocks where block % 16 == 3
    sets = config.cache.l2_bank_sets
    base_block = 3
    addrs = [(base_block + 16 * sets * i) * 64 for i in range(16)]
    for addr in addrs:
        assert l2.prewarm_line(addr, owner=5)
    new_addr = (base_block + 16 * sets * 16) * 64
    l2.receive(factory.gets(0, 3, new_addr), 0)
    drive(l2, 20)
    kinds = ni.kinds()
    assert Kind.INV in kinds  # victim owner invalidated
    assert Kind.MEM_READ in kinds  # fetch proceeds in parallel
    inv = next(m for _, m in ni.sent if m.kind == Kind.INV)
    ni.clear()
    l2.receive(factory.l1_inv_ack(5, 3, inv.payload.addr), 30)
    drive(l2, 20, start=30)
    # owner invalidation implies dirty data: written back to memory
    assert ni.kinds() == [Kind.WB_L2]


# ---------------------------------------------------------------------------
# Memory controller.
# ---------------------------------------------------------------------------

def test_memory_read_latency_and_reply(setup):
    config, factory, stats = setup
    ni = FakeNi()
    mc = MemoryController(12, config, factory, ni, stats)
    req = factory.mem_read(3, 12, 0x5000)
    mc.receive(req, 10)
    drive(mc, 159, start=10)  # cycles 10..168: before the 160-cycle latency
    assert ni.sent == []
    drive(mc, 3, start=169)  # fires at 170 = 10 + 160
    assert ni.kinds() == [Kind.MEMORY_DATA]
    assert ni.sent[0][0] == 170
    assert ni.last().n_flits == 5


def test_memory_write_ack(setup):
    config, factory, stats = setup
    ni = FakeNi()
    mc = MemoryController(12, config, factory, ni, stats)
    wb = factory.wb_l2(3, 12, 0x5000)
    mc.receive(wb, 0)
    drive(mc, 170)
    assert ni.kinds() == [Kind.MEMORY_ACK]
    assert ni.last().n_flits == 1


def test_memory_rejects_unknown_kind(setup):
    config, factory, stats = setup
    ni = FakeNi()
    mc = MemoryController(12, config, factory, ni, stats)
    with pytest.raises(ValueError):
        mc.receive(factory.gets(0, 12, 0x40), 0)
