"""Fault-injection campaign: every fault class caught by its own checker."""

import json
import os

import pytest

from repro.validate import EXPECTED_CHECKER, FaultKind, run_fault


@pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
def test_fault_detected_by_expected_checker(kind, tmp_path):
    outcome = run_fault(kind, seed=7, crash_dir=str(tmp_path))
    assert outcome.injected is not None, "fault never found a target"
    assert outcome.detected, f"{kind.value} escaped: {outcome.error}"
    assert not outcome.false_positive
    assert outcome.checker == EXPECTED_CHECKER[kind]
    assert outcome.detect_cycle >= outcome.injected_cycle
    assert outcome.ok

    # a crash report was saved and records what was broken
    assert outcome.report_path is not None
    assert os.path.exists(outcome.report_path)
    with open(outcome.report_path) as fh:
        data = json.load(fh)
    assert data["fault"]["fault"] == kind.value
    assert data["fault"]["cycle"] == outcome.injected_cycle


def test_injection_is_deterministic():
    first = run_fault(FaultKind.LEAK_CREDIT, seed=11)
    second = run_fault(FaultKind.LEAK_CREDIT, seed=11)
    assert first.injected == second.injected
    assert first.injected_cycle == second.injected_cycle
    assert first.detect_cycle == second.detect_cycle
    assert first.error == second.error


def test_detection_is_seed_robust():
    for seed in (11, 12):
        outcome = run_fault(FaultKind.LEAK_CREDIT, seed=seed)
        assert outcome.ok, f"seed {seed}: {outcome.error}"
