"""Circuit table and reservation-walk data structures."""

from hypothesis import given, strategies as st

from repro.circuits.table import (
    CircuitEntry,
    CircuitTable,
    CircuitWalk,
    HopRecord,
    circuit_key,
)
from repro.noc.topology import Port


def entry(key=(0, 0x40, 1), start=None, end=None):
    return CircuitEntry(key, Port.EAST, Port.WEST, built_cycle=0,
                        window_start=start, window_end=end)


def test_untimed_entries_never_expire():
    e = entry()
    assert e.live(0) and e.live(10**9)
    assert not e.timed


def test_timed_entries_expire():
    e = entry(start=100, end=120)
    assert e.timed
    assert e.live(100) and e.live(120)
    assert not e.live(121)


def test_overlap_detection():
    e = entry(start=100, end=120)
    assert e.overlaps(120, 130)
    assert e.overlaps(90, 100)
    assert e.overlaps(105, 110)
    assert not e.overlaps(121, 140)
    assert not e.overlaps(50, 99)


@given(st.integers(0, 200), st.integers(0, 200),
       st.integers(0, 200), st.integers(0, 200))
def test_overlap_is_symmetric(a0, a1, b0, b1):
    a0, a1 = sorted((a0, a1))
    b0, b1 = sorted((b0, b1))
    ea = entry(key=(0, 1, 1), start=a0, end=a1)
    eb = entry(key=(0, 2, 2), start=b0, end=b1)
    assert ea.overlaps(b0, b1) == eb.overlaps(a0, a1)


def test_table_capacity_and_purge():
    table = CircuitTable(capacity=3)
    table.insert(entry(key=(0, 1, 1), start=10, end=20))
    table.insert(entry(key=(0, 2, 2), start=10, end=50))
    table.insert(entry(key=(0, 3, 3)))
    assert table.live_count(15) == 3
    assert table.live_count(30) == 2  # first expired and purged
    assert (0, 1, 1) not in table.entries
    assert table.lookup((0, 2, 2), 30) is not None
    assert table.lookup((0, 2, 2), 60) is None  # lazy expiry on lookup


def test_table_remove():
    table = CircuitTable(capacity=2)
    e = entry()
    table.insert(e)
    assert table.remove(e.key) is e
    assert table.remove(e.key) is None


def test_walk_fully_reserved():
    walk = CircuitWalk((0, 1, 1), reply_flits=5, path_hops=2, turnaround=7)
    assert not walk.fully_reserved  # no hops yet
    walk.hops.append(HopRecord(0, Port.EAST, Port.LOCAL, True))
    assert walk.fully_reserved
    walk.hops.append(HopRecord(1, Port.LOCAL, Port.WEST, False))
    assert not walk.fully_reserved
    assert len(walk.reserved_hops) == 1


def test_walk_failed_flag_dominates():
    walk = CircuitWalk((0, 1, 1), 5, 2, 7)
    walk.hops.append(HopRecord(0, Port.EAST, Port.LOCAL, True))
    walk.failed = True
    assert not walk.fully_reserved


def test_feasible_departure_untimed_hops_pass_through():
    walk = CircuitWalk((0, 1, 1), 5, 1, 7)
    walk.hops.append(HopRecord(0, Port.EAST, Port.LOCAL, True))
    assert walk.feasible_departure(42, 2, 2) == 42


def test_circuit_key_shape():
    assert circuit_key(3, 0x1000) == (3, 0x1000)


@given(st.integers(0, 63), st.integers(0, 1 << 32))
def test_entries_keyed_uniquely(dest, block):
    table = CircuitTable(capacity=8)
    key_a = (dest, block, 1)
    key_b = (dest, block, 2)
    table.insert(CircuitEntry(key_a, Port.EAST, Port.WEST, 0))
    table.insert(CircuitEntry(key_b, Port.EAST, Port.WEST, 0))
    assert len(table.entries) == 2
