"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.noc.flit import Message
from repro.noc.network import Network
from repro.sim.config import SystemConfig, Variant


class ScriptedChip:
    """A Network whose nodes answer requests like a trivial protocol.

    Every request delivered to a node triggers a reply of ``reply_flits``
    flits back to the requestor after ``turnaround`` cycles.  This isolates
    NoC/circuit behaviour from the coherence protocol.
    """

    def __init__(self, n_cores: int = 16, variant: Variant = Variant.BASELINE,
                 turnaround: int = 7, reply_flits: int = 5,
                 reply_kind: str = "L2_REPLY") -> None:
        self.config = SystemConfig(n_cores=n_cores).with_variant(variant)
        self.net = Network(self.config)
        self.turnaround = turnaround
        self.reply_flits = reply_flits
        self.reply_kind = reply_kind
        self.cycle = 0
        self.delivered: Dict[int, Message] = {}
        self.deliveries: List[Tuple[int, Message]] = []
        self._timers: List[Tuple[int, Message]] = []
        for node in range(self.net.mesh.n_nodes):
            self.net.set_deliver(node, self._on_deliver)

    # ------------------------------------------------------------------
    def _on_deliver(self, msg: Message, cycle: int) -> None:
        self.deliveries.append((cycle, msg))
        self.delivered[msg.uid] = msg
        if msg.vn == 0 and msg.builds_circuit:
            reply = Message(msg.dest, msg.src, 1, self.reply_flits,
                            self.reply_kind)
            reply.circuit_eligible = True
            reply.circuit_key = msg.circuit_key
            self._timers.append((cycle + self.turnaround, reply))

    def request(self, src: int, dest: int, addr: int = 0x40,
                builds_circuit: bool = True, n_flits: int = 1) -> Message:
        msg = Message(src, dest, 0, n_flits, "REQUEST")
        msg.builds_circuit = builds_circuit
        msg.circuit_key = (src, addr, msg.uid)
        msg.reply_flits = self.reply_flits
        msg.expected_turnaround = self.turnaround
        self.net.inject(msg, self.cycle)
        return msg

    def send_reply(self, src: int, dest: int, kind: str = "ACK",
                   n_flits: int = 1, eligible: bool = False) -> Message:
        msg = Message(src, dest, 1, n_flits, kind)
        msg.circuit_eligible = eligible
        self.net.inject(msg, self.cycle)
        return msg

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.cycle += 1
            for item in [t for t in self._timers if t[0] == self.cycle]:
                self._timers.remove(item)
                self.net.inject(item[1], self.cycle)
            self.net.tick(self.cycle)

    def run_until_drained(self, max_cycles: int = 5000) -> None:
        for _ in range(max_cycles):
            if not self._timers and self.net.in_flight() == 0:
                return
            self.run(1)
        raise AssertionError("network did not drain")

    @property
    def stats(self):
        return self.net.stats


@pytest.fixture
def chip():
    """Factory fixture: chip(variant=..., n_cores=...) -> ScriptedChip."""
    def make(variant: Variant = Variant.BASELINE, n_cores: int = 16,
             **kwargs) -> ScriptedChip:
        return ScriptedChip(n_cores=n_cores, variant=variant, **kwargs)
    return make
