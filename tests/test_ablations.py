"""Design-choice ablations called out in DESIGN.md."""

import pytest

from repro import build_system, workload_by_name
from repro.sim.config import (
    CircuitConfig,
    CircuitMode,
    SystemConfig,
    Variant,
    small_test_config,
)

import sys
sys.path.insert(0, __file__.rsplit("/", 1)[0])
from conftest import ScriptedChip  # noqa: E402


def test_undo_on_l2_miss_marks_replies_undone():
    """Section 4.4 ablation: undoing on L2 misses produces 'undone' replies
    (the paper measured keep-built to perform better)."""
    base_cfg = small_test_config(16, Variant.COMPLETE, seed=5)
    undo_cfg = base_cfg.with_circuit(
        CircuitConfig(mode=CircuitMode.COMPLETE, undo_on_l2_miss=True)
    )
    keep = build_system(base_cfg, workload_by_name("fft"))
    undo = build_system(undo_cfg, workload_by_name("fft"))
    keep.run_instructions(500, max_cycles=1_500_000)
    undo.run_instructions(500, max_cycles=1_500_000)
    assert undo.stats.counter("circuit.origin_cancelled") > 0
    assert (undo.stats.counter("circuit.outcome.undone")
            > keep.stats.counter("circuit.outcome.undone"))


@pytest.mark.parametrize("capacity,expected", [(1, 1), (3, 3), (5, 5)])
def test_circuits_per_input_capacity(capacity, expected):
    """The paper chose 5 circuits/input experimentally; the limit binds."""
    cfg = SystemConfig(n_cores=16).with_circuit(
        CircuitConfig(mode=CircuitMode.COMPLETE,
                      max_circuits_per_input=capacity)
    )
    chip = ScriptedChip(16)
    chip.config = cfg
    from repro.noc.network import Network

    chip.net = Network(cfg)
    for node in range(16):
        chip.net.set_deliver(node, chip._on_deliver)
    chip.turnaround = 2000
    reqs = [chip.request(0, 15, addr=0x100 * (i + 1)) for i in range(6)]
    chip.run(300)
    reserved = [r for r in reqs if r.walk and r.walk.fully_reserved]
    assert len(reserved) == expected
    chip.run_until_drained(60000)


def test_ablation_mesh_scaling():
    """Paper section 5.5: latencies grow with mesh size (16x16 vs 4x4).

    The 16x16 point (256 tiles, the paper's largest configuration) runs
    under the sharded engine - the configuration the engine exists for -
    so this ablation also exercises sharding at scale.
    """
    from repro.sim.shard import run_sharded

    measure = 60  # measure-only quantum: 256 pure-Python tiles are slow
    small = build_system(small_test_config(16, Variant.COMPLETE, seed=3),
                         workload_by_name("canneal"))
    start = small.sim.cycle
    finish = small.run_instructions(measure, max_cycles=2_000_000)
    small_latency = small.stats.means["lat.net.req"].mean

    big = run_sharded(small_test_config(256, Variant.COMPLETE, seed=3),
                      "canneal", 0, measure, n_shards=2, check=False)
    assert big.n_shards == 2
    assert big.exec_cycles > 0
    retired = big.stats.counter("core.instructions")
    if retired:  # counter name guarded: fall back to latency-only check
        assert retired >= 256 * measure
    big_latency = big.stats.means["lat.net.req"].mean
    # average request latency must grow with the mesh diameter
    assert big_latency > small_latency


def test_load_sensitivity_circuits_fail_under_heavy_contention():
    """Paper section 5.5: heavy loads cause conflicts that prevent complete
    circuits from being built."""
    light = ScriptedChip(16, Variant.COMPLETE, turnaround=7)
    heavy = ScriptedChip(16, Variant.COMPLETE, turnaround=2000)

    def drive(chip, gap):
        i = 0
        for _round in range(6):
            for src in range(0, 16, 2):
                i += 1
                chip.request(src, 15 - src, addr=0x40 * i)
                chip.run(gap)
        chip.run_until_drained(150000)

    drive(light, gap=60)  # spread out, circuits freed quickly
    drive(heavy, gap=1)  # burst + long-held circuits => many conflicts
    def fail_rate(chip):
        s = chip.stats
        failed = s.counter("circuit.outcome.failed")
        total = s.counter("circuit.replies_total")
        return failed / total if total else 0.0

    assert fail_rate(heavy) > fail_rate(light)
