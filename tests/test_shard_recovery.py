"""Self-healing shard supervision: respawn, escalation, typed failure.

The sharded engine must survive the death of any worker process without
changing a single bit of the result: the supervisor respawns the victim
from its newest barrier snapshot, replays the logged coordinator replies
it missed, and the fleet continues as if nothing happened.  When
recovery is impossible (budget exhausted, deterministic worker error)
the run must fail with a typed error naming the shard - and no process,
healthy or wedged, may ever outlive the coordinator.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.cpu.workloads import workload_by_name
from repro.sim.config import Variant, small_test_config
from repro.sim.shard import (
    ShardRecoveryError,
    ShardWorkerDied,
    _shutdown_procs,
    resolve_shard_timeout,
    run_sharded,
)
from repro.system import CmpSystem

WARMUP = 80
MEASURE = 250


def _snapshot(stats):
    stats.flush()
    return (
        dict(stats.counters),
        {k: (m.total, m.count) for k, m in stats.means.items()},
        {k: (h.bucket_width, dict(h.buckets), h.count)
         for k, h in stats.histograms.items()},
    )


def _reference(config):
    system = CmpSystem(config, workload_by_name("canneal"))
    system.warmup(WARMUP)
    start = system.sim.cycle
    finish = system.run_instructions(MEASURE)
    return _snapshot(system.stats), start, finish, system.sim.cycle


@pytest.fixture(autouse=True)
def _no_engine_env(monkeypatch):
    for var in ("REPRO_SHARDS", "REPRO_SCALE", "REPRO_CACHE",
                "REPRO_SHARD_TIMEOUT", "REPRO_SHARD_RESPAWNS"):
        monkeypatch.delenv(var, raising=False)


# -- recovery keeps bit-identity ----------------------------------------

@pytest.mark.parametrize("barrier_seq", [3, 40])
def test_worker_sigkill_recovers_bit_identically(barrier_seq):
    """SIGKILL a worker mid-run; the respawned fleet finishes identically.

    Seq 3 dies before the first snapshot cadence (recovery = fresh build
    + full replay); seq 40 dies with a snapshot on disk (restore +
    partial replay).  Both paths must converge on the reference result.
    """
    config = small_test_config(16, Variant.REUSE_NOACK, seed=3)
    ref_stats, start, finish, end = _reference(config)
    result = run_sharded(
        config, "canneal", WARMUP, MEASURE, n_shards=2, check=False,
        _chaos={"shard": 0, "barrier_seq": barrier_seq, "action": "sigkill"},
    )
    assert result.respawns == 1
    assert result.start_cycle == start
    assert result.finish_cycle == finish
    assert result.end_cycle == end
    assert _snapshot(result.stats) == ref_stats


def test_respawn_budget_exhaustion_is_typed():
    """With a zero budget the first death surfaces as ShardRecoveryError."""
    config = small_test_config(16, Variant.REUSE_NOACK, seed=3)
    with pytest.raises(ShardRecoveryError, match="respawn budget") as err:
        run_sharded(
            config, "canneal", WARMUP, MEASURE, n_shards=2, check=False,
            respawn_limit=0,
            _chaos={"shard": 1, "barrier_seq": 3, "action": "sigkill"},
        )
    assert err.value.shard == 1


# -- shutdown backstop: terminate -> kill escalation --------------------

def _ignore_sigterm_forever():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


def test_shutdown_escalates_to_sigkill_for_stubborn_workers():
    """A SIGTERM-ignoring worker must still be reaped, and quickly."""
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_ignore_sigterm_forever, daemon=True)
    proc.start()
    deadline = time.monotonic() + 5
    while proc.pid is None and time.monotonic() < deadline:
        time.sleep(0.01)
    time.sleep(0.3)  # let the child install its SIG_IGN handler
    started = time.monotonic()
    _shutdown_procs([proc, None], join_timeout=0.2, term_timeout=0.5)
    elapsed = time.monotonic() - started
    assert not proc.is_alive()
    assert elapsed < 5, f"escalation took {elapsed:.1f}s"


def test_orphaned_workers_exit_when_coordinator_dies():
    """SIGKILLing the coordinator must not leak blocked workers.

    Workers are forked, so every sibling holds duplicate pipe fds and a
    dead coordinator never produces EOF; the workers' re-parenting check
    is the only exit path.  Kill a live coordinator and require every
    registered worker pid to vanish on its own.
    """
    import subprocess
    import sys
    import tempfile

    pidfile = tempfile.mktemp(prefix="repro-shard-pids-")
    env = dict(os.environ, REPRO_SHARD_PIDFILE=pidfile,
               PYTHONPATH=os.pathsep.join(sys.path))
    program = (
        "from repro.sim.config import small_test_config, Variant\n"
        "from repro.sim.shard import run_sharded\n"
        "run_sharded(small_test_config(16, Variant.REUSE_NOACK, seed=3),\n"
        "            'canneal', 5000, 100000, n_shards=2, check=False)\n"
    )
    proc = subprocess.Popen([sys.executable, "-c", program], env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        pids = []
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and len(pids) < 2:
            time.sleep(0.2)
            if os.path.exists(pidfile):
                pids = [int(line) for line in open(pidfile)
                        if line.strip()]
        assert len(pids) >= 2, "workers never registered their pids"
        time.sleep(1.0)  # let them get past startup and into the run
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        deadline = time.monotonic() + 30  # orphan poll is 5s; allow slack
        alive = set(pids)
        while time.monotonic() < deadline and alive:
            for pid in list(alive):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    alive.discard(pid)
            time.sleep(0.2)
        assert not alive, f"leaked orphan workers: {sorted(alive)}"
    finally:
        if proc.poll() is None:
            proc.kill()
        for pid in pids if "pids" in dir() else []:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        try:
            os.unlink(pidfile)
        except OSError:
            pass


# -- receive-timeout resolution -----------------------------------------

def test_timeout_explicit_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7")
    assert resolve_shard_timeout(override=3.5) == 3.5


def test_timeout_config_beats_environment(monkeypatch):
    import dataclasses

    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7")
    config = small_test_config(16, Variant.BASELINE, seed=1)
    config = dataclasses.replace(
        config, sim=dataclasses.replace(config.sim, shard_timeout=9.0)
    )
    assert resolve_shard_timeout(config) == 9.0


def test_timeout_environment_beats_default(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7")
    assert resolve_shard_timeout() == 7.0


def test_timeout_default_without_overrides():
    assert resolve_shard_timeout() == 1200.0


def test_timeout_rejects_nonsense(monkeypatch):
    with pytest.raises(ValueError):
        resolve_shard_timeout(override=0)
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "soon")
    with pytest.raises(ValueError, match="REPRO_SHARD_TIMEOUT"):
        resolve_shard_timeout()


def test_worker_died_error_carries_the_shard():
    error = ShardWorkerDied("shard worker 1 died (exit code -9)", shard=1)
    assert error.shard == 1
    assert "exit code -9" in str(error)
