"""Synthetic traces and workload profiles."""

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import AccessStream, StreamParams
from repro.cpu.workloads import (
    ALL_WORKLOADS,
    MULTIPROGRAMMED_MIX,
    PARALLEL_WORKLOADS,
    workload_by_name,
)


def make_stream(params=None, core=0, seed=1):
    return AccessStream(params or StreamParams(), core, 64, Random(seed))


def test_stream_is_deterministic():
    a = make_stream(seed=5)
    b = make_stream(seed=5)
    assert [a.next_access() for _ in range(50)] == [
        b.next_access() for _ in range(50)
    ]


def test_streams_differ_across_cores_and_seeds():
    a = [make_stream(core=0, seed=1).next_access() for _ in range(20)]
    b = [make_stream(core=1, seed=2).next_access() for _ in range(20)]
    assert a != b


def test_addresses_are_line_aligned():
    stream = make_stream()
    for _ in range(200):
        _gap, _w, addr = stream.next_access()
        assert addr % 64 == 0


def test_private_regions_disjoint_across_cores():
    params = StreamParams(shared_frac=0.0)
    streams = [make_stream(params, core=c, seed=c) for c in range(4)]
    seen = {}
    for c, stream in enumerate(streams):
        for _ in range(500):
            _g, _w, addr = stream.next_access()
            if addr in seen:
                assert seen[addr] == c, "private address crossed cores"
            seen[addr] = c


def test_shared_region_is_common():
    params = StreamParams(shared_frac=0.5, shared_lines=64)
    stream_a = make_stream(params, 0, 1)
    stream_b = make_stream(params, 1, 2)
    a = {stream_a.next_access()[2] for _ in range(500)}
    b = {stream_b.next_access()[2] for _ in range(500)}
    shared_a = {addr for addr in a if addr < 64 * 64}
    shared_b = {addr for addr in b if addr < 64 * 64}
    assert shared_a & shared_b  # overlap in the shared region


def test_gap_mean_tracks_mem_ratio():
    params = StreamParams(mem_ratio=0.25)
    stream = make_stream(params)
    gaps = [stream.next_access()[0] for _ in range(5000)]
    mean_gap = sum(gaps) / len(gaps)
    expected = (1 - 0.25) / 0.25  # geometric mean gap
    assert abs(mean_gap - expected) / expected < 0.15


def test_cold_addresses_never_repeat():
    params = StreamParams(cold_frac=0.5, mid_frac=0.0, shared_frac=0.0)
    stream = make_stream(params)
    cold = [addr for _g, _w, addr in
            (stream.next_access() for _ in range(300))
            if addr >= (1 << 32) * 64]
    assert len(cold) == len(set(cold))
    assert cold  # some cold accesses happened


def test_param_validation():
    with pytest.raises(ValueError):
        StreamParams(mem_ratio=0.0)
    with pytest.raises(ValueError):
        StreamParams(write_frac=1.5)
    with pytest.raises(ValueError):
        StreamParams(mid_frac=0.9, cold_frac=0.2)
    with pytest.raises(ValueError):
        StreamParams(hot_lines=0)


@settings(max_examples=25)
@given(
    mem=st.floats(0.05, 1.0),
    wr=st.floats(0, 1),
    sh=st.floats(0, 0.5),
    mid=st.floats(0, 0.5),
)
def test_any_valid_params_generate(mem, wr, sh, mid):
    params = StreamParams(mem_ratio=mem, write_frac=wr, shared_frac=sh,
                          mid_frac=mid)
    stream = make_stream(params)
    for _ in range(50):
        gap, is_write, addr = stream.next_access()
        assert gap >= 0
        assert isinstance(is_write, bool)
        assert addr >= 0


def test_workload_catalogue_matches_paper():
    names = {w.name for w in ALL_WORKLOADS}
    # 10 PARSEC + 11 SPLASH-2 + the multiprogrammed mix = 22 workloads
    assert len(ALL_WORKLOADS) == 22
    assert len(PARALLEL_WORKLOADS) == 21
    assert {"blackscholes", "canneal", "x264", "barnes", "ocean_cp",
            "water_spatial", "mix"} <= names
    parsec = [w for w in PARALLEL_WORKLOADS if w.suite == "parsec"]
    splash = [w for w in PARALLEL_WORKLOADS if w.suite == "splash2"]
    assert len(parsec) == 10 and len(splash) == 11


def test_workload_by_name():
    assert workload_by_name("canneal").suite == "parsec"
    with pytest.raises(KeyError):
        workload_by_name("doom")


def test_mix_assigns_each_app_once_at_16_cores():
    streams = MULTIPROGRAMMED_MIX.streams(16, 64, Random(1))
    assert len(streams) == 16
    params = {id(s.params) for s in streams}
    assert len(params) == 16  # 16 distinct applications


def test_mix_uses_four_copies_at_64_cores():
    streams = MULTIPROGRAMMED_MIX.streams(64, 64, Random(1))
    assert len(streams) == 64
    from collections import Counter

    counts = Counter(id(s.params) for s in streams)
    assert all(v == 4 for v in counts.values())


def test_mix_has_no_sharing():
    for s in MULTIPROGRAMMED_MIX.streams(16, 64, Random(1)):
        assert s.params.shared_frac == 0.0


def test_profiles_are_diverse():
    mids = {w.params.mid_frac for w in PARALLEL_WORKLOADS}
    shares = {w.params.shared_frac for w in PARALLEL_WORKLOADS}
    assert len(mids) > 10
    assert len(shares) > 5
