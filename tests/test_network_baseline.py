"""Baseline packet-switched network behaviour (no circuits)."""

from repro.sim.config import Variant



def manhattan(n, side=4):
    return n % side, n // side


def test_single_flit_request_latency(chip):
    """4-stage router + 1-cycle links: ~5 cycles/hop for requests."""
    c = chip(Variant.BASELINE)
    msg = c.request(0, 3, builds_circuit=False)  # 3 hops, 4 routers
    c.run_until_drained()
    delivered = c.delivered[msg.uid]
    # NI->R (2) + 3 hops x 5 + 3 pipeline stages at last router + eject (2)
    # network latency for a 1-flit message over distance 3:
    assert delivered.network_latency == 2 + 3 + 3 * 5 + 2


def test_zero_distance_message(chip):
    c = chip(Variant.BASELINE)
    msg = c.request(5, 5, builds_circuit=False)
    c.run_until_drained()
    assert msg.uid in c.delivered


def test_five_flit_message_streams_back_to_back(chip):
    c = chip(Variant.BASELINE)
    one = c.request(0, 3, builds_circuit=False, n_flits=1)
    c.run_until_drained()
    five_chip = chip(Variant.BASELINE)
    five = five_chip.request(0, 3, builds_circuit=False, n_flits=5)
    five_chip.run_until_drained()
    lat1 = c.delivered[one.uid].network_latency
    lat5 = five_chip.delivered[five.uid].network_latency
    # tail follows the head by exactly 4 cycles when streaming at 1/cycle
    assert lat5 == lat1 + 4


def test_request_reply_roundtrip(chip):
    c = chip(Variant.BASELINE)
    req = c.request(0, 15)
    c.run_until_drained()
    # the scripted responder sent a 5-flit reply back
    replies = [m for _, m in c.deliveries if m.vn == 1]
    assert len(replies) == 1
    assert replies[0].src == 15 and replies[0].dest == 0
    assert replies[0].network_latency > 0


def test_many_messages_all_delivered(chip):
    c = chip(Variant.BASELINE)
    sent = []
    for i in range(16):
        for j in range(0, 16, 5):
            if i != j:
                sent.append(c.request(i, j, addr=0x40 * (i + j)))
        c.run(2)
    c.run_until_drained(20000)
    delivered_requests = [m for _, m in c.deliveries if m.vn == 0]
    assert len(delivered_requests) == len(sent)
    replies = [m for _, m in c.deliveries if m.vn == 1]
    assert len(replies) == len(sent)


def test_no_flits_lost_under_burst(chip):
    """Hammer one destination from every node; credits must backpressure."""
    c = chip(Variant.BASELINE)
    n = 24
    for burst in range(3):
        for src in range(16):
            if src != 5:
                c.request(src, 5, addr=0x1000 * src + burst * 64)
        c.run(1)
    c.run_until_drained(50000)
    requests = [m for _, m in c.deliveries if m.vn == 0]
    assert len(requests) == 45
    assert c.net.in_flight() == 0


def test_credits_restore_after_drain(chip):
    c = chip(Variant.BASELINE)
    for src in range(8):
        c.request(src, 15, addr=64 * src)
    c.run_until_drained(20000)
    depth = c.config.noc.buffer_depth_flits
    for router in c.net.routers:
        for port, out in ((p, router.outputs[p]) for p in router.ports):
            for vn_row in out.vcs:
                for ovc in vn_row:
                    if port.name == "LOCAL":
                        continue
                    assert ovc.credits == depth, (
                        f"credit leak at router {router.node} {port.name}"
                    )
                    assert ovc.allocated_to is None


def test_queueing_latency_counted_separately(chip):
    c = chip(Variant.BASELINE)
    # Two messages from the same node: the second waits for the first.
    a = c.request(0, 3, addr=0x40, n_flits=5, builds_circuit=False)
    b = c.request(0, 3, addr=0x80, n_flits=5, builds_circuit=False)
    c.run_until_drained()
    assert c.delivered[b.uid].queueing_latency > c.delivered[a.uid].queueing_latency


def test_vn_separation(chip):
    """Requests and replies travel on different virtual networks."""
    c = chip(Variant.BASELINE)
    c.request(0, 15, addr=0x40)
    c.send_reply(0, 15, kind="L1_DATA_ACK")
    c.run_until_drained()
    kinds = {m.kind for _, m in c.deliveries}
    assert {"REQUEST", "L1_DATA_ACK", "L2_REPLY"} <= kinds
