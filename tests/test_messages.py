"""Coherence message factory (Table 3 message set)."""

from repro.coherence.messages import (
    CIRCUIT_ELIGIBLE_REPLIES,
    Kind,
    MessageFactory,
    REPLY_KINDS,
    REQUEST_KINDS,
)
from repro.sim.config import SystemConfig


def factory():
    return MessageFactory(SystemConfig(n_cores=16))


def test_kind_partitions():
    assert not (REQUEST_KINDS & REPLY_KINDS)
    assert CIRCUIT_ELIGIBLE_REPLIES <= REPLY_KINDS


def test_gets_builds_circuit_with_metadata():
    f = factory()
    msg = f.gets(2, 7, 0x1000)
    assert msg.vn == 0 and msg.n_flits == 1
    assert msg.builds_circuit
    assert msg.circuit_key == (2, 0x1000, msg.uid)
    assert msg.reply_flits == 5
    assert msg.expected_turnaround == 7  # L2 hit latency


def test_wb_carries_data_and_expects_short_ack():
    f = factory()
    wb = f.wb_l1(2, 7, 0x1000)
    assert wb.n_flits == 5
    assert wb.reply_flits == 1
    assert wb.builds_circuit


def test_memory_requests_expect_memory_latency():
    f = factory()
    read = f.mem_read(7, 12, 0x1000)
    assert read.expected_turnaround == 160
    assert read.reply_flits == 5
    wb = f.wb_l2(7, 12, 0x1000)
    assert wb.n_flits == 5 and wb.reply_flits == 1


def test_replies_inherit_circuit_key():
    f = factory()
    req = f.gets(2, 7, 0x1000)
    reply = f.l2_reply(7, 2, 0x1000, req, exclusive=True)
    assert reply.vn == 1 and reply.n_flits == 5
    assert reply.circuit_eligible
    assert reply.circuit_key == req.circuit_key
    assert reply.payload.exclusive


def test_acks_are_not_eligible():
    f = factory()
    for msg in (f.l1_data_ack(2, 7, 0x1000), f.l1_inv_ack(2, 7, 0x1000)):
        assert msg.vn == 1 and msg.n_flits == 1
        assert not msg.circuit_eligible


def test_l1_to_l1_not_eligible_but_carries_undone_hint():
    f = factory()
    msg = f.l1_to_l1(4, 2, 0x1000, exclusive=True, undone_circuit=True)
    assert not msg.circuit_eligible
    assert msg.outcome_hint == "undone"
    plain = f.l1_to_l1(4, 2, 0x1000, exclusive=False, undone_circuit=False)
    assert plain.outcome_hint is None


def test_forward_carries_requestor():
    f = factory()
    fwd = f.forward(Kind.FWD_GETX, 7, 4, 0x1000, requestor=2,
                    undone_circuit=True)
    assert fwd.dest == 4
    assert fwd.payload.requestor == 2
    assert fwd.payload.undone_circuit
    assert not fwd.builds_circuit
