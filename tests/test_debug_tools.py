"""Tracer, utilization heatmap and load sampler (repro.telemetry probes)."""

from repro.telemetry import (
    attach_tracer,
    detach_tracer,
    reset_utilization,
    utilization_heatmap,
)
from repro.noc.flit import Message
from repro.noc.network import Network
from repro.sim.config import SystemConfig, Variant


def run_traffic(net, pairs, cycles=200):
    for src, dest in pairs:
        net.interfaces[src].enqueue(Message(src, dest, 0, 1, "REQ"), 0)
    for cycle in range(1, cycles):
        net.tick(cycle)


def test_tracer_records_crossbar_events():
    net = Network(SystemConfig(n_cores=16))
    events = attach_tracer(net)
    run_traffic(net, [(0, 3)])
    # one flit crosses routers 0,1,2,3: four traversals
    assert len(events) == 4
    nodes = [e[1] for e in events]
    assert sorted(nodes) == [0, 1, 2, 3]
    assert all(e[3] == "REQ" for e in events)
    detach_tracer(net)
    run_traffic(net, [(4, 7)])
    assert len(events) == 4  # no longer recording


def test_custom_callback():
    net = Network(SystemConfig(n_cores=16))
    seen = []
    attach_tracer(net, lambda cycle, router, port, flit: seen.append(router.node))
    run_traffic(net, [(0, 1)])
    assert seen == [0, 1]


def test_tracers_chain_and_detach_in_lifo_order():
    net = Network(SystemConfig(n_cores=16))
    first, second = [], []
    attach_tracer(net, lambda cycle, r, port, flit: first.append(r.node))
    attach_tracer(net, lambda cycle, r, port, flit: second.append(r.node))
    run_traffic(net, [(0, 1)])
    # both layers observe every traversal, previous-first
    assert first == [0, 1]
    assert second == [0, 1]
    detach_tracer(net)  # pops the second layer only
    run_traffic(net, [(4, 5)])
    assert first == [0, 1, 4, 5]
    assert second == [0, 1]
    detach_tracer(net)  # back to no tracer at all
    run_traffic(net, [(8, 9)])
    assert first == [0, 1, 4, 5]
    assert all(r.tracer is None for r in net.routers)


def test_detach_without_tracer_is_harmless():
    net = Network(SystemConfig(n_cores=16))
    detach_tracer(net)
    assert all(r.tracer is None for r in net.routers)


def test_heatmap_shows_hot_routers():
    net = Network(SystemConfig(n_cores=16))
    run_traffic(net, [(0, 3), (4, 7), (8, 11)])
    text = utilization_heatmap(net)
    assert "peak" in text
    assert len(text.splitlines()) == 5  # title + 4 mesh rows
    # corner router 15 saw nothing
    assert net.routers[15].forwarded == 0
    assert net.routers[1].forwarded > 0
    reset_utilization(net)
    assert all(r.forwarded == 0 for r in net.routers)


def test_load_sampler_measures_injection():
    import pytest

    from repro.noc.traffic import RequestReplyTraffic

    from repro.telemetry import LoadSampler

    config = SystemConfig(n_cores=16)
    traffic = RequestReplyTraffic(config, requests_per_node_per_kcycle=20.0,
                                  seed=2)
    sampler = LoadSampler(traffic.net, interval=100)
    for _ in range(2000):
        traffic.run(1)
        sampler.tick(traffic.cycle)
    assert len(sampler.samples) >= 19
    assert sampler.mean_load() > 0
    text = sampler.sparkline()
    assert "peak" in text
    with pytest.raises(ValueError):
        LoadSampler(traffic.net, interval=0)


def test_load_sampler_idle_network():
    from repro.telemetry import LoadSampler

    net = Network(SystemConfig(n_cores=16))
    sampler = LoadSampler(net)
    assert sampler.mean_load() == 0.0
    assert sampler.sparkline() == "(no samples)"

# ----------------------------------------------------------------------
# repro.noc.debug is now a deprecation shim over repro.telemetry.
# ----------------------------------------------------------------------
def test_debug_shims_warn_and_delegate():
    import pytest

    from repro.noc import debug

    net = Network(SystemConfig(n_cores=16))
    with pytest.warns(DeprecationWarning, match="moved to repro.telemetry"):
        events = debug.attach_tracer(net)
    run_traffic(net, [(0, 3)])
    assert len(events) == 4  # the shim attached a real tracer
    with pytest.warns(DeprecationWarning):
        debug.detach_tracer(net)
    with pytest.warns(DeprecationWarning):
        text = debug.utilization_heatmap(net)
    assert "peak" in text
    with pytest.warns(DeprecationWarning):
        debug.reset_utilization(net)
    assert all(r.forwarded == 0 for r in net.routers)


def test_debug_shim_sleep_report_and_sampler():
    import pytest

    from repro.noc import debug
    from repro.noc.traffic import RequestReplyTraffic
    from repro.telemetry import LoadSampler

    traffic = RequestReplyTraffic(SystemConfig(n_cores=16),
                                  requests_per_node_per_kcycle=20.0, seed=2)
    with pytest.warns(DeprecationWarning):
        report = debug.sleep_report(traffic.sim)
    assert "asleep" in report
    with pytest.warns(DeprecationWarning):
        sampler = debug.LoadSampler(traffic.net, interval=50)
    # the shim subclass IS the telemetry sampler (isinstance keeps working)
    assert isinstance(sampler, LoadSampler)
    assert debug.TraceEvent is not None
