"""Circuit reuse by scroungers (4.5) and the ideal upper bound (4.8)."""

from repro.sim.config import Variant


def reply_of(c, req):
    replies = [m for _, m in c.deliveries
               if m.vn == 1 and m.circuit_key == req.circuit_key]
    assert len(replies) == 1
    return replies[0]


def test_scrounger_rides_foreign_circuit(chip):
    c = chip(Variant.REUSE, turnaround=3000)
    # Build a circuit whose reply will go 15 -> 0 and keep it reserved.
    c.request(0, 15, addr=0x100)
    c.run(120)
    # A non-eligible reply from node 15 toward node 0 can scrounge it.
    ack = c.send_reply(15, 0, kind="L1_DATA_ACK")
    c.run(120)
    assert ack.outcome == "scrounger"
    assert ack.uid in c.delivered
    assert c.stats.counter("circuit.outcome.scrounger") == 1
    c.run_until_drained(30000)


def test_scrounger_uses_intermediate_then_reinjects(chip):
    c = chip(Variant.REUSE, turnaround=3000)
    c.request(0, 15, addr=0x100)  # circuit 15 -> 0
    c.run(120)
    # Reply from 15 to node 1: riding to 0 gets it within one hop.
    ack = c.send_reply(15, 1, kind="L1_DATA_ACK")
    c.run(400)
    assert ack.uid in c.delivered
    final = c.delivered[ack.uid]
    assert final.dest == 1
    assert c.stats.counter("circuit.scrounger_relays") == 1
    c.run_until_drained(30000)


def test_scrounger_does_not_consume_the_circuit(chip):
    c = chip(Variant.REUSE, turnaround=3000)
    owner_req = c.request(0, 15, addr=0x100)
    c.run(120)
    c.send_reply(15, 0, kind="L1_DATA_ACK")
    c.run(120)
    # circuit must still be reserved for its own reply
    assert c.net.circuit_entries() > 0
    c.run_until_drained(30000)
    assert reply_of(c, owner_req).outcome == "on_circuit"
    assert c.net.circuit_entries() == 0


def test_scrounger_only_when_strictly_closer(chip):
    c = chip(Variant.REUSE, turnaround=3000)
    c.request(15, 0, addr=0x100)  # circuit 0 -> 15
    c.run(120)
    # Reply from 0 toward 3: the circuit destination (15) is farther from 3
    # than the origin already is, so it must not scrounge.
    ack = c.send_reply(0, 3, kind="L1_DATA_ACK")
    c.run(200)
    assert ack.outcome == "not_eligible"
    c.run_until_drained(30000)


def test_ideal_every_eligible_reply_uses_circuit(chip):
    c = chip(Variant.IDEAL)
    reqs = [c.request(i, 15 - i, addr=0x40 * (1 + i)) for i in range(6)]
    c.run_until_drained(30000)
    for req in reqs:
        assert reply_of(c, req).outcome == "on_circuit"
    s = c.stats
    assert s.counter("circuit.outcome.on_circuit") == 6
    assert s.counter("circuit.outcome.failed") == 0


def test_ideal_resolves_collisions_with_buffering(chip):
    c = chip(Variant.IDEAL, turnaround=7)
    # Fire many eligible replies converging on node 0 simultaneously.
    for src in (3, 12, 15, 7, 13):
        c.request(0, src, addr=0x40 * src)
    c.run_until_drained(30000)
    # replies converge toward 0; collisions are buffered, never dropped
    replies = [m for _, m in c.deliveries if m.vn == 1]
    assert len(replies) == 5
    assert all(m.outcome == "on_circuit" for m in replies)


def test_ideal_has_no_reservation_state(chip):
    c = chip(Variant.IDEAL)
    c.request(0, 15)
    c.run(50)
    assert c.net.circuit_entries() == 0
    c.run_until_drained(30000)
