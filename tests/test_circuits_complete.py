"""Complete Reactive Circuits: reservation, use, conflicts, undo."""

from repro.noc.routing import path_routers
from repro.sim.config import Variant


def reply_of(c, req):
    replies = [m for _, m in c.deliveries
               if m.vn == 1 and m.circuit_key == req.circuit_key]
    assert len(replies) == 1
    return replies[0]


def test_reply_rides_circuit_at_two_cycles_per_hop(chip):
    base = chip(Variant.BASELINE)
    breq = base.request(0, 15)
    base.run_until_drained()
    circ = chip(Variant.COMPLETE)
    creq = circ.request(0, 15)
    circ.run_until_drained()
    base_reply = reply_of(base, breq)
    circ_reply = reply_of(circ, creq)
    assert circ_reply.outcome == "on_circuit"
    # distance 6: head 2 + 6x2 + 2 = 16, tail +4 -> 20 network cycles
    assert circ_reply.network_latency == 20
    assert base_reply.network_latency > circ_reply.network_latency


def test_circuit_entries_are_freed_after_use(chip):
    c = chip(Variant.COMPLETE)
    c.request(0, 15)
    c.run_until_drained()
    assert c.net.circuit_entries() == 0


def test_reservation_walk_covers_every_router(chip):
    c = chip(Variant.COMPLETE)
    req = c.request(0, 15)
    c.run(40)  # request in flight, reply not yet sent
    reply = reply_of(chip(Variant.COMPLETE), req) if False else None
    path = path_routers(c.net.mesh, 0, 0, 15)
    walk = req.walk
    assert walk is not None
    assert [hop.node for hop in walk.hops] == path
    assert walk.fully_reserved


def test_conflicting_circuits_fail_and_undo(chip):
    """Two circuits needing different inputs into the same output conflict."""
    c = chip(Variant.COMPLETE, turnaround=400)  # keep circuits held long
    # Circuit A: 0 -> 15 (reply YX 15->0). Circuit B: 12 -> 3: its reply
    # (3 -> 12, YX) shares router output ports with A's reply path.
    a = c.request(0, 15, addr=0x100)
    c.run(90)
    b = c.request(12, 3, addr=0x200)
    c.run(90)
    assert a.walk.fully_reserved
    assert b.walk is not None
    assert b.walk.failed or b.walk.fully_reserved
    if b.walk.failed:
        # failed walk must leave no dangling entries once undo propagates
        c.run(60)
        reserved_nodes = {h.node for h in b.walk.hops if h.reserved}
        for router in c.net.routers:
            for _port, unit in router._input_units:
                for key in (unit.circuit_table.entries if unit.circuit_table else {}):
                    assert key != b.circuit_key
    c.run_until_drained(20000)


def test_failed_circuit_reply_goes_packet_switched(chip):
    c = chip(Variant.COMPLETE, turnaround=400)
    a = c.request(0, 12, addr=0x100)   # reply path 12->0 (column 0)
    c.run(80)
    # B's reply would need the same router outputs from a different input.
    b = c.request(1, 12, addr=0x200)
    c.run_until_drained(30000)
    reply_a = reply_of(c, a)
    reply_b = reply_of(c, b)
    assert reply_a.outcome == "on_circuit"
    assert reply_b.outcome in ("failed", "on_circuit")
    if reply_b.outcome == "failed":
        assert reply_b.network_latency > reply_a.network_latency


def test_same_input_port_allows_multiple_circuits(chip):
    """Circuits sharing the input port may share outputs (section 4.2)."""
    c = chip(Variant.COMPLETE, turnaround=400)
    # Both requests from node 0 to node 15: identical paths, same inputs.
    a = c.request(0, 15, addr=0x100)
    b = c.request(0, 15, addr=0x200)
    c.run(120)
    assert a.walk.fully_reserved
    assert b.walk.fully_reserved
    c.run_until_drained(20000)
    assert reply_of(c, a).outcome == "on_circuit"
    assert reply_of(c, b).outcome == "on_circuit"


def test_capacity_limit_five_per_input(chip):
    c = chip(Variant.COMPLETE, turnaround=2000)
    reqs = [c.request(0, 15, addr=0x100 * (i + 1)) for i in range(7)]
    c.run(300)
    reserved = [r for r in reqs if r.walk and r.walk.fully_reserved]
    failed = [r for r in reqs if r.walk and r.walk.failed]
    assert len(reserved) == 5  # paper: five simultaneous circuits per input
    assert len(failed) == 2
    c.run_until_drained(40000)


def test_reservation_ordinal_stats(chip):
    c = chip(Variant.COMPLETE, turnaround=2000)
    for i in range(3):
        c.request(0, 15, addr=0x100 * (i + 1))
    c.run(300)
    s = c.stats
    assert s.counter("circuit.reservation_ordinal.1") > 0
    assert s.counter("circuit.reservation_ordinal.2") > 0
    assert s.counter("circuit.reservation_ordinal.3") > 0
    c.run_until_drained(40000)


def test_non_eligible_replies_do_not_use_circuits(chip):
    c = chip(Variant.COMPLETE)
    c.send_reply(3, 9, kind="L1_DATA_ACK")
    c.run_until_drained()
    acks = [m for _, m in c.deliveries if m.kind == "L1_DATA_ACK"]
    assert acks[0].outcome == "not_eligible"
    assert not acks[0].uses_circuit


def test_packet_replies_restricted_to_non_circuit_vc(chip):
    c = chip(Variant.COMPLETE)
    assert c.net.policy.allocatable_vcs(1) == (0,)
    assert c.net.policy.allocatable_vcs(0) == (0, 1)


def test_circuit_vc_is_bufferless(chip):
    c = chip(Variant.COMPLETE)
    router = c.net.routers[5]
    for _port, unit in router._input_units:
        assert unit.vcs[1][1].depth == 0  # circuit VC has no buffer
        assert unit.vcs[1][0].depth == 5
        assert unit.vcs[0][0].depth == 5


def test_built_circuit_does_not_block_packet_traffic(chip):
    """Section 4.3: ports and links of a reserved-but-idle circuit stay
    usable by packet-switched messages."""
    c = chip(Variant.COMPLETE, turnaround=3000)
    c.request(0, 15, addr=0x100)  # circuit held along the 0<->15 path
    c.run(120)
    assert c.net.circuit_entries() > 0
    # a packet request crossing the same routers while the circuit idles
    probe = c.request(12, 3, addr=0x200, builds_circuit=False)
    c.run(80)
    assert probe.uid in c.delivered
    # and its latency matches an uncontended packet (no circuit blocking)
    fresh = chip(Variant.COMPLETE)
    ref = fresh.request(12, 3, addr=0x200, builds_circuit=False)
    fresh.run_until_drained()
    assert (c.delivered[probe.uid].network_latency
            == fresh.delivered[ref.uid].network_latency)
    c.run_until_drained(30000)


def test_circuit_flits_have_crossbar_priority(chip):
    """When a circuit reply and packet flits want the same output in the
    same cycle, the circuit flit goes first (the packet retries)."""
    c = chip(Variant.COMPLETE, turnaround=60)
    circ_req = c.request(0, 3, addr=0x100)  # circuit on row 0
    # packet traffic crossing the same row outputs
    for i in range(4):
        c.send_reply(3, 0, kind="L1_DATA_ACK")
    c.run_until_drained(30000)
    reply = [m for _, m in c.deliveries
             if m.circuit_key == circ_req.circuit_key and m.vn == 1]
    assert reply[0].outcome == "on_circuit"
    # full circuit speed despite the competing packets: 3 hops
    assert reply[0].network_latency == 2 + 3 * 2 + 2 + 4
