"""Swapped DOR orientation (requests YX / replies XY).

Section 4.2: "both fragmented and complete circuits can be implemented
with any deterministic routing, as long as we can force requests and
replies to go through the same routers."
"""

from dataclasses import replace

from hypothesis import given, strategies as st

from repro import build_system, workload_by_name
from repro.noc.routing import path_routers
from repro.noc.topology import Mesh
from repro.sim.config import SystemConfig, Variant, small_test_config


@given(st.integers(2, 8), st.data())
def test_swapped_orientation_paths_still_match(side, data):
    mesh = Mesh(side)
    src = data.draw(st.integers(0, mesh.n_nodes - 1))
    dest = data.draw(st.integers(0, mesh.n_nodes - 1))
    request_path = path_routers(mesh, 0, src, dest, request_xy=False)
    reply_path = path_routers(mesh, 1, dest, src, request_xy=False)
    assert request_path == list(reversed(reply_path))


def _swapped(variant):
    cfg = small_test_config(16, variant, seed=4)
    return replace(cfg, noc=replace(cfg.noc, request_xy=False))


def test_full_system_runs_with_swapped_orientation():
    system = build_system(_swapped(Variant.COMPLETE_NOACK),
                          workload_by_name("fluidanimate"))
    cycles = system.run_instructions(400, max_cycles=1_500_000)
    assert cycles > 0
    s = system.stats
    assert s.counter("circuit.outcome.on_circuit") > 0
    system.drain()
    assert system.network.live_circuit_entries(system.sim.cycle) == 0


def test_orientation_changes_paths_not_results_shape():
    """Both orientations deliver all work; circuit success is comparable."""
    rates = {}
    for request_xy in (True, False):
        cfg = small_test_config(16, Variant.COMPLETE_NOACK, seed=4)
        cfg = replace(cfg, noc=replace(cfg.noc, request_xy=request_xy))
        system = build_system(cfg, workload_by_name("fluidanimate"))
        system.run_instructions(400, max_cycles=1_500_000)
        s = system.stats
        total = s.counter("circuit.replies_total")
        rates[request_xy] = s.counter("circuit.outcome.on_circuit") / total
    assert abs(rates[True] - rates[False]) < 0.15
