"""Full-system integration: cores + MESI + NoC + circuits together."""

import pytest

from repro import Variant, build_system, workload_by_name
from repro.coherence.l1 import L1State
from repro.sim.config import SystemConfig, small_test_config

WORKLOAD = "fluidanimate"  # shared + writes: exercises every message type


def run_small(variant, instrs=600, n_cores=16, wl=WORKLOAD, seed=3):
    cfg = small_test_config(n_cores, variant, seed=seed)
    system = build_system(cfg, workload_by_name(wl))
    cycles = system.run_instructions(instrs, max_cycles=1_500_000)
    return system, cycles


@pytest.mark.parametrize("variant", list(Variant))
def test_all_variants_run_to_completion(variant):
    system, cycles = run_small(variant, instrs=300)
    assert cycles > 0
    assert all(core.done for core in system.cores)
    system.drain()
    assert system.network.in_flight() == 0
    # no live circuit state may leak after drain (timed entries expire)
    assert system.network.live_circuit_entries(system.sim.cycle) == 0


def test_same_seed_is_deterministic():
    a, cycles_a = run_small(Variant.COMPLETE_NOACK, instrs=400)
    b, cycles_b = run_small(Variant.COMPLETE_NOACK, instrs=400)
    assert cycles_a == cycles_b
    assert a.stats.counters == b.stats.counters


def test_single_writer_invariant():
    """At any L2 bank, a line has either one owner or sharers, never both."""
    system, _ = run_small(Variant.COMPLETE_NOACK, instrs=500)
    for tile in system.tiles:
        for addr, way in tile.l2.array._where.items():
            line = tile.l2.array.peek(addr)
            if line.owner is not None:
                assert not line.sharers, (
                    f"line {addr:#x} has owner {line.owner} and sharers "
                    f"{line.sharers}"
                )


def test_l1_modified_implies_l2_ownership():
    """Inclusive L2: every dirty L1 line is tracked as owned."""
    system, _ = run_small(Variant.BASELINE, instrs=500)
    system.drain()
    for tile in system.tiles:
        for addr in list(tile.l1.array._where):
            line = tile.l1.array.peek(addr)
            if line.state is L1State.MODIFIED:
                home = system.tiles[system.home_of(addr)]
                dir_line = home.l2.array.peek(addr)
                assert dir_line is not None, f"L1-M line {addr:#x} not in L2"
                assert dir_line.owner == tile.node or dir_line.busy


def test_noack_eliminates_data_acks():
    with_ack, _ = run_small(Variant.COMPLETE, instrs=500)
    no_ack, _ = run_small(Variant.COMPLETE_NOACK, instrs=500)
    acks_with = with_ack.stats.counter("msg.count.L1_DATA_ACK")
    acks_without = no_ack.stats.counter("msg.count.L1_DATA_ACK")
    eliminated = no_ack.stats.counter("circuit.outcome.eliminated")
    assert eliminated > 0
    assert acks_without < acks_with


def test_forwarded_requests_undo_circuits():
    system, _ = run_small(Variant.COMPLETE, instrs=800)
    s = system.stats
    if s.counter("msg.count.L1_TO_L1"):
        assert s.counter("circuit.outcome.undone") > 0


def test_circuit_variants_deliver_same_instruction_work():
    """All variants execute identical instruction streams (same seed)."""
    retired = {}
    for variant in (Variant.BASELINE, Variant.COMPLETE, Variant.IDEAL):
        system, _ = run_small(variant, instrs=400)
        retired[variant] = system.total_retired()
    assert len(set(retired.values())) == 1


def test_circuits_do_not_break_coherence_traffic_counts():
    """Message-type population is identical apart from eliminated ACKs."""
    base, _ = run_small(Variant.BASELINE, instrs=500)
    circ, _ = run_small(Variant.COMPLETE_NOACK, instrs=500)

    def counts(system, kind):
        return system.stats.counter(f"msg.count.{kind}")

    for kind in ("GETS", "GETX", "WB_L1", "MEM_READ"):
        assert abs(counts(base, kind) - counts(circ, kind)) <= max(
            6, 0.2 * counts(base, kind)
        ), kind


def test_ideal_is_fastest_baseline_slowest():
    _, base = run_small(Variant.BASELINE, instrs=600)
    _, complete = run_small(Variant.COMPLETE_NOACK, instrs=600)
    _, ideal = run_small(Variant.IDEAL, instrs=600)
    assert ideal <= complete <= base * 1.02  # circuits never much worse
    assert ideal < base


def test_prewarm_populates_caches():
    cfg = SystemConfig(n_cores=16)
    system = build_system(cfg, workload_by_name("canneal"))
    assert all(t.l1.array.occupancy() == 0 for t in system.tiles)
    system.functional_prewarm()
    l1_occ = sum(t.l1.array.occupancy() for t in system.tiles)
    l2_occ = sum(t.l2.array.occupancy() for t in system.tiles)
    assert l1_occ >= 16 * 400  # L1s filled close to capacity
    assert l2_occ > l1_occ


def test_warmup_resets_stats():
    cfg = small_test_config(16, Variant.BASELINE)
    system = build_system(cfg, workload_by_name(WORKLOAD))
    system.warmup(100)
    assert system.stats.counter("noc.msgs_delivered") == 0
    system.run_instructions(100)
    assert system.stats.counter("noc.msgs_delivered") > 0


def test_watchdog_attached_and_detached():
    cfg = small_test_config(16, Variant.BASELINE)
    system = build_system(cfg, workload_by_name(WORKLOAD))
    system.run_instructions(50)
    assert system.sim._watchdogs == []
