"""Protocol race conditions exercised deterministically via fake NIs."""

import pytest

from repro.coherence.l1 import L1Controller, L1State
from repro.coherence.l2dir import L2BankController
from repro.coherence.messages import Kind, MessageFactory
from repro.sim.config import SystemConfig, Variant
from repro.sim.stats import Stats


class FakeNi:
    def __init__(self):
        self.sent = []
        self.cancelled = []

    def enqueue(self, msg, cycle):
        self.sent.append((cycle, msg))

    def cancel_circuit(self, key, cycle):
        self.cancelled.append(key)
        return True

    def kinds(self):
        return [m.kind for _, m in self.sent]

    def clear(self):
        self.sent.clear()


@pytest.fixture
def env():
    config = SystemConfig(n_cores=16).with_variant(Variant.BASELINE)
    return config, MessageFactory(config), Stats()


def drive(ctrl, cycles, start=0):
    for cycle in range(start, start + cycles):
        ctrl.tick(cycle)


def test_forward_races_writeback(env):
    """FWD_GETS arrives at an L1 whose writeback is already in flight:
    the forward is served from the writeback buffer."""
    config, factory, stats = env
    ni = FakeNi()
    l1 = L1Controller(0, config, factory, ni, lambda a: 3, stats)
    l1.wb_buffer[0x9000] = True  # dirty line evicted, WB in flight
    fwd = factory.forward(Kind.FWD_GETS, 3, 0, 0x9000, requestor=7,
                          undone_circuit=False)
    l1.receive(fwd, 0)
    drive(l1, 10)
    assert ni.kinds() == [Kind.L1_TO_L1]
    assert ni.sent[0][1].dest == 7
    assert 0x9000 in l1.wb_buffer  # GETS forward keeps the buffer entry


def test_forward_getx_consumes_writeback_buffer(env):
    config, factory, stats = env
    ni = FakeNi()
    l1 = L1Controller(0, config, factory, ni, lambda a: 3, stats)
    l1.wb_buffer[0x9000] = True
    fwd = factory.forward(Kind.FWD_GETX, 3, 0, 0x9000, requestor=7,
                          undone_circuit=False)
    l1.receive(fwd, 0)
    drive(l1, 10)
    assert 0x9000 not in l1.wb_buffer


def test_forward_after_silent_clean_eviction(env):
    """FWD for a silently evicted clean-E line is still served (the L2
    copy is valid; see DESIGN.md section 4b)."""
    config, factory, stats = env
    ni = FakeNi()
    l1 = L1Controller(0, config, factory, ni, lambda a: 3, stats)
    fwd = factory.forward(Kind.FWD_GETS, 3, 0, 0x9000, requestor=7,
                          undone_circuit=False)
    l1.receive(fwd, 0)
    drive(l1, 10)
    assert ni.kinds() == [Kind.L1_TO_L1]
    assert stats.counter("l1.stale_forwards") == 1


def test_inv_during_pending_upgrade(env):
    """INV hits a SHARED line with a GETX upgrade outstanding: the copy is
    invalidated and acked, the upgrade still completes to MODIFIED."""
    config, factory, stats = env
    ni = FakeNi()
    l1 = L1Controller(0, config, factory, ni, lambda a: 3, stats)
    l1.resume_core = lambda c: None
    l1.prewarm_line(0xA000, L1State.SHARED)
    assert l1.access(0xA000, True, 0) is False  # upgrade miss sent
    l1.receive(factory.inv(3, 0, 0xA000), 1)
    drive(l1, 10)
    assert Kind.L1_INV_ACK in ni.kinds()
    assert l1.array.peek(0xA000) is None
    reply = factory.l2_reply(3, 0, 0xA000, factory.getx(0, 3, 0xA000), True)
    l1.receive(reply, 20)
    drive(l1, 10, start=20)
    assert l1.array.peek(0xA000).state is L1State.MODIFIED


def test_wb_processed_while_line_busy_with_forward(env):
    """WB from the old owner lands while the directory is mid-forward:
    the WB is acked; the transaction's data ack still completes it."""
    config, factory, stats = env
    ni = FakeNi()
    l2 = L2BankController(3, config, factory, ni, lambda a: 12, stats)
    l2.prewarm_line(0xB000, owner=5)
    l2.receive(factory.gets(0, 3, 0xB000), 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.FWD_GETS]
    ni.clear()
    wb = factory.wb_l1(5, 3, 0xB000)
    wb.payload.exclusive = True
    l2.receive(wb, 25)
    drive(l2, 20, start=25)
    assert ni.kinds() == [Kind.L2_WB_ACK]
    l2.receive(factory.l1_data_ack(0, 3, 0xB000), 60)
    drive(l2, 20, start=60)
    line = l2.array.peek(0xB000)
    assert not line.busy
    assert 0 in line.sharers


def test_queued_requests_drain_in_order(env):
    config, factory, stats = env
    ni = FakeNi()
    l2 = L2BankController(3, config, factory, ni, lambda a: 12, stats)
    l2.prewarm_line(0xC000, sharers={9})
    l2.receive(factory.gets(0, 3, 0xC000), 0)
    l2.receive(factory.gets(1, 3, 0xC000), 1)
    l2.receive(factory.gets(2, 3, 0xC000), 2)
    drive(l2, 20)
    # only the first is served; others queued behind the busy line
    assert [m.dest for _, m in ni.sent] == [0]
    ni.clear()
    cycle = 30
    for expected_dest in (1, 2):
        l2.receive(factory.l1_data_ack(expected_dest - 1, 3, 0xC000), cycle)
        drive(l2, 20, start=cycle)
        assert [m.dest for _, m in ni.sent] == [expected_dest]
        ni.clear()
        cycle += 30


def test_second_writer_waits_for_first(env):
    """Two GETX in a row: ownership transfers via forward, serialised."""
    config, factory, stats = env
    ni = FakeNi()
    l2 = L2BankController(3, config, factory, ni, lambda a: 12, stats)
    l2.prewarm_line(0xD000)
    l2.receive(factory.getx(5, 3, 0xD000), 0)
    drive(l2, 20)
    assert ni.kinds() == [Kind.L2_REPLY]
    ni.clear()
    l2.receive(factory.getx(6, 3, 0xD000), 21)
    drive(l2, 20, start=21)
    assert ni.sent == []  # blocked on node 5's ack
    l2.receive(factory.l1_data_ack(5, 3, 0xD000), 50)
    drive(l2, 20, start=50)
    assert ni.kinds() == [Kind.FWD_GETX]
    assert ni.sent[0][1].dest == 5
    l2.receive(factory.l1_data_ack(6, 3, 0xD000), 90)
    drive(l2, 20, start=90)
    assert l2.array.peek(0xD000).owner == 6
